#include "difftest/difftest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/backend.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace difftest = gpustatic::difftest;
namespace kernels = gpustatic::kernels;
using gpustatic::Error;

namespace {

/// Problem sizes kept modest so nine kernels × eight shapes × a host
/// compile each stay well inside the suite timeout.
std::int64_t difftest_size(const std::string& kernel) {
  if (kernel == "ex14fj") return 8;
  if (kernel == "matvec2d") return 128;
  if (kernel == "jacobi2d") return 32;
  if (kernel == "divergent") return 256;
  return 64;
}

std::vector<std::string> all_kernel_names() {
  std::vector<std::string> names;
  for (const kernels::KernelInfo& k : kernels::all_kernels())
    names.emplace_back(k.name);
  for (const kernels::KernelInfo& k : kernels::extended_kernels())
    names.emplace_back(k.name);
  return names;
}

/// Synthesize the counters a perfectly model-conforming execution would
/// print (exact blocks exactly, estimated blocks rounded).
difftest::CountMap conforming_counts(const codegen::LoweredWorkload& lw,
                                     const codegen::TuningParams& p) {
  const double tt = static_cast<double>(p.threads_per_block) *
                    static_cast<double>(p.block_count);
  difftest::CountMap counts;
  for (std::size_t s = 0; s < lw.stages.size(); ++s)
    for (std::size_t b = 0; b < lw.stages[s].freq_model.size(); ++b)
      counts[{s, b}] = static_cast<long long>(
          std::llround(lw.stages[s].freq_model[b].at(tt) * tt));
  return counts;
}

}  // namespace

TEST(DiffTest, ParseCountsReadsStageBlockCountLines) {
  const difftest::CountMap counts =
      difftest::parse_counts("0 0 256\n0 1 64\n\n1 2 4096\n");
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.at({0, 0}), 256);
  EXPECT_EQ(counts.at({0, 1}), 64);
  EXPECT_EQ(counts.at({1, 2}), 4096);
}

TEST(DiffTest, ParseCountsRejectsMalformedLines) {
  EXPECT_THROW((void)difftest::parse_counts("0 zero 12\n"), Error);
  EXPECT_THROW((void)difftest::parse_counts("garbage\n"), Error);
}

TEST(DiffTest, CheckStagePassesConformingCounters) {
  const auto wl = kernels::make_workload("atax", 64);
  codegen::TuningParams p;
  p.threads_per_block = 96;
  p.block_count = 3;
  const codegen::LoweredWorkload lw =
      codegen::Compiler(arch::gpu("K20"), p).compile(wl);
  const difftest::CountMap counts = conforming_counts(lw, p);
  for (std::size_t s = 0; s < lw.stages.size(); ++s)
    for (const difftest::BlockCheck& c :
         difftest::check_stage(lw.stages[s], s, p, counts, 0.05))
      EXPECT_TRUE(c.ok) << "stage " << s << " block " << c.block;
}

TEST(DiffTest, CheckStageCatchesAnOffByOneOnAnExactBlock) {
  const auto wl = kernels::make_workload("atax", 64);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  p.block_count = 2;
  const codegen::LoweredWorkload lw =
      codegen::Compiler(arch::gpu("K20"), p).compile(wl);
  difftest::CountMap counts = conforming_counts(lw, p);
  counts[{0, 0}] += 1;  // perturb one exact counter by a single count
  const std::vector<difftest::BlockCheck> checks =
      difftest::check_stage(lw.stages[0], 0, p, counts, 0.05);
  ASSERT_FALSE(checks.empty());
  EXPECT_TRUE(checks[0].exact);
  EXPECT_FALSE(checks[0].ok);
}

TEST(DiffTest, CheckStageFlagsMissingCounters) {
  const auto wl = kernels::make_workload("atax", 64);
  const codegen::TuningParams p;
  const codegen::LoweredWorkload lw =
      codegen::Compiler(arch::gpu("K20"), p).compile(wl);
  const std::vector<difftest::BlockCheck> checks =
      difftest::check_stage(lw.stages[0], 0, p, {}, 0.05);
  for (const difftest::BlockCheck& c : checks) {
    EXPECT_FALSE(c.ok);
    EXPECT_EQ(c.executed, -1);
  }
}

TEST(DiffTest, CheckStageGatesEstimatedBlocksByTolerance) {
  // The divergent kernel's then/else arms carry branch-probability
  // factors; their models must be flagged inexact and judged by the
  // relative gate, not integer equality.
  const auto wl = kernels::make_workload("divergent", 256);
  const codegen::TuningParams p;
  const codegen::LoweredWorkload lw =
      codegen::Compiler(arch::gpu("K20"), p).compile(wl);
  std::size_t estimated = 0;
  for (const codegen::LoweredStage& st : lw.stages)
    for (const codegen::BlockFreqModel& m : st.freq_model)
      if (!m.exact) ++estimated;
  ASSERT_GT(estimated, 0u) << "divergent kernel should have inexact blocks";

  // A 3% deviation on an estimated block passes at the default 5% gate
  // and fails at a 1% gate.
  difftest::CountMap counts = conforming_counts(lw, p);
  for (std::size_t s = 0; s < lw.stages.size(); ++s)
    for (std::size_t b = 0; b < lw.stages[s].freq_model.size(); ++b)
      if (!lw.stages[s].freq_model[b].exact)
        counts[{s, b}] = static_cast<long long>(
            std::llround(static_cast<double>(counts.at({s, b})) * 1.03));
  for (std::size_t s = 0; s < lw.stages.size(); ++s) {
    for (const difftest::BlockCheck& c :
         difftest::check_stage(lw.stages[s], s, p, counts, 0.05))
      EXPECT_TRUE(c.ok);
    for (const difftest::BlockCheck& c :
         difftest::check_stage(lw.stages[s], s, p, counts, 0.01))
      if (!c.exact && c.expected > 100) EXPECT_FALSE(c.ok);
  }
}

TEST(DiffTest, DefaultShapesAreDiverseAndRagged) {
  const std::vector<difftest::LaunchShape> shapes =
      difftest::default_shapes();
  ASSERT_GE(shapes.size(), 8u);
  bool has_ragged_tc = false, has_odd_bc = false;
  for (const difftest::LaunchShape& s : shapes) {
    EXPECT_GT(s.threads_per_block, 0);
    EXPECT_GT(s.block_count, 0);
    if (s.threads_per_block % 32 != 0) has_ragged_tc = true;
    if (s.block_count % 2 == 1) has_odd_bc = true;
  }
  EXPECT_TRUE(has_ragged_tc);
  EXPECT_TRUE(has_odd_bc);
}

TEST(DiffTest, DiffKernelReportsUnknownBackendInBand) {
  const difftest::Options opts{.backend = "no-such-backend"};
  const difftest::KernelReport report =
      difftest::diff_kernel(kernels::make_workload("atax", 64), opts);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("no-such-backend"), std::string::npos);
  EXPECT_FALSE(report.failure_summary().empty());
}

TEST(DiffTest, DiffKernelRejectsNonExecutableBackends) {
  const difftest::Options opts{.backend = "ptx"};
  const difftest::KernelReport report =
      difftest::diff_kernel(kernels::make_workload("atax", 64), opts);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("executable"), std::string::npos);
}

// The tentpole acceptance test: for every kernel in the library, the
// executed per-block counters of the scalar-C reference match the
// static frequency model across all sampled launch shapes.
TEST(DiffTest, EveryKernelMatchesAcrossAllSampledShapes) {
  for (const std::string& name : all_kernel_names()) {
    const difftest::Options opts;
    const difftest::KernelReport report = difftest::diff_kernel(
        kernels::make_workload(name, difftest_size(name)), opts);
    EXPECT_TRUE(report.ok()) << report.failure_summary();
    EXPECT_EQ(report.shapes.size(), difftest::default_shapes().size());
    EXPECT_GT(report.blocks_checked(), 0u) << name;
    EXPECT_LE(report.max_exact_deviation(), 0.5) << name;
  }
}

// Codegen-affecting knobs reshape the CFG (unrolled copies, remainder
// loops, streaming); the counters must still match exactly.
TEST(DiffTest, UnrolledAndStreamedVariantsMatch) {
  difftest::Options opts;
  opts.params.unroll = 2;
  opts.params.stream_chunk = 2;
  opts.params.fast_math = true;
  const difftest::KernelReport report =
      difftest::diff_kernel(kernels::make_workload("atax", 64), opts);
  EXPECT_TRUE(report.ok()) << report.failure_summary();
  EXPECT_LE(report.max_exact_deviation(), 0.5);
}
