#include "occupancy/occupancy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/gpu_spec.hpp"
#include "occupancy/suggest.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::occupancy;  // NOLINT

TEST(Occupancy, FullOccupancyKepler) {
  // 128 threads, modest registers: 16 blocks x 4 warps = 64 warps = 100%.
  const auto r = calculate(arch::gpu("K20"), {128, 27, 0});
  EXPECT_EQ(r.active_blocks, 16u);
  EXPECT_EQ(r.active_warps, 64u);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, WarpLimited) {
  // Fermi: 1024 threads/block = 32 warps; 48/32 = 1 block, 32/48 occ.
  const auto r = calculate(arch::gpu("M2050"), {1024, 0, 0});
  EXPECT_EQ(r.blocks_warp_limited, 1u);
  EXPECT_EQ(r.active_blocks, 1u);
  EXPECT_NEAR(r.occupancy, 32.0 / 48.0, 1e-12);
  EXPECT_STREQ(r.limiter(), "warps");
}

TEST(Occupancy, RegisterLimited) {
  // Kepler, 128 threads, 64 regs/thread: 65536/(64*32) = 32 warps ->
  // 8 blocks; warps would allow 16.
  const auto r = calculate(arch::gpu("K20"), {128, 64, 0});
  EXPECT_EQ(r.blocks_reg_limited, 8u);
  EXPECT_LT(r.blocks_reg_limited, r.blocks_warp_limited);
  EXPECT_EQ(r.active_blocks, 8u);
  EXPECT_NEAR(r.occupancy, 0.5, 1e-12);
  EXPECT_STREQ(r.limiter(), "registers");
}

TEST(Occupancy, SmemLimited) {
  // 16KB smem per block: 49152/16384 = 3 blocks.
  const auto r = calculate(arch::gpu("K20"), {128, 0, 16384});
  EXPECT_EQ(r.blocks_smem_limited, 3u);
  EXPECT_EQ(r.active_blocks, 3u);
  EXPECT_STREQ(r.limiter(), "smem");
}

TEST(Occupancy, IllegalRegisterCountIsZero) {
  // Eq. 4 case 1: Ru above the per-thread cap.
  EXPECT_EQ(blocks_limited_by_registers(arch::gpu("M2050"), 64, 128), 0u);
  EXPECT_EQ(blocks_limited_by_registers(arch::gpu("K20"), 256, 128), 0u);
}

TEST(Occupancy, IllegalSmemIsZero) {
  EXPECT_EQ(blocks_limited_by_smem(arch::gpu("K20"), 49153), 0u);
}

TEST(Occupancy, UnspecifiedResourcesDefaultToBlockCap) {
  // Eq. 4/5 case 3.
  const auto& g = arch::gpu("M40");
  EXPECT_EQ(blocks_limited_by_registers(g, 0, 128), g.blocks_per_mp);
  EXPECT_EQ(blocks_limited_by_smem(g, 0), g.blocks_per_mp);
}

TEST(Occupancy, PaperTableSevenAtaxFermi) {
  // ATAX Fermi row: Ru=21 -> occ*=1 with R*=0 headroom, S*=6144.
  const auto s = suggest(arch::gpu("M2050"), 21, 0);
  EXPECT_DOUBLE_EQ(s.occ_star, 1.0);
  EXPECT_EQ(s.reg_headroom, 0u);
  EXPECT_EQ(s.smem_budget, 6144u);
  // T* ladder: {192, 256, 384, 512, 768}.
  const std::vector<std::uint32_t> expected = {192, 256, 384, 512, 768};
  EXPECT_EQ(s.thread_candidates, expected);
}

TEST(Occupancy, PaperTableSevenAtaxKepler) {
  // ATAX Kepler row: Ru=27 -> occ*=1, R*=5, S*=3072, T*={128,256,512,1024}.
  const auto s = suggest(arch::gpu("K20"), 27, 0);
  EXPECT_DOUBLE_EQ(s.occ_star, 1.0);
  EXPECT_EQ(s.reg_headroom, 5u);
  EXPECT_EQ(s.smem_budget, 3072u);
  const std::vector<std::uint32_t> expected = {128, 256, 512, 1024};
  EXPECT_EQ(s.thread_candidates, expected);
}

TEST(Occupancy, PaperTableSevenMaxwellLadder) {
  const auto s = suggest(arch::gpu("M40"), 30, 0);
  const std::vector<std::uint32_t> expected = {64, 128, 256, 512, 1024};
  EXPECT_EQ(s.thread_candidates, expected);
  EXPECT_EQ(s.reg_headroom, 2u);
  EXPECT_EQ(s.smem_budget, 1536u);
}

TEST(Occupancy, SuggestionRespectsCustomGrid) {
  const auto s = suggest(arch::gpu("K20"), 27, 0, {128, 192, 256});
  for (const auto t : s.thread_candidates)
    EXPECT_TRUE(t == 128 || t == 192 || t == 256);
}

// ---- property sweep: invariants over the whole parameter plane --------

struct OccCase {
  const char* gpu;
  std::uint32_t regs;
};

class OccupancyProperty : public ::testing::TestWithParam<OccCase> {};

TEST_P(OccupancyProperty, MonotoneAndBounded) {
  const auto& g = arch::gpu(GetParam().gpu);
  const std::uint32_t ru = GetParam().regs;
  double prev_occ_for_more_regs = 1.1;
  for (std::uint32_t t = 32; t <= 1024; t += 32) {
    const auto r = calculate(g, {t, ru, 0});
    // Bounds.
    EXPECT_GE(r.occupancy, 0.0);
    EXPECT_LE(r.occupancy, 1.0);
    EXPECT_LE(r.active_warps, g.warps_per_mp);
    EXPECT_LE(r.active_blocks, g.blocks_per_mp);
    // Consistency: active_warps = blocks x warps/block (capped).
    EXPECT_EQ(r.active_warps,
              std::min(r.active_blocks * r.warps_per_block,
                       g.warps_per_mp));
    // More registers can never raise occupancy at the same T.
    const auto r2 = calculate(g, {t, ru + 8, 0});
    EXPECT_LE(r2.occupancy, r.occupancy + 1e-12);
  }
  (void)prev_occ_for_more_regs;
}

INSTANTIATE_TEST_SUITE_P(
    AllGpus, OccupancyProperty,
    ::testing::Values(OccCase{"M2050", 16}, OccCase{"M2050", 32},
                      OccCase{"K20", 16}, OccCase{"K20", 32},
                      OccCase{"K20", 64}, OccCase{"M40", 24},
                      OccCase{"P100", 24}, OccCase{"P100", 48}));

TEST(Occupancy, SmemMonotone) {
  const auto& g = arch::gpu("M40");
  double prev = 2.0;
  for (std::uint32_t su = 0; su <= 49152; su += 4096) {
    const auto r = calculate(g, {128, 24, su});
    EXPECT_LE(r.occupancy, prev + 1e-12);
    prev = r.occupancy;
  }
}

// ---- CUDA Occupancy API baseline ----------------------------------------

TEST(MaxPotential, PrefersLargestBlockAmongTies) {
  // Light footprint on Kepler: many block sizes reach occupancy 1; the
  // API semantics pick the largest.
  const auto mp = occupancy::max_potential_block_size(arch::gpu("K20"),
                                                      /*regs=*/16,
                                                      /*smem=*/0);
  EXPECT_EQ(mp.block_size, 1024u);
  EXPECT_DOUBLE_EQ(mp.occupancy, 1.0);
  EXPECT_GE(mp.active_blocks, 1u);
}

TEST(MaxPotential, RespectsRegisterPressure) {
  // Heavy register use caps resident warps; the chosen size must still
  // be the best achievable, and occupancy below 1.
  const auto light = occupancy::max_potential_block_size(
      arch::gpu("M2050"), 16, 0);
  const auto heavy = occupancy::max_potential_block_size(
      arch::gpu("M2050"), 63, 0);
  EXPECT_LT(heavy.occupancy, light.occupancy);
  EXPECT_GT(heavy.occupancy, 0.0);
}

TEST(MaxPotential, HonorsCustomRange) {
  const std::vector<std::uint32_t> range = {64, 128};
  const auto mp = occupancy::max_potential_block_size(arch::gpu("M40"),
                                                      24, 0, range);
  EXPECT_TRUE(mp.block_size == 64 || mp.block_size == 128);
}

TEST(MaxPotential, AgreesWithSuggestionCandidates) {
  // The API's single answer must be one of the Table VII T* candidates
  // (both maximize the same occupancy function).
  for (const char* gpu_name : {"M2050", "K20", "M40", "P100"}) {
    const auto& gpu = arch::gpu(gpu_name);
    const auto s = occupancy::suggest(gpu, 27, 0);
    const auto mp = occupancy::max_potential_block_size(gpu, 27, 0);
    EXPECT_NE(std::find(s.thread_candidates.begin(),
                        s.thread_candidates.end(), mp.block_size),
              s.thread_candidates.end())
        << gpu_name;
    EXPECT_DOUBLE_EQ(mp.occupancy, s.occ_star) << gpu_name;
  }
}
