#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "replay/journal.hpp"
#include "replay/refine.hpp"
#include "replay/replay.hpp"
#include "replay/replay_evaluator.hpp"
#include "tuner/search.hpp"
#include "tuner/static_search.hpp"

using namespace gpustatic;  // NOLINT
using replay::TuningJournal;
using replay::VariantRecord;

// ---- journal round-trip -----------------------------------------------------

namespace {

TuningJournal sample_journal() {
  TuningJournal j;
  j.set_context("atax", "K20", 256);
  j.record_decision("occupancy", "occ*=1.0 T*={128,256,512,1024}");
  j.record_decision("rule", "intensity=2.04 -> lower half");
  VariantRecord a;
  a.params.threads_per_block = 128;
  a.params.unroll = 3;
  a.params.fast_math = true;
  a.predicted_cost = 1234.5;
  a.measured_ms = 0.0625;
  j.record_variant(a);
  VariantRecord b;
  b.params.threads_per_block = 256;
  b.predicted_cost = 999.25;  // never measured
  j.record_variant(b);
  VariantRecord c;
  c.params.threads_per_block = 96;
  c.valid = false;
  j.record_variant(c);
  return j;
}

}  // namespace

TEST(Journal, SerializeParseRoundTripIsLossless) {
  const TuningJournal j = sample_journal();
  const std::string text = j.serialize();
  const TuningJournal back = TuningJournal::parse(text);

  EXPECT_EQ(back.workload(), "atax");
  EXPECT_EQ(back.gpu(), "K20");
  EXPECT_EQ(back.problem_size(), 256);
  ASSERT_EQ(back.decisions().size(), 2u);
  EXPECT_EQ(back.decisions()[0].step, "occupancy");
  EXPECT_EQ(back.decisions()[1].detail, "intensity=2.04 -> lower half");
  ASSERT_EQ(back.variants().size(), 3u);
  EXPECT_EQ(back.variants()[0].params, j.variants()[0].params);
  EXPECT_DOUBLE_EQ(back.variants()[0].predicted_cost, 1234.5);
  EXPECT_DOUBLE_EQ(back.variants()[0].measured_ms, 0.0625);
  EXPECT_FALSE(back.variants()[1].measured());
  EXPECT_FALSE(back.variants()[2].valid);
  EXPECT_EQ(back.measured_count(), 1u);

  // Idempotent: serializing the parse reproduces the text.
  EXPECT_EQ(back.serialize(), text);
}

TEST(Journal, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)TuningJournal::parse(""), ParseError);
  EXPECT_THROW((void)TuningJournal::parse("not-a-journal\n"), ParseError);
  EXPECT_THROW((void)TuningJournal::parse(
                   "gpustatic-journal v1\nmystery record\n"),
               ParseError);
  EXPECT_THROW(
      (void)TuningJournal::parse("gpustatic-journal v1\ncontext a b\n"),
      ParseError);
  EXPECT_THROW((void)TuningJournal::parse(
                   "gpustatic-journal v1\nvariant TC=1 BC=1 UIF=1 PL=16 "
                   "SC=1 FM=0 pred=1 time=x valid=1\n"),
               ParseError);
  EXPECT_THROW((void)TuningJournal::parse(
                   "gpustatic-journal v1\nvariant TC=1 BC=1 UIF=1 PL=16 "
                   "SC=1 FM=0 zz=1 time=- valid=1\n"),
               ParseError);
}

TEST(Journal, ParseReportsLineNumbers) {
  try {
    (void)TuningJournal::parse(
        "gpustatic-journal v1\ncontext a b 1\nbogus\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Journal, DecisionStepMustBeOneToken) {
  TuningJournal j;
  EXPECT_THROW(j.record_decision("two words", "detail"), Error);
}

// ---- journal files (atomic save, tolerant load) -----------------------------

namespace {

TuningJournal file_journal() {
  TuningJournal j;
  j.set_context("atax", "K20", 64);
  j.record_decision("rule", "lower half");
  for (int tc : {64, 128, 256}) {
    VariantRecord v;
    v.params.threads_per_block = tc;
    v.predicted_cost = 10.0 * tc;
    v.measured_ms = 0.001 * tc;
    j.record_variant(v);
  }
  return j;
}

std::string journal_temp(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

}  // namespace

TEST(JournalFile, SaveLoadRoundTripsAtomically) {
  const std::string path = journal_temp("journal_roundtrip.journal");
  const TuningJournal j = file_journal();
  replay::save_journal(path, j);
  // The atomic staging sibling must not survive a successful save.
  std::size_t siblings = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path()))
    if (entry.path().filename().string().find("journal_roundtrip") !=
        std::string::npos)
      ++siblings;
  EXPECT_EQ(siblings, 1u);
  const TuningJournal back = replay::load_journal(path);
  EXPECT_EQ(back.serialize(), j.serialize());
  // Overwrite-in-place replaces the whole file.
  TuningJournal j2;
  j2.set_context("bicg", "M40", 32);
  replay::save_journal(path, j2);
  EXPECT_EQ(replay::load_journal(path).workload(), "bicg");
  std::remove(path.c_str());
}

TEST(JournalFile, LoadMissingFileThrows) {
  EXPECT_THROW((void)replay::load_journal(journal_temp("nope.journal")),
               Error);
}

TEST(JournalFile, TruncatedFinalLineIsSkippedWithWarning) {
  const std::string path = journal_temp("journal_truncated.journal");
  std::string text = file_journal().serialize();
  text.resize(text.size() - 15);  // chop the last variant mid-line
  {
    std::ofstream f(path, std::ios::binary);
    f << text;
  }
  std::vector<std::string> warnings;
  const TuningJournal back = replay::load_journal(path, &warnings);
  EXPECT_EQ(back.variants().size(), 2u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("truncated final line"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JournalFile, InteriorCorruptionStillThrows) {
  const std::string path = journal_temp("journal_corrupt.journal");
  std::string text = file_journal().serialize();
  const std::size_t at = text.find("decision");
  text.replace(at, 8, "deXision");
  {
    std::ofstream f(path, std::ios::binary);
    f << text;
  }
  EXPECT_THROW((void)replay::load_journal(path), ParseError);
  std::remove(path.c_str());
}

// ---- record + replay ---------------------------------------------------------

TEST(RecordTuning, JournalsDecisionsAndRulePrunedVariants) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 8;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);

  EXPECT_EQ(j.workload(), "atax");
  EXPECT_EQ(j.gpu(), "K20");
  ASSERT_GE(j.decisions().size(), 3u);
  EXPECT_EQ(j.decisions()[0].step, "occupancy");
  EXPECT_EQ(j.decisions()[1].step, "rule");
  EXPECT_EQ(j.decisions()[2].step, "space");
  EXPECT_GT(j.variants().size(), 10u);
  EXPECT_GT(j.measured_count(), 10u);
  for (const VariantRecord& v : j.variants())
    if (v.valid) {
      EXPECT_GT(v.predicted_cost, 0.0);
    }
}

TEST(RecordTuning, StaticOnlyModeSkipsMeasurement) {
  const auto wl = kernels::make_atax(64);
  replay::RecordOptions opts;
  opts.measure_variants = false;
  opts.stride = 16;
  const TuningJournal j = replay::record_tuning(wl, arch::gpu("K20"), opts);
  EXPECT_GT(j.variants().size(), 0u);
  EXPECT_EQ(j.measured_count(), 0u);
}

TEST(Replay, DeterministicEngineShowsZeroDrift) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 8;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);

  const auto result = replay::replay(j, wl, gpu, opts.run);
  EXPECT_EQ(result.total_variants, j.variants().size());
  EXPECT_GT(result.replayed, 0u);
  EXPECT_EQ(result.drift_checked, j.measured_count());
  // Same deterministic engine + same measurement seed: bit-equal times.
  EXPECT_DOUBLE_EQ(result.max_rel_drift, 0.0);
  EXPECT_GT(result.best_time_ms, 0.0);
}

TEST(Replay, SurvivesJournalSerializationRoundTrip) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 16;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);
  const TuningJournal restored = TuningJournal::parse(j.serialize());
  const auto result = replay::replay(restored, wl, gpu, opts.run);
  EXPECT_DOUBLE_EQ(result.max_rel_drift, 0.0);
}

TEST(Replay, RejectsMismatchedContext) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 64;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);
  EXPECT_THROW((void)replay::replay(j, kernels::make_bicg(64), gpu), Error);
  EXPECT_THROW((void)replay::replay(j, wl, arch::gpu("P100")), Error);
}

// ---- journal-backed evaluator -----------------------------------------------

TEST(ReplayEvaluator, AnswersFromRecordedMeasurements) {
  const TuningJournal j = sample_journal();
  replay::ReplayEvaluator ev(j);
  EXPECT_EQ(ev.name(), "replay");
  EXPECT_EQ(ev.known_variants(), 1u);  // one valid + measured record
  EXPECT_DOUBLE_EQ(ev.evaluate(j.variants()[0].params), 0.0625);
  // Unmeasured, invalid, and never-journaled variants are all invalid.
  EXPECT_EQ(ev.evaluate(j.variants()[1].params), tuner::kInvalid);
  EXPECT_EQ(ev.evaluate(j.variants()[2].params), tuner::kInvalid);
  codegen::TuningParams unseen;
  unseen.threads_per_block = 777;
  EXPECT_EQ(ev.evaluate(unseen), tuner::kInvalid);
}

TEST(ReplayEvaluator, DrivesASearchToTheJournaledBest) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 4;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);
  ASSERT_GT(j.measured_count(), 0u);

  double journal_best = tuner::kInvalid;
  for (const VariantRecord& v : j.variants())
    if (v.valid && v.measured())
      journal_best = std::min(journal_best, v.measured_ms);

  // Exhaustive search over the recorded (rule-pruned) space, evaluated
  // purely from the journal: no simulator involved, same best time.
  replay::ReplayEvaluator ev(j);
  const auto prune = tuner::static_prune(opts.space, gpu, wl);
  const auto r = tuner::exhaustive_search(prune.rule_space, ev);
  EXPECT_DOUBLE_EQ(r.best_time, journal_best);
}

// ---- coefficient refinement ----------------------------------------------------

TEST(Refine, RecoversKnownLinearModelExactly) {
  // Synthetic ground truth: time = 2*O_fl + 5*O_mem + 0*O_ctrl + 1*O_reg.
  std::vector<replay::MixFeatures> x = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
      {1, 1, 0, 0}, {2, 1, 3, 1}, {4, 2, 1, 0}, {1, 3, 2, 2},
  };
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& f : x) y.push_back(2 * f[0] + 5 * f[1] + 0 + f[3]);

  const auto fit = replay::fit_coefficients(x, y);
  EXPECT_NEAR(fit.coeffs.c[0], 2.0, 1e-6);
  EXPECT_NEAR(fit.coeffs.c[1], 5.0, 1e-6);
  EXPECT_NEAR(fit.coeffs.c[2], 0.0, 1e-6);
  EXPECT_NEAR(fit.coeffs.c[3], 1.0, 1e-6);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Refine, ClampsNegativeCoefficientsToZero) {
  // O_ctrl anti-correlates with time; NNLS must clamp it, not go
  // negative.
  std::vector<replay::MixFeatures> x;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double fl = 1.0 + i;
    const double ctrl = 12.0 - i;
    x.push_back({fl, 0.5, ctrl, 0.1});
    y.push_back(3.0 * fl + 0.2);  // ctrl contributes nothing positive
  }
  const auto fit = replay::fit_coefficients(x, y);
  for (const double c : fit.coeffs.c) EXPECT_GE(c, 0.0);
}

TEST(Refine, RejectsDegenerateInputs) {
  std::vector<replay::MixFeatures> x = {{1, 2, 3, 4}};
  std::vector<double> y = {1.0};
  EXPECT_THROW((void)replay::fit_coefficients(x, y), Error);
  x.assign(4, {1, 2, 3, 4});
  y.assign(3, 1.0);
  EXPECT_THROW((void)replay::fit_coefficients(x, y), Error);
}

TEST(Refine, DefaultCoefficientsMatchTableTwoCpis) {
  const auto c = replay::default_coefficients(arch::Family::Kepler);
  EXPECT_DOUBLE_EQ(c.c[0],
                   arch::class_cpi(arch::OpClass::FLOPS,
                                   arch::Family::Kepler));
  EXPECT_DOUBLE_EQ(c.c[1],
                   arch::class_cpi(arch::OpClass::MEM,
                                   arch::Family::Kepler));
}

TEST(Refine, JournalFitImprovesInSampleFit) {
  const auto wl = kernels::make_matvec2d(128);
  const auto& gpu = arch::gpu("K20");
  replay::RecordOptions opts;
  opts.stride = 4;
  const TuningJournal j = replay::record_tuning(wl, gpu, opts);
  ASSERT_GE(j.measured_count(), 8u);

  const auto fit = replay::refine_from_journal(j, wl, gpu);
  EXPECT_EQ(fit.samples, j.measured_count());

  // Compare residuals of refined vs default coefficients on the
  // journaled data (default scores are relative, so allow a free global
  // scale fitted by least squares before comparing).
  std::vector<replay::MixFeatures> feats;
  std::vector<double> times;
  for (const auto& v : j.variants()) {
    if (!v.valid || !v.measured()) continue;
    const codegen::Compiler c(gpu, v.params);
    feats.push_back(replay::mix_features(c.compile(wl)));
    times.push_back(v.measured_ms);
  }
  const auto defaults = replay::default_coefficients(gpu.family);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    num += defaults.score(feats[i]) * times[i];
    den += defaults.score(feats[i]) * defaults.score(feats[i]);
  }
  const double scale = den > 0 ? num / den : 1.0;
  double ss_default = 0;
  double ss_refined = 0;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const double d = scale * defaults.score(feats[i]) - times[i];
    const double r = fit.coeffs.score(feats[i]) - times[i];
    ss_default += d * d;
    ss_refined += r * r;
  }
  EXPECT_LE(ss_refined, ss_default + 1e-12);
}

TEST(Journal, DecisionStepMayBeASubstringOfTheKeyword) {
  // "is" appears inside "decision"; the parser must still anchor the
  // detail after the step token, not at the first substring match.
  const auto j = replay::TuningJournal::parse(
      "gpustatic-journal v1\ndecision is the detail text\n");
  ASSERT_EQ(j.decisions().size(), 1u);
  EXPECT_EQ(j.decisions()[0].step, "is");
  EXPECT_EQ(j.decisions()[0].detail, "the detail text");
}
