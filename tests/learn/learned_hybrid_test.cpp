#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "learn/evaluator.hpp"
#include "learn/trainer.hpp"
#include "tuner/experiment.hpp"
#include "tuner/hybrid.hpp"

using namespace gpustatic;  // NOLINT
using learn::CostModel;
using learn::LearnedRankerOptions;
using tuner::HybridOptions;
using tuner::HybridResult;

namespace {

struct Fixture {
  dsl::WorkloadDesc wl = kernels::make_atax(64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  tuner::ParamSpace space = tuner::paper_space();
  tuner::Objective objective = tuner::make_objective(wl, gpu);
};

HybridResult run(Fixture& f, const HybridOptions& opts) {
  return tuner::hybrid_search(f.space, f.gpu, f.wl, f.objective, opts);
}

void expect_identical(const HybridResult& a, const HybridResult& b) {
  ASSERT_EQ(a.shortlist.size(), b.shortlist.size());
  for (std::size_t i = 0; i < a.shortlist.size(); ++i)
    EXPECT_EQ(a.shortlist[i].flat_index, b.shortlist[i].flat_index);
  EXPECT_EQ(a.best_params, b.best_params);
  EXPECT_DOUBLE_EQ(a.best_time_ms, b.best_time_ms);
  EXPECT_EQ(a.empirical_evaluations, b.empirical_evaluations);
}

/// A store whose measured time is a smooth function of the block size
/// for the fixture's (kernel, gpu), so a trained model can rank it.
std::shared_ptr<const CostModel> trained_model() {
  tuner::TuningStore store;
  for (int i = 0; i < 16; ++i) {
    tuner::StoreRecord r;
    r.kernel = "atax";
    r.gpu = "K20";
    r.n = 64;
    r.variant.params.threads_per_block = 32 * (i + 1);
    r.variant.measured_ms = 0.2 + std::abs(32 * (i + 1) - 256) / 1000.0;
    store.put(r);
  }
  learn::TrainOptions opts;
  opts.corpus.seed = 7;
  opts.forest.trees = 6;
  return std::make_shared<const CostModel>(
      learn::train_cost_model(store, opts).model);
}

}  // namespace

TEST(LearnedHybrid, DecliningRankerFallsBackByteIdentically) {
  // The acceptance bar: a ranker that declines must leave the search
  // indistinguishable from one with no ranker installed at all.
  Fixture f;
  HybridOptions plain;
  plain.empirical_budget = 8;
  HybridOptions declined = plain;
  declined.stage1 = [](const std::vector<tuner::RankedVariant>&,
                       codegen::CompilationCache&)
      -> std::optional<std::vector<double>> { return std::nullopt; };

  const HybridResult a = run(f, plain);
  const HybridResult b = run(f, declined);
  EXPECT_FALSE(a.used_learned_ranker);
  EXPECT_FALSE(b.used_learned_ranker);
  expect_identical(a, b);
}

TEST(LearnedHybrid, AcceptedRankingReordersTheShortlist) {
  Fixture f;
  HybridOptions plain;
  plain.empirical_budget = 4;
  const HybridResult analytic = run(f, plain);

  // Scores that exactly reverse the analytic order (lower = better).
  HybridOptions reversed = plain;
  reversed.stage1 = [](const std::vector<tuner::RankedVariant>& shortlist,
                       codegen::CompilationCache&)
      -> std::optional<std::vector<double>> {
    std::vector<double> scores(shortlist.size());
    for (std::size_t i = 0; i < shortlist.size(); ++i)
      scores[i] = static_cast<double>(shortlist.size() - i);
    return scores;
  };
  const HybridResult r = run(f, reversed);
  EXPECT_TRUE(r.used_learned_ranker);
  ASSERT_EQ(r.shortlist.size(), analytic.shortlist.size());
  for (std::size_t i = 0; i < r.shortlist.size(); ++i)
    EXPECT_EQ(r.shortlist[i].flat_index,
              analytic.shortlist[analytic.shortlist.size() - 1 - i]
                  .flat_index);
}

TEST(LearnedHybrid, TiedScoresBreakOnFlatIndex) {
  // All-equal scores leave no learned preference; the deterministic
  // tie-break is ascending flat index.
  Fixture f;
  HybridOptions opts;
  opts.empirical_budget = 2;
  opts.stage1 = [](const std::vector<tuner::RankedVariant>& shortlist,
                   codegen::CompilationCache&)
      -> std::optional<std::vector<double>> {
    return std::vector<double>(shortlist.size(), 1.0);
  };
  const HybridResult r = run(f, opts);
  EXPECT_TRUE(r.used_learned_ranker);
  for (std::size_t i = 1; i < r.shortlist.size(); ++i)
    EXPECT_LT(r.shortlist[i - 1].flat_index, r.shortlist[i].flat_index);
}

TEST(LearnedHybrid, MalformedRankingsAreErrors) {
  Fixture f;
  HybridOptions opts;
  opts.empirical_budget = 2;
  opts.stage1 = [](const std::vector<tuner::RankedVariant>& shortlist,
                   codegen::CompilationCache&)
      -> std::optional<std::vector<double>> {
    return std::vector<double>(shortlist.size() + 1, 1.0);  // misaligned
  };
  EXPECT_THROW((void)run(f, opts), Error);

  opts.stage1 = [](const std::vector<tuner::RankedVariant>& shortlist,
                   codegen::CompilationCache&)
      -> std::optional<std::vector<double>> {
    std::vector<double> scores(shortlist.size(), 1.0);
    scores[0] = std::numeric_limits<double>::quiet_NaN();
    return scores;
  };
  EXPECT_THROW((void)run(f, opts), Error);
}

TEST(LearnedHybrid, RankerWithoutAModelDeclines) {
  Fixture f;
  HybridOptions plain;
  plain.empirical_budget = 8;
  const HybridResult a = run(f, plain);

  // No model at all, and a default-constructed (unfitted) one: both
  // must decline and leave the analytic order untouched.
  for (const auto& model :
       {std::shared_ptr<const CostModel>{},
        std::make_shared<const CostModel>()}) {
    HybridOptions opts = plain;
    opts.stage1 = learn::make_stage1_ranker(model);
    const HybridResult b = run(f, opts);
    EXPECT_FALSE(b.used_learned_ranker);
    expect_identical(a, b);
  }
}

TEST(LearnedHybrid, TrainedModelDrivesStageOneEndToEnd) {
  Fixture f;
  const std::shared_ptr<const CostModel> model = trained_model();

  // Confidence gate wide open: the model must be consulted and used.
  LearnedRankerOptions ropts;
  ropts.max_variance = std::numeric_limits<double>::infinity();
  ropts.min_confident_fraction = 0.0;
  HybridOptions opts;
  opts.empirical_budget = 8;
  opts.stage1 = learn::make_stage1_ranker(model, ropts);
  const HybridResult r = run(f, opts);
  EXPECT_TRUE(r.used_learned_ranker);
  EXPECT_LT(r.best_time_ms, tuner::kInvalid);
  EXPECT_EQ(r.empirical_evaluations, 8u);

  // An impossible confidence bar declines -> byte-identical fallback.
  LearnedRankerOptions strict;
  strict.max_variance = -1.0;  // nothing is ever this confident
  HybridOptions gated = opts;
  gated.stage1 = learn::make_stage1_ranker(model, strict);
  const HybridResult fallback = run(f, gated);
  EXPECT_FALSE(fallback.used_learned_ranker);
  HybridOptions plain;
  plain.empirical_budget = 8;
  expect_identical(run(f, plain), fallback);
}

TEST(LearnedHybrid, PreWaveSchemaModelDeclinesCleanly) {
  // A model trained before the wave/tail features joined the schema
  // (ml/features.cpp: tail_sm_frac, waves_rem) must decline — never
  // score variants against a shifted feature vector.
  Fixture f;
  auto stale_model = std::make_shared<CostModel>(*trained_model());
  ASSERT_GE(stale_model->features.size(), 2u);
  stale_model->features.pop_back();
  stale_model->features.pop_back();
  const std::shared_ptr<const CostModel> stale = stale_model;

  // The strict evaluator refuses outright, pointing at retraining.
  auto cache = std::make_shared<codegen::CompilationCache>(f.wl, f.gpu);
  try {
    learn::LearnedEvaluator evaluator(stale, cache);
    FAIL() << "expected schema mismatch to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("retrain"), std::string::npos);
  }

  // The lenient ranker declines and falls back byte-identically to the
  // analytic stage-1 order, even with the confidence gate wide open.
  LearnedRankerOptions ropts;
  ropts.max_variance = std::numeric_limits<double>::infinity();
  ropts.min_confident_fraction = 0.0;
  HybridOptions opts;
  opts.empirical_budget = 8;
  opts.stage1 = learn::make_stage1_ranker(stale, ropts);
  const HybridResult declined = run(f, opts);
  EXPECT_FALSE(declined.used_learned_ranker);
  HybridOptions plain;
  plain.empirical_budget = 8;
  expect_identical(run(f, plain), declined);
}

TEST(LearnedEvaluator, ScoresVariantsAndValidatesItsInputs) {
  Fixture f;
  const std::shared_ptr<const CostModel> model = trained_model();
  auto cache = std::make_shared<codegen::CompilationCache>(f.wl, f.gpu);

  learn::LearnedEvaluator evaluator(model, cache);
  EXPECT_EQ(evaluator.name(), "learned");
  codegen::TuningParams params;
  params.threads_per_block = 128;
  const double cost = evaluator.evaluate(params);
  EXPECT_TRUE(std::isfinite(cost));
  EXPECT_GE(cost, 0.0);
  const CostModel::Score score = evaluator.score(params);
  EXPECT_DOUBLE_EQ(score.cost_ms, cost);
  EXPECT_GE(score.variance, 0.0);

  EXPECT_THROW(learn::LearnedEvaluator(nullptr, cache), Error);
  EXPECT_THROW(learn::LearnedEvaluator(
                   std::make_shared<const CostModel>(), cache),
               Error);
  EXPECT_THROW(learn::LearnedEvaluator(model, nullptr), Error);
}
