#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "learn/trainer.hpp"
#include "ml/features.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT
using learn::spearman_rank_correlation;
using learn::train_cost_model;
using learn::TrainOptions;
using learn::TrainReport;

namespace {

/// A learnable fleet store: measured time is a smooth function of the
/// block size, so a model that reads tc_frac can rank variants.
tuner::TuningStore learnable_store() {
  tuner::TuningStore store;
  for (const char* gpu : {"K20", "P100"})
    for (int i = 0; i < 16; ++i) {
      tuner::StoreRecord r;
      r.kernel = "atax";
      r.gpu = gpu;
      r.n = 64;
      r.variant.params.threads_per_block = 32 * (i + 1);
      r.variant.measured_ms =
          0.2 + std::abs(32 * (i + 1) - 256) / 1000.0;
      store.put(r);
    }
  return store;
}

}  // namespace

TEST(Trainer, FixedSeedIsByteDeterministic) {
  // The acceptance bar: same store + seed -> byte-identical model file
  // AND byte-identical metrics report.
  const tuner::TuningStore store = learnable_store();
  TrainOptions opts;
  opts.corpus.seed = 99;
  opts.forest.trees = 6;
  const TrainReport a = train_cost_model(store, opts);
  const TrainReport b = train_cost_model(store, opts);
  EXPECT_EQ(a.model.serialize(), b.model.serialize());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_table(), b.to_table());
}

TEST(Trainer, ReportAndMetaDescribeTheRun) {
  const tuner::TuningStore store = learnable_store();
  TrainOptions opts;
  opts.corpus.seed = 7;
  opts.forest.trees = 6;
  const TrainReport report = train_cost_model(store, opts);

  EXPECT_EQ(report.store_records, store.size());
  EXPECT_EQ(report.rows, store.size());
  EXPECT_EQ(report.train_rows + report.validation_rows, report.rows);
  EXPECT_EQ(report.skipped, 0u);
  ASSERT_EQ(report.groups.size(), 2u);
  for (const learn::GroupMetrics& g : report.groups) {
    EXPECT_EQ(g.kernel, "atax");
    EXPECT_GT(g.train_rows, 0u);
    EXPECT_GT(g.validation_rows, 0u);
  }

  // The model carries its provenance and the live feature schema.
  EXPECT_EQ(report.model.meta.seed, 7u);
  EXPECT_EQ(report.model.meta.records, report.train_rows);
  EXPECT_EQ(report.model.meta.groups, 2u);
  EXPECT_EQ(report.model.meta.target, "log1p_ms");
  EXPECT_EQ(report.model.features, ml::feature_names());
  EXPECT_TRUE(report.model.forest.fitted());
}

TEST(Trainer, LearnsToRankASmoothTarget) {
  // Held-out Spearman on a target that is a clean function of the
  // features should be strongly positive; regret should be bounded.
  TrainOptions opts;
  opts.corpus.seed = 7;
  const TrainReport report = train_cost_model(learnable_store(), opts);
  ASSERT_TRUE(std::isfinite(report.mean_spearman));
  EXPECT_GT(report.mean_spearman, 0.5);
  EXPECT_GE(report.mean_top1_regret, 0.0);
  EXPECT_GE(report.mean_topk_regret, 0.0);
  EXPECT_LE(report.mean_topk_regret, report.mean_top1_regret + 1e-12);
}

TEST(Trainer, NotEnoughDataPropagatesAsError) {
  tuner::TuningStore store;
  tuner::StoreRecord r;
  r.kernel = "atax";
  r.gpu = "K20";
  r.n = 64;
  r.variant.measured_ms = 0.5;
  store.put(r);
  try {
    (void)train_cost_model(store, {});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("not enough training data"),
              std::string::npos)
        << e.what();
  }
}

// ---- the rank metric itself ------------------------------------------------

TEST(SpearmanRankCorrelation, AgreesWithHandValues) {
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
  // Monotone but nonlinear is still a perfect rank correlation.
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0);
}

TEST(SpearmanRankCorrelation, TiesUseAverageRanks) {
  // {1, 2, 2, 3} vs {1, 2, 3, 4}: the tied pair takes rank 2.5 each.
  // Pearson over ranks {1, 2.5, 2.5, 4} x {1, 2, 3, 4} = ~0.9487.
  const double rho =
      spearman_rank_correlation({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_NEAR(rho, 0.9486832980505138, 1e-12);
}

TEST(SpearmanRankCorrelation, DegenerateInputsAreNaN) {
  EXPECT_TRUE(std::isnan(spearman_rank_correlation({1, 1, 1}, {1, 2, 3})));
  EXPECT_TRUE(std::isnan(spearman_rank_correlation({1, 2, 3}, {4, 4, 4})));
  EXPECT_TRUE(std::isnan(spearman_rank_correlation({1}, {2})));
  EXPECT_TRUE(std::isnan(spearman_rank_correlation({}, {})));
  EXPECT_TRUE(std::isnan(spearman_rank_correlation({1, 2}, {1, 2, 3})));
}
