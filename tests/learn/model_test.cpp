#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "learn/model.hpp"

using namespace gpustatic;  // NOLINT
using learn::CostModel;

namespace {

/// A small but real model: forest fit on a deterministic toy target.
CostModel toy_model() {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({i / 23.0, (i % 5) / 4.0});
    targets.push_back(0.1 * i + (i % 3));
  }
  ml::RegressionForestOptions opts;
  opts.trees = 4;
  CostModel model;
  model.forest.fit(rows, targets, opts);
  model.features = {"alpha", "beta"};
  model.meta.seed = 99;
  model.meta.records = rows.size();
  model.meta.groups = 1;
  return model;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(CostModelFormat, SerializeParseSerializeIsByteIdentical) {
  const CostModel model = toy_model();
  const std::string text = model.serialize();
  const CostModel reparsed = CostModel::parse(text);
  EXPECT_EQ(reparsed.serialize(), text);

  // The reparse predicts identically too, not just textually.
  const std::vector<double> probe = {0.4, 0.6};
  EXPECT_EQ(model.score(probe).cost_ms, reparsed.score(probe).cost_ms);
  EXPECT_EQ(model.score(probe).variance, reparsed.score(probe).variance);
  EXPECT_EQ(reparsed.features, model.features);
  EXPECT_EQ(reparsed.meta.seed, model.meta.seed);
  EXPECT_EQ(reparsed.meta.records, model.meta.records);
}

TEST(CostModelFormat, SaveLoadSaveIsByteIdentical) {
  const CostModel model = toy_model();
  const TempFile a("model_roundtrip_a.model");
  const TempFile b("model_roundtrip_b.model");
  model.save(a.path);
  const CostModel loaded = CostModel::load(a.path);
  loaded.save(b.path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string first = slurp(a.path);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, slurp(b.path));
}

TEST(CostModelFormat, ScoresAreNonNegativeMilliseconds) {
  const CostModel model = toy_model();
  EXPECT_GE(model.score({0.0, 0.0}).cost_ms, 0.0);
  EXPECT_GE(model.score({1.0, 1.0}).variance, 0.0);
}

TEST(CostModelFormat, TruncationIsAClearError) {
  // Model lines are not independent (unlike store records): a file that
  // stops before `end` must fail loudly, not load a junk model.
  const std::string text = toy_model().serialize();
  const std::size_t end_at = text.rfind("end");
  ASSERT_NE(end_at, std::string::npos);
  const std::string truncated = text.substr(0, end_at);
  try {
    (void)CostModel::parse(truncated);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }

  // Cutting mid-tree is also truncation, whatever line it lands on.
  EXPECT_THROW((void)CostModel::parse(text.substr(0, text.size() / 2)),
               ParseError);
}

TEST(CostModelFormat, ContentAfterEndIsSkippedWithWarning) {
  const CostModel model = toy_model();
  const std::string text = model.serialize() + "stray line after end\n";
  std::vector<std::string> warnings;
  const CostModel parsed = CostModel::parse(text, &warnings);
  EXPECT_EQ(parsed.serialize(), model.serialize());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("end"), std::string::npos) << warnings[0];
}

TEST(CostModelFormat, BadMagicAndGarbageAreParseErrors) {
  EXPECT_THROW((void)CostModel::parse("not-a-model v1\nend\n"), ParseError);
  EXPECT_THROW((void)CostModel::parse(""), ParseError);
  EXPECT_THROW((void)CostModel::parse("gpustatic-model v2\nend\n"),
               ParseError);
}

TEST(CostModelLenientLoad, MissingFileIsSilentlyNoModel) {
  std::vector<std::string> warnings;
  const auto model = CostModel::load_lenient(
      testing::TempDir() + "does_not_exist.model", &warnings);
  EXPECT_FALSE(model.has_value());
  EXPECT_TRUE(warnings.empty());
}

TEST(CostModelLenientLoad, CorruptFileIsNoModelPlusWarning) {
  const TempFile f("model_corrupt.model");
  {
    std::ofstream out(f.path);
    out << "gpustatic-model v1\nmeta this is not a meta line\n";
  }
  std::vector<std::string> warnings;
  const auto model = CostModel::load_lenient(f.path, &warnings);
  EXPECT_FALSE(model.has_value());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find(f.path), std::string::npos) << warnings[0];
}

TEST(CostModelLenientLoad, GoodFileLoads) {
  const CostModel model = toy_model();
  const TempFile f("model_lenient_good.model");
  model.save(f.path);
  std::vector<std::string> warnings;
  const auto loaded = CostModel::load_lenient(f.path, &warnings);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(loaded->serialize(), model.serialize());
}

TEST(CostModelLoad, MissingFileThrows) {
  EXPECT_THROW(
      (void)CostModel::load(testing::TempDir() + "missing_model.model"),
      Error);
}
