#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "learn/corpus.hpp"
#include "ml/features.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT
using learn::build_corpus;
using learn::Corpus;
using learn::CorpusOptions;

namespace {

tuner::StoreRecord record(const std::string& kernel, const std::string& gpu,
                          int tc, double measured_ms, bool valid = true) {
  tuner::StoreRecord r;
  r.kernel = kernel;
  r.gpu = gpu;
  r.n = 64;
  r.variant.params.threads_per_block = tc;
  r.variant.measured_ms = measured_ms;
  r.variant.valid = valid;
  return r;
}

/// `count` measured atax/K20 rows at distinct param keys.
tuner::TuningStore measured_store(int count,
                                  const std::string& kernel = "atax",
                                  const std::string& gpu = "K20") {
  tuner::TuningStore store;
  for (int i = 0; i < count; ++i)
    store.put(record(kernel, gpu, 32 * (i + 1), 0.5 + 0.01 * i));
  return store;
}

}  // namespace

TEST(Corpus, JoinsMeasuredRecordsIntoFeatureRows) {
  const tuner::TuningStore store = measured_store(6);
  CorpusOptions opts;
  opts.min_records = 4;
  const Corpus corpus = build_corpus(store, opts);

  EXPECT_EQ(corpus.feature_names, ml::feature_names());
  ASSERT_EQ(corpus.rows.size(), 6u);
  ASSERT_EQ(corpus.groups.size(), 1u);
  EXPECT_EQ(corpus.groups[0].kernel, "atax");
  EXPECT_EQ(corpus.groups[0].gpu, "K20");
  EXPECT_EQ(corpus.skipped(), 0u);
  for (const learn::CorpusRow& row : corpus.rows) {
    EXPECT_EQ(row.features.size(), ml::feature_names().size());
    EXPECT_DOUBLE_EQ(row.target, std::log1p(row.measured_ms));
    EXPECT_EQ(row.group, 0u);
  }
}

TEST(Corpus, ExcludesInvalidAndUnmeasuredRecordsWithCounters) {
  // Failed (valid=0) and never-executed (time=-) measurements must not
  // become training rows — only counters.
  tuner::TuningStore store = measured_store(6);
  store.put(record("atax", "K20", 416, 0.9, /*valid=*/false));
  store.put(record("atax", "K20", 448, 1.1, /*valid=*/false));
  store.put(record("atax", "K20", 480, -1.0));  // never executed
  CorpusOptions opts;
  opts.min_records = 4;
  const Corpus corpus = build_corpus(store, opts);

  EXPECT_EQ(corpus.rows.size(), 6u);
  EXPECT_EQ(corpus.skipped_invalid, 2u);
  EXPECT_EQ(corpus.skipped_unmeasured, 1u);
  EXPECT_EQ(corpus.skipped_unloadable, 0u);
  for (const learn::CorpusRow& row : corpus.rows)
    EXPECT_GE(row.measured_ms, 0.0);
}

TEST(Corpus, UnknownKernelIsSkippedWithOneWarningPerKernel) {
  tuner::TuningStore store = measured_store(6);
  store.put(record("no-such-kernel", "K20", 64, 0.7));
  store.put(record("no-such-kernel", "K20", 128, 0.8));
  CorpusOptions opts;
  opts.min_records = 4;
  std::vector<std::string> warnings;
  const Corpus corpus = build_corpus(store, opts, &warnings);

  EXPECT_EQ(corpus.rows.size(), 6u);
  EXPECT_EQ(corpus.skipped_unloadable, 2u);
  ASSERT_EQ(warnings.size(), 1u);  // once per kernel, not per record
  EXPECT_NE(warnings[0].find("no-such-kernel"), std::string::npos)
      << warnings[0];
}

TEST(Corpus, TooFewUsableRecordsIsAClearError) {
  // 3 measured + 2 invalid: the invalid ones must not count toward the
  // minimum, and the error must say what is wrong, not hand back junk.
  tuner::TuningStore store = measured_store(3);
  store.put(record("atax", "K20", 416, 0.9, /*valid=*/false));
  store.put(record("atax", "K20", 448, 1.1, /*valid=*/false));
  CorpusOptions opts;
  opts.min_records = 4;
  try {
    (void)build_corpus(store, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("not enough training data"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)build_corpus(tuner::TuningStore{}, opts), Error);
}

TEST(Corpus, SplitsAreDeterministicAndPartitionEachGroup) {
  tuner::TuningStore store = measured_store(12);
  for (int i = 0; i < 12; ++i)
    store.put(record("bicg", "P100", 32 * (i + 1), 0.3 + 0.02 * i));
  CorpusOptions opts;
  opts.min_records = 4;
  opts.validation_fraction = 0.25;

  const Corpus a = build_corpus(store, opts);
  const Corpus b = build_corpus(store, opts);
  ASSERT_EQ(a.groups.size(), 2u);
  ASSERT_EQ(b.groups.size(), 2u);

  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    // Same seed -> identical split.
    EXPECT_EQ(a.groups[g].train, b.groups[g].train);
    EXPECT_EQ(a.groups[g].validation, b.groups[g].validation);

    // train + validation partition the group's rows exactly.
    const learn::CorpusGroup& grp = a.groups[g];
    EXPECT_FALSE(grp.validation.empty());
    std::vector<std::size_t> merged = grp.train;
    merged.insert(merged.end(), grp.validation.begin(),
                  grp.validation.end());
    std::sort(merged.begin(), merged.end());
    std::vector<std::size_t> rows = grp.rows;
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(merged, rows);
  }

  // A different seed reshuffles at least one group's split.
  opts.seed += 1;
  const Corpus c = build_corpus(store, opts);
  bool any_different = false;
  for (std::size_t g = 0; g < a.groups.size(); ++g)
    any_different |= a.groups[g].validation != c.groups[g].validation;
  EXPECT_TRUE(any_different);
}

TEST(Corpus, TrainAndValidationIndexHelpersAlignWithMatrix) {
  CorpusOptions opts;
  opts.min_records = 4;
  const Corpus corpus = build_corpus(measured_store(8), opts);
  const std::vector<std::size_t> train = corpus.train_indices();
  const std::vector<std::size_t> val = corpus.validation_indices();
  EXPECT_EQ(train.size() + val.size(), corpus.rows.size());

  const auto matrix = corpus.matrix(train);
  const auto targets = corpus.targets(train);
  ASSERT_EQ(matrix.size(), train.size());
  ASSERT_EQ(targets.size(), train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(matrix[i], corpus.rows[train[i]].features);
    EXPECT_EQ(targets[i], corpus.rows[train[i]].target);
  }
}
