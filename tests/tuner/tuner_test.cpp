#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "tuner/experiment.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"
#include "tuner/spec_parser.hpp"
#include "tuner/static_search.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::tuner;  // NOLINT

// ---- ParamSpace ---------------------------------------------------------

TEST(Space, PaperSpaceHas5120Variants) {
  EXPECT_EQ(paper_space().size(), 5120u);
}

TEST(Space, PointIndexRoundTrip) {
  const ParamSpace s = paper_space();
  for (const std::size_t i : {0u, 1u, 777u, 5119u}) {
    EXPECT_EQ(s.flat_index(s.point_at(i)), i);
  }
}

TEST(Space, ToParamsMapsDimensions) {
  const ParamSpace s = paper_space();
  Point p(s.rank(), 0);
  const auto params = s.to_params(p);
  EXPECT_EQ(params.threads_per_block, 32);
  EXPECT_EQ(params.block_count, 24);
  EXPECT_EQ(params.unroll, 1);
  EXPECT_EQ(params.l1_pref_kb, 16);
  EXPECT_FALSE(params.fast_math);
}

TEST(Space, RestrictShrinksOneDimension) {
  const ParamSpace s = paper_space();
  const ParamSpace r = s.restrict("TC", {128, 256, 512, 1024});
  EXPECT_EQ(r.dimension("TC").values.size(), 4u);
  EXPECT_EQ(r.size(), s.size() / 8);  // 32 -> 4 thread values
  EXPECT_THROW((void)s.restrict("TC", {7}), ConfigError);
  EXPECT_THROW((void)s.restrict("ZZ", {1}), LookupError);
}

// ---- spec parser ----------------------------------------------------------

TEST(SpecParser, ParsesFig3Annotation) {
  const ParamSpace s = parse_perf_tuning(R"(/*@ begin PerfTuning (
    def performance_params {
      param TC[] = range(32,1025,32);
      param BC[] = range(24,193,24);
      param UIF[] = range(1,6);
      param PL[] = [16,48];
      param CFLAGS[] = ['', '-use_fast_math'];
    }
  ) @*/)");
  EXPECT_EQ(s.dimension("TC").values.size(), 32u);
  EXPECT_EQ(s.dimension("BC").values.size(), 8u);
  EXPECT_EQ(s.dimension("UIF").values.size(), 5u);  // python range(1,6)
  EXPECT_EQ(s.dimension("PL").values.size(), 2u);
  EXPECT_EQ(s.dimension("CFLAGS").values.size(), 2u);
  EXPECT_EQ(s.size(), 32u * 8 * 5 * 2 * 2);
}

TEST(SpecParser, RangeDefaultStep) {
  const ParamSpace s = parse_perf_tuning(
      "def performance_params { param UIF[] = range(1,4); }");
  const auto& v = s.dimension("UIF").values;
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SpecParser, RoundTrip) {
  const ParamSpace s = paper_space();
  const ParamSpace r = parse_perf_tuning(to_perf_tuning(s));
  EXPECT_EQ(r.size(), s.size());
  EXPECT_EQ(r.dimension("TC").values, s.dimension("TC").values);
  EXPECT_EQ(r.dimension("CFLAGS").values, s.dimension("CFLAGS").values);
}

TEST(SpecParser, ErrorsOnGarbage) {
  EXPECT_THROW((void)parse_perf_tuning("nonsense"), ParseError);
  EXPECT_THROW((void)parse_perf_tuning(
                   "def performance_params { param X[] = range(1); }"),
               ParseError);
  EXPECT_THROW(
      (void)parse_perf_tuning(
          "def performance_params { param X[] = ['bogus-flag']; }"),
      ParseError);
}

// ---- search strategies -----------------------------------------------------

namespace {

/// Smooth synthetic objective with a unique known optimum inside the
/// paper space: minimized at TC=512, UIF=3, fast-math on.
double synthetic(const codegen::TuningParams& p) {
  const double t = (p.threads_per_block - 512.0) / 1024.0;
  const double u = (p.unroll - 3.0) / 6.0;
  const double f = p.fast_math ? 0.0 : 0.05;
  return 1.0 + t * t + u * u + f;
}

}  // namespace

TEST(Search, ExhaustiveFindsGlobalOptimum) {
  const ParamSpace s = paper_space();
  const auto r = exhaustive_search(s, synthetic);
  EXPECT_EQ(r.distinct_evaluations, s.size());
  EXPECT_EQ(r.best_params.threads_per_block, 512);
  EXPECT_EQ(r.best_params.unroll, 3);
  EXPECT_TRUE(r.best_params.fast_math);
}

class StrategyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyTest, FindsNearOptimumWithinBudget) {
  const ParamSpace s = paper_space();
  SearchOptions opts;
  opts.budget = 400;
  opts.seed = 99;
  SearchResult r;
  const std::string which = GetParam();
  if (which == "random") r = random_search(s, synthetic, opts);
  else if (which == "sa") r = simulated_annealing(s, synthetic, opts);
  else if (which == "ga") r = genetic_search(s, synthetic, opts);
  else r = nelder_mead_search(s, synthetic, opts);
  EXPECT_LE(r.distinct_evaluations, 400u);
  // Global optimum value is 1.0; within 5% is "found the basin".
  EXPECT_LT(r.best_time, 1.05) << which;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values("random", "sa", "ga", "nm"));

TEST(Search, DeterministicGivenSeed) {
  const ParamSpace s = paper_space();
  SearchOptions opts;
  opts.budget = 100;
  opts.seed = 7;
  const auto a = genetic_search(s, synthetic, opts);
  const auto b = genetic_search(s, synthetic, opts);
  EXPECT_EQ(a.best_time, b.best_time);
  EXPECT_EQ(a.distinct_evaluations, b.distinct_evaluations);
}

TEST(Search, CachingCountsDistinctOnly) {
  const ParamSpace s = paper_space();
  CachingEvaluator eval(s, synthetic);
  const Point p = s.point_at(42);
  eval(p);
  eval(p);
  eval(p);
  EXPECT_EQ(eval.total_calls(), 3u);
  EXPECT_EQ(eval.distinct_evaluations(), 1u);
}

TEST(Search, InvalidObjectiveValuesAreSkippedOver) {
  // Objective invalid except at one point.
  const ParamSpace s = paper_space();
  const auto fn = [](const codegen::TuningParams& p) {
    return p.threads_per_block == 256 && p.unroll == 2 ? 1.0 : kInvalid;
  };
  const auto r = exhaustive_search(s, fn);
  EXPECT_EQ(r.best_params.threads_per_block, 256);
  EXPECT_EQ(r.best_params.unroll, 2);
  EXPECT_EQ(r.best_time, 1.0);
}

// ---- static pruning ---------------------------------------------------------

TEST(StaticPrune, KeplerReductionsMatchPaper) {
  const auto wl = kernels::make_atax(256);
  const auto p = static_prune(paper_space(), arch::gpu("K20"), wl);
  // 4 of 32 thread candidates -> 87.5%; rule halves again -> 93.75%.
  EXPECT_NEAR(p.static_reduction(), 0.875, 1e-9);
  EXPECT_NEAR(p.rule_reduction(), 0.9375, 1e-9);
  EXPECT_EQ(p.static_size, 640u);
  EXPECT_EQ(p.rule_size, 320u);
}

TEST(StaticPrune, RuleDirectionFollowsIntensity) {
  const auto& gpu = arch::gpu("K20");
  const auto low = static_prune(paper_space(), gpu,
                                kernels::make_bicg(256));
  EXPECT_FALSE(low.prefers_upper);
  EXPECT_LE(low.intensity, kIntensityThreshold);
  const auto high = static_prune(paper_space(), gpu,
                                 kernels::make_ex14fj(32));
  EXPECT_TRUE(high.prefers_upper);
  EXPECT_GT(high.intensity, kIntensityThreshold);
  // Lower half keeps the smallest candidate, upper half the largest.
  EXPECT_EQ(low.rule_threads.front(), low.static_threads.front());
  EXPECT_EQ(high.rule_threads.back(), high.static_threads.back());
}

TEST(StaticPrune, PrunedSpacesAreSubsets) {
  const auto wl = kernels::make_matvec2d(256);
  const auto p = static_prune(paper_space(), arch::gpu("M40"), wl);
  for (const std::int64_t t : p.rule_threads) {
    bool in_static = false;
    for (const std::int64_t u : p.static_threads)
      if (u == t) in_static = true;
    EXPECT_TRUE(in_static) << t;
  }
  EXPECT_LE(p.rule_size, p.static_size);
  EXPECT_LE(p.static_size, p.full_size);
}

// ---- experiment protocol -----------------------------------------------------

TEST(Experiment, RankSplitIsMedian) {
  std::vector<TrialRecord> trials(10);
  for (int i = 0; i < 10; ++i) {
    trials[static_cast<std::size_t>(i)].time_ms = 10 - i;  // descending
    trials[static_cast<std::size_t>(i)].valid = true;
  }
  const auto ranked = rank_trials(trials);
  EXPECT_EQ(ranked.rank1.size(), 5u);
  EXPECT_EQ(ranked.rank2.size(), 5u);
  EXPECT_DOUBLE_EQ(ranked.best.time_ms, 1.0);
  for (const auto& t : ranked.rank1)
    for (const auto& u : ranked.rank2) EXPECT_LE(t.time_ms, u.time_ms);
}

TEST(Experiment, InvalidTrialsExcludedFromRanks) {
  std::vector<TrialRecord> trials(4);
  trials[0].time_ms = 1;
  trials[1].time_ms = 2;
  trials[2].time_ms = 3;
  trials[3].valid = false;
  for (int i = 0; i < 3; ++i) trials[static_cast<std::size_t>(i)].valid = true;
  const auto ranked = rank_trials(trials);
  EXPECT_EQ(ranked.rank1.size() + ranked.rank2.size(), 3u);
}

TEST(Experiment, SweepIsDeterministicAndOrdered) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace s = paper_space();
  const auto a = sweep(s, wl, gpu, {}, /*stride=*/512, /*threads=*/4);
  const auto b = sweep(s, wl, gpu, {}, /*stride=*/512, /*threads=*/2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_ms, b[i].time_ms) << i;
    EXPECT_EQ(a[i].params.threads_per_block,
              b[i].params.threads_per_block);
  }
}

TEST(Experiment, StatsComputeQuartiles) {
  std::vector<TrialRecord> rank(4);
  for (int i = 0; i < 4; ++i) {
    auto& t = rank[static_cast<std::size_t>(i)];
    t.params.threads_per_block = 128 * (i + 1);
    t.occupancy = 0.5 + 0.1 * i;
    t.reg_traffic = 100.0 * (i + 1);
    t.regs_per_thread = 20;
  }
  const auto s = rank_stats(rank);
  EXPECT_DOUBLE_EQ(s.threads_p50, (256 + 384) / 2.0);
  EXPECT_EQ(s.regs_allocated, 20u);
  EXPECT_NEAR(s.occ_mean, 65.0, 1e-9);
}
