// Cooperative cancellation through the search core: the
// CachingEvaluator's charge-nothing contract, strategy loop-head
// checks, and the service's in-band timed_out response with partial
// accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>

#include "common/deadline.hpp"
#include "core/service.hpp"
#include "tuner/search.hpp"
#include "tuner/space.hpp"

using namespace gpustatic;  // NOLINT
using common::CancelledError;
using common::CancelToken;
using common::Deadline;
using tuner::CachingEvaluator;
using tuner::ParamSpace;
using tuner::Point;
using tuner::SearchOptions;

namespace {

/// Objective that counts how often the backend actually ran.
struct CountingObjective {
  std::atomic<std::size_t>* calls;
  double operator()(const codegen::TuningParams& params) const {
    ++*calls;
    return static_cast<double>(params.threads_per_block);
  }
};

SearchOptions cancelled_options() {
  SearchOptions opts;
  const CancelToken token = CancelToken::manual();
  token.cancel();
  opts.cancel = token;
  return opts;
}

}  // namespace

TEST(Cancel, CachingEvaluatorChargesNothingForCancelledWork) {
  const ParamSpace space = tuner::paper_space();
  std::atomic<std::size_t> backend_calls{0};
  CachingEvaluator eval(space, tuner::Objective(CountingObjective{
                                   &backend_calls}));
  // Some real work first, so there is a partial result to preserve.
  const Point first = space.point_at(0);
  EXPECT_NO_THROW(eval(first));
  ASSERT_EQ(backend_calls.load(), 1u);
  const std::size_t calls_before = eval.total_calls();
  const std::size_t fresh_before = eval.fresh_evaluations();

  const CancelToken token = CancelToken::manual();
  token.cancel();
  eval.set_cancel(token);
  EXPECT_THROW(eval(space.point_at(1)), CancelledError);
  EXPECT_THROW(eval.evaluate_batch({space.point_at(2), space.point_at(3)}),
               CancelledError);
  // The backend never ran and nothing was charged: cancelled work is
  // free, distinct from budget exhaustion.
  EXPECT_EQ(backend_calls.load(), 1u);
  EXPECT_EQ(eval.total_calls(), calls_before);
  EXPECT_EQ(eval.fresh_evaluations(), fresh_before);
  // The pre-cancellation result stays harvestable.
  EXPECT_EQ(eval.distinct_evaluations(), 1u);
  EXPECT_TRUE(eval.cached(first));
}

TEST(Cancel, ExhaustiveSearchChecksBetweenRounds) {
  const ParamSpace space = tuner::paper_space();
  std::atomic<std::size_t> backend_calls{0};
  CachingEvaluator eval(space, tuner::Objective(CountingObjective{
                                   &backend_calls}));
  EXPECT_THROW((void)tuner::exhaustive_search(space, eval,
                                              cancelled_options()),
               CancelledError);
  EXPECT_EQ(backend_calls.load(), 0u);
}

TEST(Cancel, StochasticStrategiesCheckAtTheLoopHead) {
  const ParamSpace space = tuner::paper_space();
  const SearchOptions opts = cancelled_options();
  std::atomic<std::size_t> backend_calls{0};
  const tuner::Objective fn = CountingObjective{&backend_calls};
  {
    CachingEvaluator eval(space, fn);
    EXPECT_THROW((void)tuner::random_search(space, eval, opts),
                 CancelledError);
  }
  {
    CachingEvaluator eval(space, fn);
    EXPECT_THROW((void)tuner::simulated_annealing(space, eval, opts),
                 CancelledError);
  }
  {
    CachingEvaluator eval(space, fn);
    EXPECT_THROW((void)tuner::genetic_search(space, eval, opts),
                 CancelledError);
  }
  {
    CachingEvaluator eval(space, fn);
    EXPECT_THROW((void)tuner::nelder_mead_search(space, eval, opts),
                 CancelledError);
  }
  EXPECT_EQ(backend_calls.load(), 0u);
}

TEST(Cancel, UncancelledTokenChangesNothing) {
  // A live (but never-firing) token is pure overhead-free plumbing: the
  // search result is identical to one with the inert default token.
  const ParamSpace space = tuner::paper_space();
  std::atomic<std::size_t> calls_a{0};
  std::atomic<std::size_t> calls_b{0};
  SearchOptions with_token;
  with_token.budget = 40;
  with_token.cancel =
      CancelToken::with_deadline(Deadline::after_ms(600'000));
  SearchOptions without = with_token;
  without.cancel = CancelToken();

  CachingEvaluator a(space, tuner::Objective(CountingObjective{&calls_a}));
  CachingEvaluator b(space, tuner::Objective(CountingObjective{&calls_b}));
  const auto ra = tuner::random_search(space, a, with_token);
  const auto rb = tuner::random_search(space, b, without);
  EXPECT_EQ(ra.best_params.to_string(), rb.best_params.to_string());
  EXPECT_DOUBLE_EQ(ra.best_time, rb.best_time);
  EXPECT_EQ(ra.distinct_evaluations, rb.distinct_evaluations);
  EXPECT_EQ(calls_a.load(), calls_b.load());
}

TEST(Cancel, ServiceAnswersTimedOutInBandWithPartialAccounting) {
  core::TuningService service;
  core::TuneRequest request;
  request.kernel = "atax";
  request.n = 16;
  request.method = "random";
  const CancelToken token = CancelToken::manual();
  token.cancel();  // expired before the search even starts
  request.cancel = token;

  const core::TuneResponse response = service.tune(request);
  EXPECT_FALSE(response.ok());  // a timed-out search is not a completed one
  EXPECT_TRUE(response.timed_out);
  EXPECT_EQ(response.error, "request cancelled");
  EXPECT_EQ(response.fresh_evaluations, 0u);
  EXPECT_FALSE(response.deduplicated);
  EXPECT_EQ(service.stats().timed_out, 1u);

  // The service keeps serving: the same request without a deadline
  // completes normally.
  core::TuneRequest clean = request;
  clean.cancel = CancelToken();
  const core::TuneResponse ok = service.tune(clean);
  EXPECT_TRUE(ok.ok()) << ok.error;
  EXPECT_FALSE(ok.timed_out);
}

TEST(Cancel, GenerousDeadlineCompletesWithTimedOutUnset) {
  core::TuningService service;
  core::TuneRequest request;
  request.kernel = "atax";
  request.n = 16;
  request.method = "rule";
  request.cancel =
      CancelToken::with_deadline(Deadline::after_ms(600'000));
  const core::TuneResponse response = service.tune(request);
  EXPECT_TRUE(response.ok()) << response.error;
  EXPECT_FALSE(response.timed_out);
}
