#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT
using tuner::MeasuredVariant;
using tuner::StoreRecord;
using tuner::TuningStore;

namespace {

StoreRecord record(const char* kernel, const char* gpu, std::int64_t n,
                   int tc, double time_ms) {
  StoreRecord r;
  r.kernel = kernel;
  r.gpu = gpu;
  r.n = n;
  r.variant.params.threads_per_block = tc;
  r.variant.measured_ms = time_ms;
  return r;
}

TuningStore sample_store() {
  TuningStore s;
  s.put(record("atax", "K20", 64, 128, 0.125));
  s.put(record("atax", "K20", 64, 256, 0.5));
  s.put(record("bicg", "P100", 128, 64, 0.0625));
  // A rejected configuration: evaluated, found unlaunchable.
  StoreRecord bad = record("atax", "K20", 64, 96, -1.0);
  bad.variant.valid = false;
  bad.variant.measured_ms = -1;
  s.put(bad);
  return s;
}

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

}  // namespace

// ---- in-memory behavior -----------------------------------------------------

TEST(TuningStore, FindIsKeyedOnKernelGpuSizeAndParams) {
  const TuningStore s = sample_store();
  codegen::TuningParams p;
  p.threads_per_block = 128;
  const MeasuredVariant* hit = s.find("atax", "K20", 64, p);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->measured_ms, 0.125);
  // Any key component off by one misses.
  EXPECT_EQ(s.find("bicg", "K20", 64, p), nullptr);
  EXPECT_EQ(s.find("atax", "M40", 64, p), nullptr);
  EXPECT_EQ(s.find("atax", "K20", 65, p), nullptr);
  p.unroll = 2;
  EXPECT_EQ(s.find("atax", "K20", 64, p), nullptr);
}

TEST(TuningStore, PutUpsertsInPlace) {
  TuningStore s = sample_store();
  const std::size_t before = s.size();
  s.put(record("atax", "K20", 64, 128, 0.25));  // same key, new time
  EXPECT_EQ(s.size(), before);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  EXPECT_DOUBLE_EQ(s.find("atax", "K20", 64, p)->measured_ms, 0.25);
  // Upsert keeps first-insertion order: the refreshed record is still
  // the first one serialized.
  EXPECT_EQ(s.records().front().variant.params.threads_per_block, 128);
}

TEST(TuningStore, ContextCollectsOneTuningRunsRecords) {
  const TuningStore s = sample_store();
  EXPECT_EQ(s.context("atax", "K20", 64).size(), 3u);
  EXPECT_EQ(s.context("bicg", "P100", 128).size(), 1u);
  EXPECT_TRUE(s.context("atax", "K20", 128).empty());
}

TEST(TuningStore, RejectsMultiTokenKeys) {
  TuningStore s;
  EXPECT_THROW(s.put(record("two words", "K20", 1, 32, 1.0)), Error);
  EXPECT_THROW(s.put(record("atax", "K 20", 1, 32, 1.0)), Error);
  EXPECT_THROW(s.put(record("", "K20", 1, 32, 1.0)), Error);
}

// ---- serialization ----------------------------------------------------------

TEST(TuningStore, SerializeStartsWithVersionHeader) {
  const std::string text = sample_store().serialize();
  EXPECT_EQ(text.rfind("gpustatic-store v1\n", 0), 0u) << text;
}

TEST(TuningStore, RoundTripIsLossless) {
  const TuningStore s = sample_store();
  const TuningStore back = TuningStore::parse(s.serialize());
  ASSERT_EQ(back.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const StoreRecord& a = s.records()[i];
    const StoreRecord& b = back.records()[i];
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.gpu, b.gpu);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.variant.params, b.variant.params);
    EXPECT_DOUBLE_EQ(a.variant.predicted_cost, b.variant.predicted_cost);
    EXPECT_DOUBLE_EQ(a.variant.measured_ms, b.variant.measured_ms);
    EXPECT_EQ(a.variant.valid, b.variant.valid);
  }
  // And the round trip is byte-stable.
  EXPECT_EQ(back.serialize(), s.serialize());
}

TEST(TuningStore, ParseRejectsBadVersionHeader) {
  EXPECT_THROW((void)TuningStore::parse(""), ParseError);
  EXPECT_THROW((void)TuningStore::parse("gpustatic-store v999\n"),
               ParseError);
  EXPECT_THROW((void)TuningStore::parse("gpustatic-journal v1\n"),
               ParseError);
}

TEST(TuningStore, ParseRejectsCorruptInteriorLine) {
  std::string text = sample_store().serialize();
  // Corrupt the first record line (not the last): must throw, with the
  // offending line number in the error.
  const std::size_t at = text.find("record");
  text.replace(at, 6, "reXord");
  try {
    (void)TuningStore::parse(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  // Bad field values in the middle are corruption too.
  std::string text2 = sample_store().serialize();
  const std::size_t tc = text2.find("TC=");
  text2.replace(tc, 5, "TC=xx");
  EXPECT_THROW((void)TuningStore::parse(text2), ParseError);
}

TEST(TuningStore, TruncatedFinalLineIsSkippedWithWarning) {
  const TuningStore s = sample_store();
  std::string text = s.serialize();
  // Chop the file mid-way through the last record, as a killed writer
  // would leave it.
  text.resize(text.size() - 25);
  std::vector<std::string> warnings;
  const TuningStore back = TuningStore::parse(text, &warnings);
  EXPECT_EQ(back.size(), s.size() - 1);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("truncated final line"), std::string::npos);
  // Without a warnings sink the truncated line is still skipped.
  EXPECT_EQ(TuningStore::parse(text).size(), s.size() - 1);
}

// ---- file I/O ---------------------------------------------------------------

TEST(TuningStore, LoadMissingFileIsEmptyStore) {
  const TuningStore s = TuningStore::load(temp_path("no_such_store"));
  EXPECT_TRUE(s.empty());
}

TEST(TuningStore, SaveLoadRoundTripsAtomically) {
  const std::string path = temp_path("store_roundtrip.store");
  const TuningStore s = sample_store();
  s.save(path);
  // Atomic rewrite: no temp sibling survives a successful save.
  std::size_t siblings = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path()))
    if (entry.path().filename().string().find("store_roundtrip") !=
        std::string::npos)
      ++siblings;
  EXPECT_EQ(siblings, 1u);

  const TuningStore back = TuningStore::load(path);
  EXPECT_EQ(back.serialize(), s.serialize());

  // Overwriting an existing store works and fully replaces it.
  TuningStore smaller;
  smaller.put(record("mvt", "M40", 32, 64, 1.5));
  smaller.save(path);
  EXPECT_EQ(TuningStore::load(path).size(), 1u);
  std::filesystem::remove(path);
}

TEST(TuningStore, FailedSaveLeavesTargetIntact) {
  const std::string path = temp_path("store_keep.store");
  sample_store().save(path);
  const std::string before = TuningStore::load(path).serialize();
  TuningStore other;
  other.put(record("mvt", "M40", 32, 64, 1.5));
  // Saving into a nonexistent directory fails before touching `path`.
  EXPECT_THROW(other.save(temp_path("no_such_dir/x.store")), Error);
  EXPECT_EQ(TuningStore::load(path).serialize(), before);
  std::filesystem::remove(path);
}

// ---- merge_and_save -------------------------------------------------------

TEST(TuningStore, MergeAndSaveAdoptsTheMergedView) {
  const std::string path = temp_path("store_merge_view.store");
  std::filesystem::remove(path);
  TuningStore first;
  first.put(record("atax", "K20", 64, 128, 0.25));
  first.save(path);

  TuningStore second;
  second.put(record("atax", "K20", 64, 256, 0.5));
  second.merge_and_save(path);
  // The caller now holds disk ∪ its own records, and so does the file.
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(TuningStore::load(path).size(), 2u);

  // The caller's records win on key collisions (they are newer).
  TuningStore refresher;
  refresher.put(record("atax", "K20", 64, 128, 0.125));
  refresher.merge_and_save(path);
  codegen::TuningParams p;
  p.threads_per_block = 128;
  EXPECT_DOUBLE_EQ(
      TuningStore::load(path).find("atax", "K20", 64, p)->measured_ms,
      0.125);
  std::filesystem::remove(path);
}

TEST(TuningStore, MergeAndSaveKeepsConcurrentWritersRecords) {
  const std::string path = temp_path("store_merge_race.store");
  std::filesystem::remove(path);
  // Two threads, disjoint record sets, hammering one path. With plain
  // save() the last writer would win and half the records would vanish;
  // merge_and_save must keep every one.
  constexpr int kRounds = 16;
  auto writer = [&path](const char* kernel, int base_tc) {
    for (int i = 0; i < kRounds; ++i) {
      TuningStore mine;
      mine.put(record(kernel, "K20", 64, base_tc + i, 0.5 + i));
      mine.merge_and_save(path);
    }
  };
  std::thread a(writer, "atax", 32);
  std::thread b(writer, "bicg", 1024);
  a.join();
  b.join();

  const TuningStore merged = TuningStore::load(path);
  EXPECT_EQ(merged.context("atax", "K20", 64).size(),
            static_cast<std::size_t>(kRounds));
  EXPECT_EQ(merged.context("bicg", "K20", 64).size(),
            static_cast<std::size_t>(kRounds));
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(2 * kRounds));
  std::filesystem::remove(path);
}

TEST(TuningStore, MergeAndSaveKeepsConcurrentProcessesRecords) {
  const std::string path = temp_path("store_merge_fork.store");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".lock");
  // A daemon plus a CLI run are separate processes: the in-process
  // mutex cannot order them, only the flock on `<path>.lock` can. Fork
  // a child and let both sides hammer the same path with disjoint
  // record sets; every record must survive.
  constexpr int kRounds = 16;
  auto writer = [&path](const char* kernel, int base_tc) {
    for (int i = 0; i < kRounds; ++i) {
      TuningStore mine;
      mine.put(record(kernel, "K20", 64, base_tc + i, 0.5 + i));
      mine.merge_and_save(path);
    }
  };
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    writer("bicg", 1024);
    _exit(0);
  }
  writer("atax", 32);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  const TuningStore merged = TuningStore::load(path);
  EXPECT_EQ(merged.context("atax", "K20", 64).size(),
            static_cast<std::size_t>(kRounds));
  EXPECT_EQ(merged.context("bicg", "K20", 64).size(),
            static_cast<std::size_t>(kRounds));
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(2 * kRounds));
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".lock");
}

TEST(TuningStore, LoadOfTruncatedFileWarnsAndKeepsPrefix) {
  const std::string path = temp_path("store_truncated.store");
  std::string text = sample_store().serialize();
  text.resize(text.size() - 10);
  {
    std::ofstream f(path, std::ios::binary);
    f << text;
  }
  std::vector<std::string> warnings;
  const TuningStore back = TuningStore::load(path, &warnings);
  EXPECT_EQ(back.size(), sample_store().size() - 1);
  EXPECT_EQ(warnings.size(), 1u);
  std::filesystem::remove(path);
}

TEST(TuningStore, LoadSweepsTmpSiblingsOfDeadWritersOnly) {
  const std::string path = temp_path("store_sweep.store");
  sample_store().save(path);
  // A stale temp from a crashed writer (no such pid) and one from a
  // live process (pid 1 always exists): load must sweep the first and
  // leave the second — it may be a concurrent save in flight.
  const std::string stale = path + ".tmp.4999999";
  const std::string live = path + ".tmp.1";
  { std::ofstream f(stale); f << "{torn"; }
  { std::ofstream f(live); f << "{torn"; }

  const TuningStore loaded = TuningStore::load(path);
  EXPECT_EQ(loaded.size(), sample_store().size());
  EXPECT_FALSE(std::filesystem::exists(stale));
  EXPECT_TRUE(std::filesystem::exists(live));
  std::filesystem::remove(live);
  std::filesystem::remove(path);
}
