// Byte-identity of the compile-once hot path against the pre-cache
// world: every strategy must pick the same best point, at the same best
// time, with the same evaluation accounting, whether variants are
// measured through a TuningSession's SimContext-backed evaluator (one
// pipeline, memoized lowering, recycled scratch) or through an objective
// that compiles and runs each point from scratch.

#include <gtest/gtest.h>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "core/session.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/search.hpp"
#include "tuner/strategy.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace core = gpustatic::core;
namespace dsl = gpustatic::dsl;
namespace kernels = gpustatic::kernels;
namespace sim = gpustatic::sim;
namespace tuner = gpustatic::tuner;

namespace {

/// The pre-SimContext SimEvaluator::evaluate body, verbatim: fresh
/// compile, fresh machine model, one run. The reference the cached path
/// is pinned against.
tuner::Objective fresh_objective(const dsl::WorkloadDesc& wl,
                                 const arch::GpuSpec& gpu,
                                 sim::RunOptions opts = {}) {
  return [&wl, &gpu, opts](const codegen::TuningParams& p) -> double {
    try {
      const codegen::Compiler compiler(gpu, p);
      const codegen::LoweredWorkload lw = compiler.compile(wl);
      const sim::MachineModel machine =
          sim::MachineModel::from(gpu, p.l1_pref_kb);
      const sim::Measurement m = sim::run_workload(lw, wl, machine, opts);
      return m.valid ? m.trial_time_ms : tuner::kInvalid;
    } catch (const gpustatic::Error&) {
      return tuner::kInvalid;
    }
  };
}

/// A space small enough to exhaust but with every dimension populated.
tuner::ParamSpace test_space() {
  return tuner::paper_space()
      .restrict("TC", {64, 128, 256, 512})
      .restrict("BC", {24, 96});
}

}  // namespace

TEST(HotpathParity, AllStrategiesMatchFreshCompileSearch) {
  const auto workload = kernels::make_workload("atax", 128);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const tuner::ParamSpace space = test_space();

  tuner::SearchOptions options;
  options.budget = 60;
  options.seed = 2024;
  tuner::HybridOptions hybrid;
  hybrid.empirical_budget = 12;

  for (const std::string& method :
       tuner::StrategyRegistry::instance().names()) {
    SCOPED_TRACE(method);

    // Cached path: a fresh session per method (persistent SimContext +
    // CachingEvaluator memo, exactly what production drivers use).
    core::TuningSession session(workload, gpu, space);
    core::TuningRequest request(method, options);
    request.hybrid = hybrid;
    const core::TuningOutcome cached = session.tune(request);

    // Reference path: same strategy, same seeds, but every variant is
    // compiled and simulated from scratch.
    const tuner::Objective reference = fresh_objective(workload, gpu);
    tuner::CachingEvaluator memo(space, reference);
    tuner::StrategyContext ctx;
    ctx.space = &space;
    ctx.evaluator = &memo;
    ctx.options = options;
    ctx.hybrid = hybrid;
    ctx.gpu = &gpu;
    ctx.workload = &workload;
    const tuner::StrategyResult fresh =
        tuner::StrategyRegistry::instance().create(method)->run(ctx);

    EXPECT_EQ(cached.search.best_params, fresh.search.best_params);
    EXPECT_EQ(cached.search.best_time, fresh.search.best_time);  // bitwise
    EXPECT_EQ(cached.search.distinct_evaluations,
              fresh.search.distinct_evaluations);
    EXPECT_EQ(cached.space_size, fresh.space_size);
    EXPECT_EQ(cached.full_space_size, fresh.full_space_size);
  }
}

TEST(HotpathParity, WarpEngineStrategyMatchesFreshCompileSearch) {
  // The warp engine is where the scratch/arena refactor lives; pin one
  // stochastic strategy end to end on it.
  const auto workload = kernels::make_workload("bicg", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const tuner::ParamSpace space =
      tuner::paper_space()
          .restrict("TC", {64, 256})
          .restrict("BC", {24, 96})
          .restrict("UIF", {1, 2});
  sim::RunOptions run_opts;
  run_opts.engine = sim::Engine::Warp;

  tuner::SearchOptions options;
  options.budget = 10;
  options.seed = 99;

  core::TuningSession session(workload, gpu, space, run_opts);
  const core::TuningOutcome cached =
      session.tune(core::TuningRequest("random", options));

  const tuner::Objective reference =
      fresh_objective(workload, gpu, run_opts);
  tuner::CachingEvaluator memo(space, reference);
  tuner::StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &memo;
  ctx.options = options;
  const tuner::StrategyResult fresh =
      tuner::StrategyRegistry::instance().create("random")->run(ctx);

  EXPECT_EQ(cached.search.best_params, fresh.search.best_params);
  EXPECT_EQ(cached.search.best_time, fresh.search.best_time);
  EXPECT_EQ(cached.search.distinct_evaluations,
            fresh.search.distinct_evaluations);
}

TEST(HotpathParity, SearchesNeverRecompilePerPoint) {
  // A full-space batch must cost at most one compile per codegen key —
  // test_space() varies UIF and CFLAGS only (TC/BC/PL are launch
  // shape), so 160 points may lower at most 5 x 2 = 10 streams.
  const auto workload = kernels::make_workload("atax", 128);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const tuner::ParamSpace space = test_space();
  tuner::SimEvaluator evaluator(workload, gpu);
  std::vector<codegen::TuningParams> all;
  for (std::size_t i = 0; i < space.size(); ++i)
    all.push_back(space.to_params(space.point_at(i)));
  (void)evaluator.evaluate_batch(all);
  const codegen::CompileCacheStats stats =
      evaluator.context().compilation_cache().stats();
  EXPECT_LE(stats.misses, 10u);
  EXPECT_EQ(stats.hits + stats.misses, space.size());
}

TEST(HotpathParity, AnalyticEvaluatorSharesSimCompilationCache) {
  // A zero-run backend built over a SimEvaluator's cache must answer
  // from the simulator's lowerings — zero extra compiles — and score
  // identically to a standalone AnalyticEvaluator.
  const auto workload = kernels::make_workload("bicg", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  tuner::SimEvaluator sim_eval(workload, gpu);
  codegen::TuningParams p;
  p.unroll = 2;
  p.fast_math = true;
  (void)sim_eval.evaluate(p);
  const codegen::CompileCacheStats before =
      sim_eval.context().compilation_cache().stats();

  tuner::AnalyticEvaluator shared(
      sim_eval.context().compilation_cache_ptr());
  const double shared_cost = shared.evaluate(p);
  const codegen::CompileCacheStats after =
      sim_eval.context().compilation_cache().stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + 1);

  tuner::AnalyticEvaluator standalone(workload, gpu);
  EXPECT_EQ(shared_cost, standalone.evaluate(p));
}

TEST(HotpathParity, SingleElementBatchRunsInline) {
  // Satellite: evaluate_batch({p}) must not detour through the pool and
  // must equal evaluate(p) bitwise.
  const auto workload = kernels::make_workload("matvec2d", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  tuner::SimEvaluator evaluator(workload, gpu);
  codegen::TuningParams p;
  p.unroll = 3;
  const std::vector<double> batch = evaluator.evaluate_batch({p});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], evaluator.evaluate(p));
}
