#include <gtest/gtest.h>

#include <set>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "tuner/experiment.hpp"
#include "tuner/hybrid.hpp"

using namespace gpustatic;  // NOLINT
using tuner::HybridOptions;
using tuner::HybridResult;

namespace {

struct Fixture {
  dsl::WorkloadDesc wl = kernels::make_atax(64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  tuner::ParamSpace space = tuner::paper_space();
  tuner::Objective objective = tuner::make_objective(wl, gpu);
};

HybridResult run(Fixture& f, std::size_t budget, bool use_rule = true) {
  HybridOptions opts;
  opts.empirical_budget = budget;
  opts.use_rule = use_rule;
  return tuner::hybrid_search(f.space, f.gpu, f.wl, f.objective, opts);
}

}  // namespace

TEST(HybridSearch, ZeroBudgetRecommendsWithoutAnyRun) {
  Fixture f;
  std::size_t calls = 0;
  tuner::Objective counting = [&](const codegen::TuningParams& p) {
    ++calls;
    return f.objective(p);
  };
  HybridOptions opts;
  opts.empirical_budget = 0;
  const auto r = tuner::hybrid_search(f.space, f.gpu, f.wl, counting, opts);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(r.empirical_evaluations, 0u);
  EXPECT_EQ(r.best_time_ms, tuner::kInvalid);
  // The recommendation is the top of the prediction-sorted shortlist.
  EXPECT_EQ(r.best_params, r.shortlist.front().params);
}

TEST(HybridSearch, BudgetBoundsEmpiricalWork) {
  Fixture f;
  for (const std::size_t budget : {1u, 4u, 16u}) {
    const auto r = run(f, budget);
    EXPECT_LE(r.empirical_evaluations, budget);
    EXPECT_GT(r.empirical_evaluations, 0u);
    EXPECT_LT(r.best_time_ms, tuner::kInvalid);
  }
}

TEST(HybridSearch, QualityIsMonotoneInBudget) {
  Fixture f;
  double prev = tuner::kInvalid;
  for (const std::size_t budget : {1u, 2u, 4u, 8u, 32u, 128u}) {
    const auto r = run(f, budget);
    if (prev != tuner::kInvalid) {
      EXPECT_LE(r.best_time_ms, prev);
    }
    prev = r.best_time_ms;
  }
}

TEST(HybridSearch, FullBudgetMatchesExhaustiveOverPrunedSpace) {
  Fixture f;
  const auto r = run(f, static_cast<std::size_t>(-1));
  const auto exhaustive =
      tuner::exhaustive_search(r.prune.rule_space, f.objective);
  EXPECT_DOUBLE_EQ(r.best_time_ms, exhaustive.best_time);
  EXPECT_EQ(r.empirical_evaluations, r.shortlist.size());
}

TEST(HybridSearch, ShortlistIsSortedAndDeduplicated) {
  Fixture f;
  const auto r = run(f, 4);
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < r.shortlist.size(); ++i) {
    EXPECT_TRUE(seen.insert(r.shortlist[i].flat_index).second);
    if (i > 0) {
      EXPECT_GE(r.shortlist[i].predicted_cost,
                r.shortlist[i - 1].predicted_cost);
    }
  }
  EXPECT_EQ(r.shortlist.size(), r.prune.rule_size);
}

TEST(HybridSearch, StaticOnlyModeUsesWiderSpace) {
  Fixture f;
  const auto ruled = run(f, 2, /*use_rule=*/true);
  const auto static_only = run(f, 2, /*use_rule=*/false);
  EXPECT_GT(static_only.shortlist.size(), ruled.shortlist.size());
  EXPECT_EQ(static_only.shortlist.size(), static_only.prune.static_size);
}

TEST(HybridSearch, DeterministicAcrossRuns) {
  Fixture f;
  const auto a = run(f, 8);
  const auto b = run(f, 8);
  EXPECT_EQ(a.best_params, b.best_params);
  EXPECT_DOUBLE_EQ(a.best_time_ms, b.best_time_ms);
  ASSERT_EQ(a.shortlist.size(), b.shortlist.size());
  for (std::size_t i = 0; i < a.shortlist.size(); ++i)
    EXPECT_EQ(a.shortlist[i].flat_index, b.shortlist[i].flat_index);
}

namespace {

/// Records how the empirical stage reaches the backend: per-point
/// evaluate() calls vs batched evaluate_batch() calls.
class RecordingEvaluator final : public tuner::Evaluator {
 public:
  explicit RecordingEvaluator(tuner::Objective fn) : fn_(std::move(fn)) {}
  [[nodiscard]] std::string name() const override { return "recording"; }
  double evaluate(const codegen::TuningParams& p) override {
    ++single_calls;
    return fn_(p);
  }
  std::vector<double> evaluate_batch(
      const std::vector<codegen::TuningParams>& batch) override {
    ++batch_calls;
    batch_sizes.push_back(batch.size());
    std::vector<double> out;
    out.reserve(batch.size());
    for (const auto& p : batch) out.push_back(fn_(p));
    return out;
  }

  std::size_t single_calls = 0;
  std::size_t batch_calls = 0;
  std::vector<std::size_t> batch_sizes;

 private:
  tuner::Objective fn_;
};

}  // namespace

TEST(HybridSearch, EmpiricalStageIsOneBatchNotPerPointCalls) {
  // The old HybridStrategy wrapped the evaluator in a per-point
  // Objective lambda, bypassing evaluate_batch (and any memoization the
  // backend carries). The empirical stage must now reach the backend as
  // a single batch of exactly the dialed budget.
  Fixture f;
  RecordingEvaluator recording(f.objective);
  HybridOptions opts;
  opts.empirical_budget = 6;
  const auto r = tuner::hybrid_search(f.space, f.gpu, f.wl, recording,
                                      opts);
  EXPECT_EQ(recording.single_calls, 0u);
  EXPECT_EQ(recording.batch_calls, 1u);
  ASSERT_EQ(recording.batch_sizes.size(), 1u);
  EXPECT_EQ(recording.batch_sizes.front(), 6u);
  EXPECT_EQ(r.empirical_evaluations, 6u);
}

TEST(HybridSearch, EvaluatorAndObjectiveOverloadsAgree) {
  Fixture f;
  HybridOptions opts;
  opts.empirical_budget = 8;
  tuner::SimEvaluator sim(f.wl, f.gpu);
  const auto via_evaluator =
      tuner::hybrid_search(f.space, f.gpu, f.wl, sim, opts);
  const auto via_objective =
      tuner::hybrid_search(f.space, f.gpu, f.wl, f.objective, opts);
  EXPECT_EQ(via_evaluator.best_params, via_objective.best_params);
  EXPECT_DOUBLE_EQ(via_evaluator.best_time_ms,
                   via_objective.best_time_ms);
  EXPECT_EQ(via_evaluator.empirical_evaluations,
            via_objective.empirical_evaluations);
}

TEST(HybridSearch, EmpiricalFractionReflectsTheDial) {
  Fixture f;
  const auto r = run(f, 8);
  EXPECT_GT(r.empirical_fraction(), 0.0);
  EXPECT_LE(r.empirical_fraction(), 1.0);
  const auto full = run(f, static_cast<std::size_t>(-1));
  EXPECT_DOUBLE_EQ(full.empirical_fraction(), 1.0);
}
