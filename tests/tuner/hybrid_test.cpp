#include <gtest/gtest.h>

#include <set>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "tuner/experiment.hpp"
#include "tuner/hybrid.hpp"

using namespace gpustatic;  // NOLINT
using tuner::HybridOptions;
using tuner::HybridResult;

namespace {

struct Fixture {
  dsl::WorkloadDesc wl = kernels::make_atax(64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  tuner::ParamSpace space = tuner::paper_space();
  tuner::Objective objective = tuner::make_objective(wl, gpu);
};

HybridResult run(Fixture& f, std::size_t budget, bool use_rule = true) {
  HybridOptions opts;
  opts.empirical_budget = budget;
  opts.use_rule = use_rule;
  return tuner::hybrid_search(f.space, f.gpu, f.wl, f.objective, opts);
}

}  // namespace

TEST(HybridSearch, ZeroBudgetRecommendsWithoutAnyRun) {
  Fixture f;
  std::size_t calls = 0;
  tuner::Objective counting = [&](const codegen::TuningParams& p) {
    ++calls;
    return f.objective(p);
  };
  HybridOptions opts;
  opts.empirical_budget = 0;
  const auto r = tuner::hybrid_search(f.space, f.gpu, f.wl, counting, opts);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(r.empirical_evaluations, 0u);
  EXPECT_EQ(r.best_time_ms, tuner::kInvalid);
  // The recommendation is the top of the prediction-sorted shortlist.
  EXPECT_EQ(r.best_params, r.shortlist.front().params);
}

TEST(HybridSearch, BudgetBoundsEmpiricalWork) {
  Fixture f;
  for (const std::size_t budget : {1u, 4u, 16u}) {
    const auto r = run(f, budget);
    EXPECT_LE(r.empirical_evaluations, budget);
    EXPECT_GT(r.empirical_evaluations, 0u);
    EXPECT_LT(r.best_time_ms, tuner::kInvalid);
  }
}

TEST(HybridSearch, QualityIsMonotoneInBudget) {
  Fixture f;
  double prev = tuner::kInvalid;
  for (const std::size_t budget : {1u, 2u, 4u, 8u, 32u, 128u}) {
    const auto r = run(f, budget);
    if (prev != tuner::kInvalid) {
      EXPECT_LE(r.best_time_ms, prev);
    }
    prev = r.best_time_ms;
  }
}

TEST(HybridSearch, FullBudgetMatchesExhaustiveOverPrunedSpace) {
  Fixture f;
  const auto r = run(f, static_cast<std::size_t>(-1));
  const auto exhaustive =
      tuner::exhaustive_search(r.prune.rule_space, f.objective);
  EXPECT_DOUBLE_EQ(r.best_time_ms, exhaustive.best_time);
  EXPECT_EQ(r.empirical_evaluations, r.shortlist.size());
}

TEST(HybridSearch, ShortlistIsSortedAndDeduplicated) {
  Fixture f;
  const auto r = run(f, 4);
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < r.shortlist.size(); ++i) {
    EXPECT_TRUE(seen.insert(r.shortlist[i].flat_index).second);
    if (i > 0) {
      EXPECT_GE(r.shortlist[i].predicted_cost,
                r.shortlist[i - 1].predicted_cost);
    }
  }
  EXPECT_EQ(r.shortlist.size(), r.prune.rule_size);
}

TEST(HybridSearch, StaticOnlyModeUsesWiderSpace) {
  Fixture f;
  const auto ruled = run(f, 2, /*use_rule=*/true);
  const auto static_only = run(f, 2, /*use_rule=*/false);
  EXPECT_GT(static_only.shortlist.size(), ruled.shortlist.size());
  EXPECT_EQ(static_only.shortlist.size(), static_only.prune.static_size);
}

TEST(HybridSearch, DeterministicAcrossRuns) {
  Fixture f;
  const auto a = run(f, 8);
  const auto b = run(f, 8);
  EXPECT_EQ(a.best_params, b.best_params);
  EXPECT_DOUBLE_EQ(a.best_time_ms, b.best_time_ms);
  ASSERT_EQ(a.shortlist.size(), b.shortlist.size());
  for (std::size_t i = 0; i < a.shortlist.size(); ++i)
    EXPECT_EQ(a.shortlist[i].flat_index, b.shortlist[i].flat_index);
}

TEST(HybridSearch, EmpiricalFractionReflectsTheDial) {
  Fixture f;
  const auto r = run(f, 8);
  EXPECT_GT(r.empirical_fraction(), 0.0);
  EXPECT_LE(r.empirical_fraction(), 1.0);
  const auto full = run(f, static_cast<std::size_t>(-1));
  EXPECT_DOUBLE_EQ(full.empirical_fraction(), 1.0);
}
