#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "kernels/kernels.hpp"
#include "tuner/fleet.hpp"
#include "tuner/search.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT
using tuner::FleetJob;
using tuner::FleetJobReport;
using tuner::FleetTuneOptions;
using tuner::TuningStore;

namespace {

/// A 3 x 2 space keeps exhaustive jobs at six simulator runs each.
tuner::ParamSpace small_space() {
  return tuner::ParamSpace({{"TC", {64, 128, 256}}, {"UIF", {1, 2}}});
}

FleetJob job_for(const char* kernel, std::int64_t n) {
  FleetJob job;
  job.kernel = kernel;
  job.n = n;
  job.workload = kernels::make_workload(kernel, n);
  job.gpu = &arch::gpu("K20");
  job.space = small_space();
  return job;
}

std::vector<FleetJob> two_jobs() {
  std::vector<FleetJob> jobs;
  jobs.push_back(job_for("atax", 32));
  jobs.push_back(job_for("bicg", 32));
  return jobs;
}

}  // namespace

// ---- CachingEvaluator warm-start hooks --------------------------------------

TEST(CachingEvaluatorPreload, IsFreeAndFirstWins) {
  const tuner::ParamSpace space = small_space();
  std::size_t backend_calls = 0;
  tuner::CachingEvaluator eval(
      space,
      [&](const codegen::TuningParams&) {
        ++backend_calls;
        return 1.0;
      },
      /*budget=*/1);

  codegen::TuningParams p = space.to_params({0, 0});
  EXPECT_TRUE(eval.preload(p, 0.5));
  EXPECT_FALSE(eval.preload(p, 9.0));  // already cached: first wins
  // Preloads charge neither the budget nor the backend...
  EXPECT_EQ(eval.fresh_evaluations(), 0u);
  EXPECT_EQ(eval.distinct_evaluations(), 1u);
  EXPECT_EQ(eval.remaining(), 1u);
  // ...and answer lookups without touching the backend.
  EXPECT_DOUBLE_EQ(eval.evaluate(p), 0.5);
  EXPECT_EQ(backend_calls, 0u);
  // A genuinely fresh point still goes to the backend and is metered.
  EXPECT_DOUBLE_EQ(eval.evaluate(space.to_params({1, 0})), 1.0);
  EXPECT_EQ(backend_calls, 1u);
  EXPECT_EQ(eval.fresh_evaluations(), 1u);
  EXPECT_TRUE(eval.exhausted());
  // Preloaded entries participate in best tracking.
  EXPECT_DOUBLE_EQ(eval.best_value(), 0.5);
}

TEST(CachingEvaluatorPreload, RejectsOutOfSpaceParams) {
  const tuner::ParamSpace space = small_space();
  tuner::CachingEvaluator eval(
      space, [](const codegen::TuningParams&) { return 1.0; });
  codegen::TuningParams foreign;
  foreign.threads_per_block = 96;  // not a TC value of this space
  EXPECT_FALSE(eval.preload(foreign, 0.5));
  EXPECT_EQ(eval.distinct_evaluations(), 0u);
}

TEST(CachingEvaluatorPreload, HarvestRoundTripsThroughForEachCached) {
  const tuner::ParamSpace space = small_space();
  tuner::CachingEvaluator eval(
      space, [](const codegen::TuningParams&) { return 2.0; });
  EXPECT_TRUE(eval.preload(space.to_params({2, 1}), 0.25));
  (void)eval.evaluate(space.to_params({0, 0}));
  std::size_t seen = 0;
  eval.for_each_cached([&](const tuner::Point& p, double v) {
    ++seen;
    if (p == tuner::Point{2, 1}) {
      EXPECT_DOUBLE_EQ(v, 0.25);
    }
    if (p == tuner::Point{0, 0}) {
      EXPECT_DOUBLE_EQ(v, 2.0);
    }
  });
  EXPECT_EQ(seen, 2u);
}

// ---- tune_fleet -------------------------------------------------------------

TEST(TuneFleet, ColdRunMeasuresWarmRunAnswersFromStore) {
  TuningStore store;
  FleetTuneOptions opts;
  opts.method = "exhaustive";

  const auto cold = tuner::tune_fleet(two_jobs(), store, opts);
  ASSERT_EQ(cold.size(), 2u);
  for (const FleetJobReport& r : cold) {
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.fresh_evaluations, 6u);
    EXPECT_EQ(r.outcome.search.distinct_evaluations, 6u);
  }
  EXPECT_EQ(store.size(), 12u);

  const auto warm = tuner::tune_fleet(two_jobs(), store, opts);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].ok()) << warm[i].error;
    EXPECT_EQ(warm[i].fresh_evaluations, 0u)
        << warm[i].kernel << " re-measured";
    EXPECT_EQ(warm[i].warm_hits, 6u);
    // Warm results are byte-identical to the cold ones.
    EXPECT_EQ(warm[i].outcome.search.best_params,
              cold[i].outcome.search.best_params);
    EXPECT_DOUBLE_EQ(warm[i].outcome.search.best_time,
                     cold[i].outcome.search.best_time);
  }
  EXPECT_EQ(store.size(), 12u);
}

TEST(TuneFleet, MatchesStandaloneSearchExactly) {
  TuningStore store;
  FleetTuneOptions opts;
  opts.method = "exhaustive";
  const auto reports = tuner::tune_fleet(two_jobs(), store, opts);

  for (const FleetJob& job : two_jobs()) {
    tuner::SimEvaluator sim(job.workload, *job.gpu, opts.run);
    const tuner::SearchResult direct =
        tuner::exhaustive_search(job.space, sim);
    const FleetJobReport* row = nullptr;
    for (const FleetJobReport& r : reports)
      if (r.kernel == job.kernel) row = &r;
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->outcome.search.best_params, direct.best_params);
    EXPECT_DOUBLE_EQ(row->outcome.search.best_time, direct.best_time);
  }
}

TEST(TuneFleet, WarmStartSurvivesTheStoresTextForm) {
  TuningStore store;
  FleetTuneOptions opts;
  opts.method = "random";
  opts.search.budget = 4;
  opts.search.seed = 7;
  (void)tuner::tune_fleet(two_jobs(), store, opts);

  // Round-trip the store through its serialized form, as the CLI does
  // between invocations, then rerun the same stochastic request.
  TuningStore reloaded = TuningStore::parse(store.serialize());
  const auto warm = tuner::tune_fleet(two_jobs(), reloaded, opts);
  for (const FleetJobReport& r : warm) {
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.fresh_evaluations, 0u);
  }
  EXPECT_EQ(reloaded.serialize(), store.serialize());
}

TEST(TuneFleet, RecordsInvalidConfigurationsAndReplaysThem) {
  // TC=1024 on 9 blocks is unlaunchable for some kernels; more simply,
  // force invalids by including an unlaunchable TC for the K20 warp
  // engine via a space containing a non-multiple-of-32 TC.
  std::vector<FleetJob> jobs;
  FleetJob job = job_for("atax", 32);
  job.space = tuner::ParamSpace({{"TC", {48, 64}}});  // 48: rejected
  jobs.push_back(job);

  TuningStore store;
  FleetTuneOptions opts;
  opts.method = "exhaustive";
  opts.run.engine = sim::Engine::Warp;  // the warp engine rejects TC=48
  const auto cold = tuner::tune_fleet(jobs, store, opts);
  ASSERT_TRUE(cold[0].ok()) << cold[0].error;
  EXPECT_EQ(cold[0].fresh_evaluations, 2u);

  // The rejection is persisted (valid=0) and warm-replayed: the second
  // pass re-discovers the invalid variant without a simulator run.
  bool saw_invalid = false;
  for (const tuner::StoreRecord& r : store.records())
    if (!r.variant.valid) saw_invalid = true;
  EXPECT_TRUE(saw_invalid);
  const auto warm = tuner::tune_fleet(jobs, store, opts);
  EXPECT_EQ(warm[0].fresh_evaluations, 0u);
  EXPECT_EQ(warm[0].outcome.search.best_params,
            cold[0].outcome.search.best_params);
}

TEST(TuneFleet, FailedJobReportsErrorWithoutPoisoningTheStore) {
  TuningStore store;
  FleetTuneOptions opts;
  opts.method = "no-such-strategy";
  const auto reports = tuner::tune_fleet(two_jobs(), store, opts);
  ASSERT_EQ(reports.size(), 2u);
  for (const FleetJobReport& r : reports) {
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("no-such-strategy"), std::string::npos);
  }
  EXPECT_TRUE(store.empty());
}
