// Acceptance test for the batch-first search core: every registered
// strategy must produce byte-identical results whether its batches fan
// out over a real multi-threaded pool or run as a plain sequential
// loop. This binary forces a 4-participant shared pool (the CI box has
// 1 core, which would otherwise degenerate to the inline path and prove
// nothing) via GPUSTATIC_THREADS before the pool's first use.

#include <cstdlib>

namespace {
// Static initializer: runs before main(), hence before ThreadPool::
// shared() is first constructed (it is created lazily on first batch).
const bool kForceParallelPool = [] {
  setenv("GPUSTATIC_THREADS", "4", 1);
  return true;
}();
}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "arch/gpu_spec.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::tuner;  // NOLINT

namespace {

/// Forwards single evaluations but strips the backend's batch override,
/// falling back to Evaluator's default sequential loop — the "evaluate
/// one variant at a time" baseline the batched path must reproduce.
class SequentialEvaluator final : public Evaluator {
 public:
  explicit SequentialEvaluator(Evaluator& inner) : inner_(&inner) {}
  [[nodiscard]] std::string name() const override {
    return "sequential(" + inner_->name() + ")";
  }
  double evaluate(const codegen::TuningParams& params) override {
    return inner_->evaluate(params);
  }

 private:
  Evaluator* inner_;
};

ParamSpace tiny_space() {
  return ParamSpace({{"TC", {64, 128, 256, 512, 1024}},
                     {"UIF", {1, 2}},
                     {"CFLAGS", {0, 1}}});
}

struct RunResult {
  codegen::TuningParams best;
  double best_time = 0;
  std::size_t distinct = 0;
};

RunResult run_strategy(const std::string& name, const ParamSpace& space,
                       Evaluator& evaluator,
                       const dsl::WorkloadDesc& wl,
                       const arch::GpuSpec& gpu, std::size_t budget,
                       std::uint64_t seed) {
  StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &evaluator;
  ctx.options.budget = budget;
  ctx.options.seed = seed;
  ctx.hybrid.empirical_budget = 4;
  ctx.gpu = &gpu;
  ctx.workload = &wl;
  const StrategyResult r =
      StrategyRegistry::instance().create(name)->run(ctx);
  return {r.search.best_params, r.search.best_time,
          r.search.distinct_evaluations};
}

}  // namespace

TEST(BatchEquivalence, PoolReallyIsParallelInThisBinary) {
  ASSERT_EQ(ThreadPool::shared().size(), 4u);
}

TEST(BatchEquivalence, AllStrategiesMatchSequentialBaseline) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();

  for (const auto& name : StrategyRegistry::instance().names()) {
    for (const std::size_t budget : {4u, 8u, 60u}) {
      SimEvaluator batched(wl, gpu);  // evaluate_batch -> 4-thread pool
      const RunResult par =
          run_strategy(name, space, batched, wl, gpu, budget, 1234);

      SimEvaluator backend(wl, gpu);
      SequentialEvaluator sequential(backend);
      const RunResult seq =
          run_strategy(name, space, sequential, wl, gpu, budget, 1234);

      EXPECT_EQ(par.best.threads_per_block, seq.best.threads_per_block)
          << name << " budget=" << budget;
      EXPECT_EQ(par.best.block_count, seq.best.block_count) << name;
      EXPECT_EQ(par.best.unroll, seq.best.unroll) << name;
      EXPECT_EQ(par.best.l1_pref_kb, seq.best.l1_pref_kb) << name;
      EXPECT_EQ(par.best.stream_chunk, seq.best.stream_chunk) << name;
      EXPECT_EQ(par.best.fast_math, seq.best.fast_math) << name;
      // Bitwise, not approximate: the batch may not reorder ties.
      EXPECT_EQ(par.best_time, seq.best_time)
          << name << " budget=" << budget;
      EXPECT_EQ(par.distinct, seq.distinct)
          << name << " budget=" << budget;
    }
  }
}

TEST(BatchEquivalence, TieBreakIsFirstWinsUnderParallelBatches) {
  // A constant objective makes every point a tie: the reported best
  // must be the first point ever evaluated, no matter how the pool
  // schedules the batch.
  const ParamSpace space = tiny_space();
  FunctionEvaluator flat([](const codegen::TuningParams&) { return 1.0; });
  CachingEvaluator eval(space, flat);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < space.size(); ++i)
    pts.push_back(space.point_at(i));
  eval.evaluate_batch(pts);
  EXPECT_EQ(eval.best_point(), space.point_at(0));
  EXPECT_EQ(eval.best_value(), 1.0);
}

TEST(BatchEquivalence, SimBatchMatchesSimSingleUnderParallelPool) {
  const auto wl = kernels::make_matvec2d(64);
  const auto& gpu = arch::gpu("M40");
  SimEvaluator sim(wl, gpu);
  const ParamSpace space = tiny_space();
  std::vector<codegen::TuningParams> batch;
  for (std::size_t i = 0; i < space.size(); ++i)
    batch.push_back(space.to_params(space.point_at(i)));
  const auto batched = sim.evaluate_batch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batched[i], sim.evaluate(batch[i])) << i;
}
