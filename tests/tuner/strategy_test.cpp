#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::tuner;  // NOLINT

namespace {

/// Tiny space whose TC values intersect every GPU's T* ladder, so the
/// model-guided strategies can prune it.
ParamSpace tiny_space() {
  return ParamSpace({{"TC", {64, 128, 256, 512, 1024}},
                     {"UIF", {1, 2}},
                     {"CFLAGS", {0, 1}}});
}

/// Smooth synthetic objective minimized at TC=512, fast-math on.
double synthetic(const codegen::TuningParams& p) {
  const double t = (p.threads_per_block - 512.0) / 1024.0;
  return 1.0 + t * t + (p.fast_math ? 0.0 : 0.05);
}

}  // namespace

// ---- registry ---------------------------------------------------------------

TEST(StrategyRegistry, ListsAllEightBuiltins) {
  const auto names = StrategyRegistry::instance().names();
  for (const char* expected : {"exhaustive", "random", "anneal", "genetic",
                               "simplex", "static", "rule", "hybrid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected),
              names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyRegistry, UnknownNameThrowsAndNamesTheRegistered) {
  try {
    (void)StrategyRegistry::instance().create("magic");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("magic"), std::string::npos);
    EXPECT_NE(what.find("random"), std::string::npos);
    EXPECT_NE(what.find("hybrid"), std::string::npos);
  }
  EXPECT_FALSE(StrategyRegistry::instance().contains("magic"));
}

TEST(StrategyRegistry, DuplicateRegistrationThrows) {
  StrategyRegistry local;
  register_builtin_strategies(local);
  EXPECT_EQ(local.names(), StrategyRegistry::instance().names());
  EXPECT_THROW(register_builtin_strategies(local), Error);
  EXPECT_THROW(local.register_strategy("random", nullptr), Error);
}

TEST(StrategyRegistry, EveryBuiltinRunsEndToEndOnTinySpace) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();
  SimEvaluator evaluator(wl, gpu);

  StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &evaluator;
  ctx.options.budget = 8;
  ctx.hybrid.empirical_budget = 2;
  ctx.gpu = &gpu;
  ctx.workload = &wl;

  for (const auto& name : StrategyRegistry::instance().names()) {
    const auto strategy = StrategyRegistry::instance().create(name);
    EXPECT_EQ(strategy->name(), name);
    const StrategyResult r = strategy->run(ctx);
    EXPECT_EQ(r.method, name);
    EXPECT_GT(r.search.distinct_evaluations, 0u) << name;
    EXPECT_TRUE(std::isfinite(r.search.best_time)) << name;
    EXPECT_EQ(r.full_space_size, space.size()) << name;
    EXPECT_GE(r.full_space_size, r.space_size) << name;
  }
}

TEST(StrategyRegistry, ModelGuidedStrategiesRequireWorkloadContext) {
  const ParamSpace space = tiny_space();
  FunctionEvaluator evaluator{synthetic};
  StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &evaluator;
  for (const char* name : {"static", "rule", "hybrid"}) {
    const auto strategy = StrategyRegistry::instance().create(name);
    EXPECT_THROW((void)strategy->run(ctx), Error) << name;
  }
  // Plain searches do not need one.
  const auto plain = StrategyRegistry::instance().create("random");
  const auto r = plain->run(ctx);
  EXPECT_GT(r.search.distinct_evaluations, 0u);
}

TEST(StrategyRegistry, StochasticFlagsMatchSeedConsumption) {
  const auto& reg = StrategyRegistry::instance();
  for (const char* name : {"random", "anneal", "genetic", "simplex"})
    EXPECT_TRUE(reg.create(name)->stochastic()) << name;
  for (const char* name : {"exhaustive", "static", "rule", "hybrid"})
    EXPECT_FALSE(reg.create(name)->stochastic()) << name;
}

// ---- seed plumbing / determinism --------------------------------------------

TEST(StrategySeed, SameSeedGivesIdenticalSearchResultTwice) {
  const ParamSpace space = tiny_space();
  for (const auto& name : StrategyRegistry::instance().names()) {
    const auto strategy = StrategyRegistry::instance().create(name);
    if (!strategy->stochastic()) continue;
    FunctionEvaluator evaluator{synthetic};
    StrategyContext ctx;
    ctx.space = &space;
    ctx.evaluator = &evaluator;
    ctx.options.budget = 12;
    ctx.options.seed = 2024;
    const StrategyResult a = strategy->run(ctx);
    const StrategyResult b = strategy->run(ctx);
    EXPECT_EQ(a.search.best_params, b.search.best_params) << name;
    EXPECT_EQ(a.search.best_time, b.search.best_time) << name;
    EXPECT_EQ(a.search.distinct_evaluations,
              b.search.distinct_evaluations)
        << name;
    EXPECT_EQ(a.search.total_calls, b.search.total_calls) << name;
  }
}

// ---- caching decorator across backends --------------------------------------

TEST(CachingDecorator, CountsDistinctAcrossBackends) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();

  std::size_t fn_calls = 0;
  FunctionEvaluator fn([&fn_calls](const codegen::TuningParams& p) {
    ++fn_calls;
    return synthetic(p);
  });
  SimEvaluator sim(wl, gpu);
  AnalyticEvaluator analytic(wl, gpu);

  for (Evaluator* backend : {static_cast<Evaluator*>(&fn),
                             static_cast<Evaluator*>(&sim),
                             static_cast<Evaluator*>(&analytic)}) {
    CachingEvaluator cache(space, *backend);
    const Point a = space.point_at(0);
    const Point b = space.point_at(3);
    cache(a);
    cache(a);
    cache(b);
    cache(a);
    EXPECT_EQ(cache.total_calls(), 4u) << backend->name();
    EXPECT_EQ(cache.distinct_evaluations(), 2u) << backend->name();
    EXPECT_TRUE(std::isfinite(cache.best_value())) << backend->name();
  }
  // The function backend really was consulted once per distinct point.
  EXPECT_EQ(fn_calls, 2u);
}

TEST(CachingDecorator, BatchDeduplicatesBeforeHittingTheBackend) {
  const ParamSpace space = tiny_space();
  std::size_t backend_calls = 0;
  FunctionEvaluator fn([&backend_calls](const codegen::TuningParams& p) {
    ++backend_calls;
    return synthetic(p);
  });
  CachingEvaluator cache(space, fn);
  cache(space.point_at(1));  // pre-populate one entry

  const std::vector<Point> batch = {space.point_at(0), space.point_at(1),
                                    space.point_at(0), space.point_at(2)};
  const auto values = cache.evaluate_batch(batch);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[0], values[2]);
  EXPECT_EQ(backend_calls, 3u);  // points 0, 1, 2 — each exactly once
  EXPECT_EQ(cache.total_calls(), 5u);
  EXPECT_EQ(cache.distinct_evaluations(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(values[i], cache(batch[i])) << i;
}

TEST(CachingDecorator, BatchClampsToTheBudget) {
  const ParamSpace space = tiny_space();
  std::size_t backend_calls = 0;
  FunctionEvaluator fn([&backend_calls](const codegen::TuningParams& p) {
    ++backend_calls;
    return synthetic(p);
  });
  CachingEvaluator cache(space, fn, /*budget=*/3);
  EXPECT_EQ(cache.remaining(), 3u);

  std::vector<Point> pts;
  for (std::size_t i = 0; i < 6; ++i) pts.push_back(space.point_at(i));
  const auto values = cache.evaluate_batch(pts);
  // Answered the longest affordable prefix: 3 fresh evaluations.
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ(backend_calls, 3u);
  EXPECT_TRUE(cache.exhausted());
  EXPECT_EQ(cache.total_calls(), 3u);

  // Cache hits are still free after exhaustion; a fresh point throws.
  EXPECT_EQ(cache.evaluate_batch({pts[0], pts[2]}).size(), 2u);
  EXPECT_NO_THROW((void)cache(pts[1]));
  EXPECT_THROW((void)cache(space.point_at(10)), Error);
  EXPECT_EQ(backend_calls, 3u);

  // A batch whose affordable prefix is only hits answers that prefix.
  const auto partial =
      cache.evaluate_batch({pts[1], space.point_at(11), pts[2]});
  EXPECT_EQ(partial.size(), 1u);
  EXPECT_EQ(backend_calls, 3u);

  cache.set_budget(4);
  EXPECT_EQ(cache.remaining(), 1u);
  EXPECT_NO_THROW((void)cache(space.point_at(10)));
  EXPECT_EQ(backend_calls, 4u);
}

TEST(CachingDecorator, CallsAreCountedOnSuccessOnly) {
  // A throwing backend must charge nothing to the accounting —
  // historically total_calls was bumped by the whole batch before the
  // backend could throw.
  class ThrowingEvaluator final : public Evaluator {
   public:
    [[nodiscard]] std::string name() const override { return "throwing"; }
    double evaluate(const codegen::TuningParams&) override {
      throw std::runtime_error("backend down");
    }
    std::vector<double> evaluate_batch(
        const std::vector<codegen::TuningParams>&) override {
      throw std::runtime_error("backend down");
    }
  };
  const ParamSpace space = tiny_space();
  ThrowingEvaluator backend;
  CachingEvaluator cache(space, backend);
  EXPECT_THROW((void)cache(space.point_at(0)), std::runtime_error);
  std::vector<Point> pts = {space.point_at(0), space.point_at(1)};
  EXPECT_THROW((void)cache.evaluate_batch(pts), std::runtime_error);
  EXPECT_EQ(cache.total_calls(), 0u);
  EXPECT_EQ(cache.distinct_evaluations(), 0u);
}

TEST(CachingDecorator, ServesAsAnEvaluatorKeyedByParams) {
  const ParamSpace space = tiny_space();
  std::size_t backend_calls = 0;
  FunctionEvaluator fn([&backend_calls](const codegen::TuningParams& p) {
    ++backend_calls;
    return synthetic(p);
  });
  CachingEvaluator cache(space, fn);
  Evaluator& as_evaluator = cache;
  EXPECT_EQ(as_evaluator.name(), "cached(function)");

  const auto params = space.to_params(space.point_at(5));
  const double first = as_evaluator.evaluate(params);
  const double again = as_evaluator.evaluate(params);
  EXPECT_EQ(first, again);
  EXPECT_EQ(backend_calls, 1u);  // second lookup was a cache hit

  // Batch path shares the same cache.
  const auto out = as_evaluator.evaluate_batch(
      {params, space.to_params(space.point_at(6))});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], first);
  EXPECT_EQ(backend_calls, 2u);

  // Params outside the space pass through, uncached.
  codegen::TuningParams foreign = params;
  foreign.threads_per_block = 96;  // not a TC value of tiny_space
  (void)as_evaluator.evaluate(foreign);
  (void)as_evaluator.evaluate(foreign);
  EXPECT_EQ(backend_calls, 4u);

  // So do params differing only in a field no dimension covers:
  // tiny_space has no SC, and a variant with another stream_chunk must
  // not collapse onto the cached in-space variant's key.
  codegen::TuningParams chunked = params;
  chunked.stream_chunk = 5;
  (void)as_evaluator.evaluate(chunked);
  (void)as_evaluator.evaluate(chunked);
  EXPECT_EQ(backend_calls, 6u);
}

TEST(CachingDecorator, MixedParamsBatchKeepsMemoizingInSpaceEntries) {
  // One out-of-space variant in a batch must not forfeit the cache for
  // the rest: in-space entries stay memoized, only foreign entries
  // re-run, and results stay aligned with the request.
  const ParamSpace space = tiny_space();
  std::size_t backend_calls = 0;
  FunctionEvaluator fn([&backend_calls](const codegen::TuningParams& p) {
    ++backend_calls;
    return synthetic(p);
  });
  CachingEvaluator cache(space, fn);
  Evaluator& as_evaluator = cache;

  const auto in0 = space.to_params(space.point_at(0));
  const auto in1 = space.to_params(space.point_at(1));
  (void)as_evaluator.evaluate(in0);  // pre-cache: 1 backend call
  codegen::TuningParams foreign = in0;
  foreign.stream_chunk = 4;  // tiny_space has no SC dimension

  const auto out = as_evaluator.evaluate_batch({in0, foreign, in1});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], synthetic(in0));
  EXPECT_EQ(out[1], synthetic(foreign));
  EXPECT_EQ(out[2], synthetic(in1));
  EXPECT_EQ(backend_calls, 3u);  // foreign + the in1 miss; in0 was a hit
  EXPECT_EQ(cache.distinct_evaluations(), 2u);

  // Repeat: only the foreign entry reaches the backend again.
  (void)as_evaluator.evaluate_batch({in0, foreign, in1});
  EXPECT_EQ(backend_calls, 4u);
}

// ---- budget discipline across strategies ------------------------------------

TEST(SearchBudget, NoStrategyOvershootsItsBudget) {
  // The SA reheat and the Nelder-Mead shrink loop used to evaluate
  // fresh points after the budget check; the GA evaluated its whole
  // seed population regardless of budget. All are clamped now.
  const ParamSpace space = tiny_space();
  for (const char* name : {"random", "anneal", "genetic", "simplex"}) {
    for (const std::size_t budget : {1u, 3u, 5u, 7u}) {
      FunctionEvaluator fn{synthetic};
      StrategyContext ctx;
      ctx.space = &space;
      ctx.evaluator = &fn;
      ctx.options.budget = budget;
      ctx.options.seed = 7;
      const auto r = StrategyRegistry::instance().create(name)->run(ctx);
      EXPECT_LE(r.search.distinct_evaluations, budget)
          << name << " budget=" << budget;
      EXPECT_GT(r.search.distinct_evaluations, 0u) << name;
    }
  }
}

TEST(SearchBudget, RandomSearchSaturatesItsGuardOnUnlimitedBudget) {
  // budget == SIZE_MAX used to overflow the `budget * 50` proposal
  // guard; with saturation the search exhausts the space and stops.
  const ParamSpace space = tiny_space();
  FunctionEvaluator fn{synthetic};
  SearchOptions opts;
  opts.budget = std::numeric_limits<std::size_t>::max();
  const auto r = random_search(space, fn, opts);
  EXPECT_EQ(r.distinct_evaluations, space.size());
}

TEST(SearchBudget, GeneticTerminatesWithZeroMutationRate) {
  // Regression: with ga_mutation_rate = 0 a converged population can
  // only re-propose cached children, so distinct_evaluations stops
  // growing and the pre-fix while-loop never exited. The stall guard
  // must end the search (well before this binary's CTest timeout).
  const ParamSpace space = tiny_space();
  FunctionEvaluator fn{synthetic};
  SearchOptions opts;
  opts.budget = space.size();  // unreachable via crossover alone
  opts.ga_mutation_rate = 0.0;
  opts.ga_population = 4;
  opts.seed = 5;
  const auto r = genetic_search(space, fn, opts);
  EXPECT_GT(r.distinct_evaluations, 0u);
  EXPECT_LE(r.distinct_evaluations, space.size());
  EXPECT_TRUE(std::isfinite(r.best_time));
}

// ---- ParamSpace validation --------------------------------------------------

TEST(SpaceValidation, EmptyDimensionThrowsAtConstruction) {
  // An empty dimension would make random_point index into an empty
  // vector (UB); the ctor must reject it up front.
  EXPECT_THROW(ParamSpace(std::vector<Dimension>{{"TC", {}}}),
               ConfigError);
  EXPECT_THROW(
      ParamSpace(std::vector<Dimension>{{"TC", {64}}, {"UIF", {}}}),
      ConfigError);
  EXPECT_NO_THROW(ParamSpace(std::vector<Dimension>{{"TC", {64}}}));
}

TEST(SpaceValidation, RestrictToEmptyIntersectionThrows) {
  const ParamSpace space = tiny_space();
  EXPECT_THROW((void)space.restrict("TC", {7, 9}), ConfigError);
  EXPECT_THROW((void)space.restrict("TC", {}), ConfigError);
  const ParamSpace ok = space.restrict("TC", {64, 7});
  EXPECT_EQ(ok.dimension("TC").values,
            (std::vector<std::int64_t>{64}));
}

TEST(SpaceValidation, PointOfInvertsToParams) {
  const ParamSpace space = tiny_space();
  for (std::size_t i = 0; i < space.size(); ++i) {
    const Point p = space.point_at(i);
    const auto back = space.point_of(space.to_params(p));
    ASSERT_TRUE(back.has_value()) << i;
    EXPECT_EQ(*back, p) << i;
  }
  codegen::TuningParams outside = space.to_params(space.point_at(0));
  outside.threads_per_block = 999;
  EXPECT_FALSE(space.point_of(outside).has_value());
}

TEST(CachingDecorator, BatchAndSequentialAgreeOnBestPoint) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();

  SimEvaluator batched(wl, gpu);
  CachingEvaluator via_batch(space, batched);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < space.size(); ++i)
    pts.push_back(space.point_at(i));
  via_batch.evaluate_batch(pts);

  SimEvaluator sequential(wl, gpu);
  CachingEvaluator one_by_one(space, sequential);
  for (const Point& p : pts) one_by_one(p);

  EXPECT_EQ(via_batch.best_point(), one_by_one.best_point());
  EXPECT_DOUBLE_EQ(via_batch.best_value(), one_by_one.best_value());
  EXPECT_EQ(via_batch.distinct_evaluations(),
            one_by_one.distinct_evaluations());
}
