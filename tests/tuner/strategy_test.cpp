#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::tuner;  // NOLINT

namespace {

/// Tiny space whose TC values intersect every GPU's T* ladder, so the
/// model-guided strategies can prune it.
ParamSpace tiny_space() {
  return ParamSpace({{"TC", {64, 128, 256, 512, 1024}},
                     {"UIF", {1, 2}},
                     {"CFLAGS", {0, 1}}});
}

/// Smooth synthetic objective minimized at TC=512, fast-math on.
double synthetic(const codegen::TuningParams& p) {
  const double t = (p.threads_per_block - 512.0) / 1024.0;
  return 1.0 + t * t + (p.fast_math ? 0.0 : 0.05);
}

}  // namespace

// ---- registry ---------------------------------------------------------------

TEST(StrategyRegistry, ListsAllEightBuiltins) {
  const auto names = StrategyRegistry::instance().names();
  for (const char* expected : {"exhaustive", "random", "anneal", "genetic",
                               "simplex", "static", "rule", "hybrid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected),
              names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyRegistry, UnknownNameThrowsAndNamesTheRegistered) {
  try {
    (void)StrategyRegistry::instance().create("magic");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("magic"), std::string::npos);
    EXPECT_NE(what.find("random"), std::string::npos);
    EXPECT_NE(what.find("hybrid"), std::string::npos);
  }
  EXPECT_FALSE(StrategyRegistry::instance().contains("magic"));
}

TEST(StrategyRegistry, DuplicateRegistrationThrows) {
  StrategyRegistry local;
  register_builtin_strategies(local);
  EXPECT_EQ(local.names(), StrategyRegistry::instance().names());
  EXPECT_THROW(register_builtin_strategies(local), Error);
  EXPECT_THROW(local.register_strategy("random", nullptr), Error);
}

TEST(StrategyRegistry, EveryBuiltinRunsEndToEndOnTinySpace) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();
  SimEvaluator evaluator(wl, gpu);

  StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &evaluator;
  ctx.options.budget = 8;
  ctx.hybrid.empirical_budget = 2;
  ctx.gpu = &gpu;
  ctx.workload = &wl;

  for (const auto& name : StrategyRegistry::instance().names()) {
    const auto strategy = StrategyRegistry::instance().create(name);
    EXPECT_EQ(strategy->name(), name);
    const StrategyResult r = strategy->run(ctx);
    EXPECT_EQ(r.method, name);
    EXPECT_GT(r.search.distinct_evaluations, 0u) << name;
    EXPECT_TRUE(std::isfinite(r.search.best_time)) << name;
    EXPECT_EQ(r.full_space_size, space.size()) << name;
    EXPECT_GE(r.full_space_size, r.space_size) << name;
  }
}

TEST(StrategyRegistry, ModelGuidedStrategiesRequireWorkloadContext) {
  const ParamSpace space = tiny_space();
  FunctionEvaluator evaluator{synthetic};
  StrategyContext ctx;
  ctx.space = &space;
  ctx.evaluator = &evaluator;
  for (const char* name : {"static", "rule", "hybrid"}) {
    const auto strategy = StrategyRegistry::instance().create(name);
    EXPECT_THROW((void)strategy->run(ctx), Error) << name;
  }
  // Plain searches do not need one.
  const auto plain = StrategyRegistry::instance().create("random");
  const auto r = plain->run(ctx);
  EXPECT_GT(r.search.distinct_evaluations, 0u);
}

TEST(StrategyRegistry, StochasticFlagsMatchSeedConsumption) {
  const auto& reg = StrategyRegistry::instance();
  for (const char* name : {"random", "anneal", "genetic", "simplex"})
    EXPECT_TRUE(reg.create(name)->stochastic()) << name;
  for (const char* name : {"exhaustive", "static", "rule", "hybrid"})
    EXPECT_FALSE(reg.create(name)->stochastic()) << name;
}

// ---- seed plumbing / determinism --------------------------------------------

TEST(StrategySeed, SameSeedGivesIdenticalSearchResultTwice) {
  const ParamSpace space = tiny_space();
  for (const auto& name : StrategyRegistry::instance().names()) {
    const auto strategy = StrategyRegistry::instance().create(name);
    if (!strategy->stochastic()) continue;
    FunctionEvaluator evaluator{synthetic};
    StrategyContext ctx;
    ctx.space = &space;
    ctx.evaluator = &evaluator;
    ctx.options.budget = 12;
    ctx.options.seed = 2024;
    const StrategyResult a = strategy->run(ctx);
    const StrategyResult b = strategy->run(ctx);
    EXPECT_EQ(a.search.best_params, b.search.best_params) << name;
    EXPECT_EQ(a.search.best_time, b.search.best_time) << name;
    EXPECT_EQ(a.search.distinct_evaluations,
              b.search.distinct_evaluations)
        << name;
    EXPECT_EQ(a.search.total_calls, b.search.total_calls) << name;
  }
}

// ---- caching decorator across backends --------------------------------------

TEST(CachingDecorator, CountsDistinctAcrossBackends) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();

  std::size_t fn_calls = 0;
  FunctionEvaluator fn([&fn_calls](const codegen::TuningParams& p) {
    ++fn_calls;
    return synthetic(p);
  });
  SimEvaluator sim(wl, gpu);
  AnalyticEvaluator analytic(wl, gpu);

  for (Evaluator* backend : {static_cast<Evaluator*>(&fn),
                             static_cast<Evaluator*>(&sim),
                             static_cast<Evaluator*>(&analytic)}) {
    CachingEvaluator cache(space, *backend);
    const Point a = space.point_at(0);
    const Point b = space.point_at(3);
    cache(a);
    cache(a);
    cache(b);
    cache(a);
    EXPECT_EQ(cache.total_calls(), 4u) << backend->name();
    EXPECT_EQ(cache.distinct_evaluations(), 2u) << backend->name();
    EXPECT_TRUE(std::isfinite(cache.best_value())) << backend->name();
  }
  // The function backend really was consulted once per distinct point.
  EXPECT_EQ(fn_calls, 2u);
}

TEST(CachingDecorator, BatchDeduplicatesBeforeHittingTheBackend) {
  const ParamSpace space = tiny_space();
  std::size_t backend_calls = 0;
  FunctionEvaluator fn([&backend_calls](const codegen::TuningParams& p) {
    ++backend_calls;
    return synthetic(p);
  });
  CachingEvaluator cache(space, fn);
  cache(space.point_at(1));  // pre-populate one entry

  const std::vector<Point> batch = {space.point_at(0), space.point_at(1),
                                    space.point_at(0), space.point_at(2)};
  const auto values = cache.evaluate_batch(batch);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_EQ(values[0], values[2]);
  EXPECT_EQ(backend_calls, 3u);  // points 0, 1, 2 — each exactly once
  EXPECT_EQ(cache.total_calls(), 5u);
  EXPECT_EQ(cache.distinct_evaluations(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(values[i], cache(batch[i])) << i;
}

TEST(CachingDecorator, BatchAndSequentialAgreeOnBestPoint) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const ParamSpace space = tiny_space();

  SimEvaluator batched(wl, gpu);
  CachingEvaluator via_batch(space, batched);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < space.size(); ++i)
    pts.push_back(space.point_at(i));
  via_batch.evaluate_batch(pts);

  SimEvaluator sequential(wl, gpu);
  CachingEvaluator one_by_one(space, sequential);
  for (const Point& p : pts) one_by_one(p);

  EXPECT_EQ(via_batch.best_point(), one_by_one.best_point());
  EXPECT_DOUBLE_EQ(via_batch.best_value(), one_by_one.best_value());
  EXPECT_EQ(via_batch.distinct_evaluations(),
            one_by_one.distinct_evaluations());
}
