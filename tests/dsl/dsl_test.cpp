#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsl/ast.hpp"
#include "dsl/linear.hpp"
#include "dsl/printer.hpp"

using namespace gpustatic::dsl;  // NOLINT

TEST(DslEval, ArithmeticAndPrecedence) {
  // (3 + t*4) with t=5 -> 23
  const auto e = iadd(iconst(3), imul(ivar("t"), iconst(4)));
  EXPECT_EQ(evaluate(e, {{"t", 5}}), 23);
}

TEST(DslEval, DivModMinMax) {
  const auto env = std::map<std::string, std::int64_t>{{"t", 37}};
  EXPECT_EQ(evaluate(idiv(ivar("t"), 8), env), 4);
  EXPECT_EQ(evaluate(imod(ivar("t"), 8), env), 5);
  EXPECT_EQ(evaluate(ibin(IntOp::Min, ivar("t"), iconst(10)), env), 10);
  EXPECT_EQ(evaluate(ibin(IntOp::Max, ivar("t"), iconst(10)), env), 37);
}

TEST(DslEval, UnboundVariableThrows) {
  EXPECT_THROW((void)evaluate(ivar("zz"), {}), gpustatic::LookupError);
}

TEST(DslEval, DivisionByZeroThrows) {
  EXPECT_THROW((void)evaluate(idiv(iconst(4), 0), {}), gpustatic::Error);
}

TEST(DslEval, Conditions) {
  const auto c =
      cor(ccmp(CmpKind::EQ, ivar("i"), iconst(0)),
          ccmp(CmpKind::EQ, ivar("i"), iconst(7)));
  EXPECT_TRUE(evaluate(c, {{"i", 0}}));
  EXPECT_TRUE(evaluate(c, {{"i", 7}}));
  EXPECT_FALSE(evaluate(c, {{"i", 3}}));
  EXPECT_TRUE(evaluate(cnot(c), {{"i", 3}}));
  EXPECT_FALSE(
      evaluate(cand(c, ccmp(CmpKind::GT, ivar("i"), iconst(5))), {{"i", 0}}));
}

TEST(DslSubstitute, ReplacesAllOccurrences) {
  const auto e = iadd(ivar("j"), imul(ivar("j"), iconst(2)));
  const auto s = substitute(e, "j", iconst(10));
  EXPECT_EQ(evaluate(s, {}), 30);
}

TEST(DslSubstitute, SharesUntouchedSubtrees) {
  const auto e = iadd(ivar("i"), ivar("j"));
  const auto s = substitute(e, "zz", iconst(0));
  EXPECT_EQ(s, e);  // pointer-equal: nothing replaced
}

TEST(DslLinearize, AffineForms) {
  // i*32 + j  ->  {i:32, j:1}, const 0
  const auto e = iadd(imul(ivar("i"), iconst(32)), ivar("j"));
  const auto lf = linearize(e);
  ASSERT_TRUE(lf.has_value());
  EXPECT_EQ(lf->coeff("i"), 32);
  EXPECT_EQ(lf->coeff("j"), 1);
  EXPECT_EQ(lf->coeff("zz"), 0);
  EXPECT_EQ(lf->constant, 0);
}

TEST(DslLinearize, ConstantsFold) {
  const auto e = iadd(imul(iconst(3), iconst(4)), iconst(5));
  const auto lf = linearize(e);
  ASSERT_TRUE(lf.has_value());
  EXPECT_TRUE(lf->is_constant());
  EXPECT_EQ(lf->constant, 17);
}

TEST(DslLinearize, SubtractionCancelsCoefficients) {
  const auto e = isub(imul(ivar("i"), iconst(4)), imul(ivar("i"), iconst(4)));
  const auto lf = linearize(e);
  ASSERT_TRUE(lf.has_value());
  EXPECT_TRUE(lf->is_constant());
}

TEST(DslLinearize, NonAffineReturnsNullopt) {
  EXPECT_FALSE(linearize(imul(ivar("i"), ivar("j"))).has_value());
  EXPECT_FALSE(linearize(imod(ivar("i"), 8)).has_value());
  EXPECT_FALSE(linearize(idiv(ivar("i"), 4)).has_value());
  EXPECT_FALSE(
      linearize(ibin(IntOp::Min, ivar("i"), iconst(3))).has_value());
}

TEST(DslLinearize, ConstDivModFold) {
  EXPECT_EQ(linearize(idiv(iconst(37), 8))->constant, 4);
  EXPECT_EQ(linearize(imod(iconst(37), 8))->constant, 5);
}

TEST(DslPrinter, ExpressionsRenderReadably) {
  const auto e = iadd(imul(ivar("i"), iconst(32)), ivar("j"));
  EXPECT_EQ(to_string(e), "((i * 32) + j)");
  const auto f = fadd(fload("A", e), fconst(1.5));
  EXPECT_EQ(to_string(f), "(A[((i * 32) + j)] + 1.5f)");
}

TEST(DslPrinter, StatementsRenderWithStructure) {
  const auto body = serial_for(
      "j", 0, 32,
      accum("acc", FloatBinOp::Add, fmul(fload("A", ivar("j")),
                                         fload("x", ivar("j")))));
  const std::string out = to_string(body);
  EXPECT_NE(out.find("for (int j = 0; j < 32; ++j)"), std::string::npos);
  EXPECT_NE(out.find("unrollable"), std::string::npos);
  EXPECT_NE(out.find("acc = acc + "), std::string::npos);
}

TEST(DslWorkload, ArrayLookup) {
  WorkloadDesc wl;
  wl.name = "w";
  wl.arrays = {{"A", 64, ArrayInit::Ramp}};
  EXPECT_EQ(wl.array("A").length, 64);
  EXPECT_TRUE(wl.has_array("A"));
  EXPECT_FALSE(wl.has_array("B"));
  EXPECT_THROW((void)wl.array("B"), gpustatic::LookupError);
}

TEST(DslIf, CarriesBranchProbability) {
  const auto s = if_then(ccmp(CmpKind::LT, ivar("i"), iconst(1)),
                         store("F", ivar("i"), fconst(0)), nullptr, 0.25);
  EXPECT_DOUBLE_EQ(s->then_prob, 0.25);
}
