#include "codegen/cache.hpp"

#include <gtest/gtest.h>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "ptx/printer.hpp"
#include "tuner/space.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace kernels = gpustatic::kernels;
namespace ptx = gpustatic::ptx;
namespace tuner = gpustatic::tuner;

namespace {

/// Field-by-field equality of a cached-then-retargeted compile against a
/// fresh Compiler run, including bitwise block frequencies — the
/// byte-identity the whole hot path rests on.
void expect_identical(const codegen::LoweredWorkload& cached,
                      const codegen::LoweredWorkload& fresh) {
  EXPECT_EQ(cached.name, fresh.name);
  EXPECT_EQ(cached.params, fresh.params);
  ASSERT_EQ(cached.stages.size(), fresh.stages.size());
  for (std::size_t i = 0; i < cached.stages.size(); ++i) {
    const codegen::LoweredStage& a = cached.stages[i];
    const codegen::LoweredStage& b = fresh.stages[i];
    EXPECT_EQ(ptx::to_string(a.kernel), ptx::to_string(b.kernel));
    EXPECT_EQ(a.launch.grid_blocks, b.launch.grid_blocks);
    EXPECT_EQ(a.launch.block_threads, b.launch.block_threads);
    EXPECT_EQ(a.launch.smem_bytes, b.launch.smem_bytes);
    EXPECT_EQ(a.launch.domain, b.launch.domain);
    EXPECT_EQ(a.coarsen, b.coarsen);
    EXPECT_EQ(a.demand.regs_per_thread, b.demand.regs_per_thread);
    EXPECT_EQ(a.param_arrays, b.param_arrays);
    // Bitwise: operator== on doubles, element by element.
    EXPECT_EQ(a.block_freq, b.block_freq);
  }
}

}  // namespace

TEST(CompilationCache, LaunchShapeOnlyChangesNeverRecompile) {
  const arch::GpuSpec& gpu = arch::gpu("K20");
  codegen::CompilationCache cache(kernels::make_workload("atax", 64), gpu);

  codegen::TuningParams p;
  p.unroll = 2;
  std::size_t lookups = 0;
  for (const int tc : {32, 128, 512, 1024})
    for (const int bc : {24, 96, 192})
      for (const int pl : {16, 48}) {
        p.threads_per_block = tc;
        p.block_count = bc;
        p.l1_pref_kb = pl;
        (void)cache.lower(p);
        ++lookups;
      }
  const codegen::CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, lookups - 1);
}

TEST(CompilationCache, DistinctCodegenKeysCompileSeparately) {
  const arch::GpuSpec& gpu = arch::gpu("K20");
  codegen::CompilationCache cache(kernels::make_workload("bicg", 64), gpu);

  codegen::TuningParams p;
  for (const int uif : {1, 2, 3})
    for (const bool fm : {false, true}) {
      p.unroll = uif;
      p.fast_math = fm;
      (void)cache.lower(p);
      (void)cache.lower(p);  // immediate repeat is a hit
    }
  const codegen::CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.hits, 6u);
}

TEST(CompilationCache, CompileMatchesFreshCompilerExactly) {
  const arch::GpuSpec& gpu = arch::gpu("M2050");
  const auto workload = kernels::make_workload("ex14fj", 16);
  codegen::CompilationCache cache(workload, gpu);

  // A spread of points per key, including launch shapes the canonical
  // (first-seen) compile did NOT use — the retarget path must still be
  // bit-identical, frequencies included.
  const tuner::ParamSpace space = tuner::table3_space();
  for (std::size_t flat = 0; flat < space.size(); flat += 131) {
    const codegen::TuningParams p = space.to_params(space.point_at(flat));
    const codegen::LoweredWorkload cached = cache.compile(p);
    const codegen::LoweredWorkload fresh =
        codegen::Compiler(gpu, p).compile(workload);
    expect_identical(cached, fresh);
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(CompilationCache, ValidationFailuresThrowPerPoint) {
  const arch::GpuSpec& gpu = arch::gpu("K20");
  codegen::CompilationCache cache(kernels::make_workload("atax", 32), gpu);

  codegen::TuningParams good;
  (void)cache.lower(good);
  const codegen::CompileCacheStats before = cache.stats();

  // Same codegen key, out-of-range launch: must throw without touching
  // the compiler (TC/BC are validated on every lookup).
  codegen::TuningParams bad = good;
  bad.threads_per_block = 4096;
  EXPECT_THROW((void)cache.lower(bad), gpustatic::ConfigError);
  bad = good;
  bad.block_count = 0;
  EXPECT_THROW((void)cache.lower(bad), gpustatic::ConfigError);
  const codegen::CompileCacheStats after = cache.stats();
  EXPECT_EQ(after.misses, before.misses);
}

TEST(CompilationCache, BlockFreqModelCoversEveryBlock) {
  const arch::GpuSpec& gpu = arch::gpu("K20");
  codegen::CompilationCache cache(kernels::make_workload("matvec2d", 64),
                                  gpu);
  codegen::TuningParams p;
  const auto lowered = cache.lower(p);
  for (const codegen::LoweredStage& stage : lowered->stages) {
    ASSERT_EQ(stage.freq_model.size(), stage.block_freq.size());
    // The recorded model must reproduce the compile's own frequencies
    // exactly at the compile's own launch shape.
    std::vector<double> rescaled;
    codegen::block_freq_at(stage, p, rescaled);
    EXPECT_EQ(rescaled, stage.block_freq);
  }
}
