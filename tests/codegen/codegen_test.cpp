#include "codegen/compiler.hpp"

#include <gtest/gtest.h>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace kernels = gpustatic::kernels;
namespace ptx = gpustatic::ptx;

namespace {

codegen::LoweredWorkload lower(const std::string& kernel, std::int64_t n,
                               codegen::TuningParams p = {},
                               const std::string& gpu = "K20") {
  const codegen::Compiler c(arch::gpu(gpu), p);
  return c.compile(kernels::make_workload(kernel, n));
}

/// Count instructions in a kernel matching a predicate.
template <typename Pred>
std::size_t count_if_instr(const ptx::Kernel& k, Pred pred) {
  std::size_t n = 0;
  k.for_each_instruction([&](const ptx::Instruction& i) {
    if (pred(i)) ++n;
  });
  return n;
}

}  // namespace

TEST(Codegen, AtaxProducesTwoStages) {
  const auto lw = lower("atax", 32);
  ASSERT_EQ(lw.stages.size(), 2u);
  EXPECT_EQ(lw.stages[0].kernel.name, "atax_fwd");
  EXPECT_EQ(lw.stages[1].kernel.name, "atax_bwd");
}

TEST(Codegen, AllKernelsCompileOnAllGpus) {
  for (const auto& info : kernels::all_kernels()) {
    for (const auto& gpu : arch::all_gpus()) {
      const codegen::Compiler c(gpu, {});
      const auto lw =
          c.compile(kernels::make_workload(info.name, info.input_sizes[1]));
      for (const auto& st : lw.stages) {
        EXPECT_TRUE(st.kernel.finalized());
        EXPECT_GT(st.kernel.instruction_count(), 0u);
        EXPECT_EQ(st.block_freq.size(), st.kernel.blocks.size());
        EXPECT_GT(st.demand.regs_per_thread, 0u);
      }
    }
  }
}

TEST(Codegen, LaunchConfigMatchesParams) {
  codegen::TuningParams p;
  p.threads_per_block = 256;
  p.block_count = 48;
  const auto lw = lower("atax", 64, p);
  for (const auto& st : lw.stages) {
    EXPECT_EQ(st.launch.block_threads, 256u);
    EXPECT_EQ(st.launch.grid_blocks, 48u);
    EXPECT_EQ(st.launch.total_threads(), 256u * 48u);
  }
}

TEST(Codegen, StrengthReductionHitsAtaxInnerLoop) {
  const auto lw = lower("atax", 32);
  const auto& k = lw.stages[0].kernel;
  // The inner loop block must contain no CVT (no per-iteration address
  // recomputation): stream pointers advance by IADD instead.
  const std::int32_t loop_idx = 2;  // entry, gs_loop, Lj...
  ASSERT_GE(static_cast<std::int32_t>(k.blocks.size()), 4);
  const auto& loop = k.blocks[loop_idx];
  std::size_t cvts = 0;
  for (const auto& i : loop.body)
    if (i.op == ptx::Opcode::CVT) ++cvts;
  EXPECT_EQ(cvts, 0u) << ptx::to_string(k);
}

TEST(Codegen, MatvecInnerLoopRecomputesAddresses) {
  const auto lw = lower("matvec2d", 128);
  const auto& k = lw.stages[0].kernel;
  // The non-affine cyclic index forces CVT+IMAD per load in the loop body.
  bool found_loop_with_cvt = false;
  for (const auto& b : k.blocks) {
    if (b.label.rfind("Lk", 0) != 0) continue;
    for (const auto& i : b.body)
      if (i.op == ptx::Opcode::CVT) found_loop_with_cvt = true;
  }
  EXPECT_TRUE(found_loop_with_cvt);
}

TEST(Codegen, UnrollReducesDynamicBranchWork) {
  // Static loop body instructions grow with UIF, but per-element loop
  // overhead shrinks: check the unrolled body has UIF FMAs and one SETP.
  codegen::TuningParams p4;
  p4.unroll = 4;
  const auto lw = lower("atax", 64, p4);
  const auto& k = lw.stages[0].kernel;
  for (const auto& b : k.blocks) {
    if (b.label.rfind("Lj", 0) != 0 ||
        b.label.find("end") != std::string::npos)
      continue;
    std::size_t fmas = 0, setps = 0;
    for (const auto& i : b.body) {
      if (i.op == ptx::Opcode::FFMA) ++fmas;
      if (i.op == ptx::Opcode::SETP) ++setps;
    }
    EXPECT_EQ(fmas, 4u);
    EXPECT_EQ(setps, 1u);
    return;
  }
  FAIL() << "unrolled loop block not found";
}

TEST(Codegen, UnrollRaisesRegisterPressure) {
  std::uint32_t prev = 0;
  for (const int uif : {1, 2, 4, 6}) {
    codegen::TuningParams p;
    p.unroll = uif;
    const auto lw = lower("atax", 64, p);
    const std::uint32_t regs = lw.regs_per_thread();
    EXPECT_GE(regs, prev) << "uif=" << uif;
    prev = regs;
  }
  // UIF=6 must be meaningfully hungrier than UIF=1.
  codegen::TuningParams p1, p6;
  p6.unroll = 6;
  EXPECT_GE(lower("atax", 64, p6).regs_per_thread(),
            lower("atax", 64, p1).regs_per_thread() + 4);
}

TEST(Codegen, NonDividingUnrollEmitsRemainderLoop) {
  codegen::TuningParams p5;
  p5.unroll = 5;  // 64 % 5 != 0
  const auto lw = lower("atax", 64, p5);
  const auto& k = lw.stages[0].kernel;
  bool has_rem = false;
  for (const auto& b : k.blocks)
    if (b.label.find("_rem") != std::string::npos) has_rem = true;
  EXPECT_TRUE(has_rem);
}

TEST(Codegen, DividingUnrollHasNoRemainderLoop) {
  codegen::TuningParams p4;
  p4.unroll = 4;  // 64 % 4 == 0
  const auto lw = lower("atax", 64, p4);
  for (const auto& b : lw.stages[0].kernel.blocks)
    EXPECT_EQ(b.label.find("_rem"), std::string::npos) << b.label;
}

TEST(Codegen, FastMathShortensSpecialFunctions) {
  codegen::TuningParams fast;
  fast.fast_math = true;
  const auto precise = lower("ex14fj", 8);
  const auto quick = lower("ex14fj", 8, fast);
  // exp() lowers to fewer instructions under fast-math.
  EXPECT_LT(quick.instruction_count(), precise.instruction_count());
}

TEST(Codegen, FastMathSplitsAccumulators) {
  codegen::TuningParams p;
  p.unroll = 4;
  p.fast_math = true;
  const auto split = lower("atax", 64, p);
  codegen::TuningParams q;
  q.unroll = 4;
  const auto chained = lower("atax", 64, q);
  // Partial-sum registers push demand up vs. the single-accumulator chain.
  EXPECT_GT(split.regs_per_thread(), chained.regs_per_thread());
}

TEST(Codegen, Ex14fjUsesCoarseningForUnroll) {
  // ex14fj has no serial loop; UIF multiplies the grid-stride coarsening,
  // visible as several boundary-check predicate groups per iteration.
  codegen::TuningParams p;
  p.unroll = 3;
  const auto lw = lower("ex14fj", 8, p);
  const auto& k = lw.stages[0].kernel;
  // Three copies of the i==0 boundary check -> >= 3 guarded skip branches.
  std::size_t guards = 0;
  for (const auto& b : k.blocks)
    if (b.label.rfind("gs_skip", 0) == 0 ||
        b.label.rfind("gs_copy", 0) == 0)
      ++guards;
  EXPECT_GE(guards, 4u);  // 2 per extra copy (guard + skip), 2 extras
}

TEST(Codegen, CoalescingHintsAreDirectional) {
  const auto lw = lower("atax", 32);
  // Stage 1 (row walk): A-load lane stride = 4*N, x uniform.
  const auto& fwd = lw.stages[0].kernel;
  bool saw_strided = false, saw_uniform = false;
  fwd.for_each_instruction([&](const ptx::Instruction& i) {
    if (i.op != ptx::Opcode::LD || i.space != ptx::MemSpace::Global) return;
    if (i.access.lane_stride_bytes == 32 * 4) saw_strided = true;
    if (i.access.uniform) saw_uniform = true;
  });
  EXPECT_TRUE(saw_strided);
  EXPECT_TRUE(saw_uniform);

  // Stage 2 (column walk): A-load lane stride = 4 (coalesced), serial
  // stride = 4*N.
  const auto& bwd = lw.stages[1].kernel;
  bool saw_coalesced = false;
  bwd.for_each_instruction([&](const ptx::Instruction& i) {
    if (i.op != ptx::Opcode::LD || i.space != ptx::MemSpace::Global) return;
    if (i.access.lane_stride_bytes == 4 &&
        i.access.serial_stride_bytes == 32 * 4)
      saw_coalesced = true;
  });
  EXPECT_TRUE(saw_coalesced);
}

TEST(Codegen, StreamChunkScalesLaneStride) {
  codegen::TuningParams p;
  p.stream_chunk = 4;
  const auto lw = lower("atax", 64, p);
  bool saw = false;
  lw.stages[0].kernel.for_each_instruction([&](const ptx::Instruction& i) {
    if (i.op == ptx::Opcode::LD && i.space == ptx::MemSpace::Global &&
        i.access.lane_stride_bytes == 4 * 64 * 4)
      saw = true;  // lane stride multiplied by SC
  });
  EXPECT_TRUE(saw);
}

TEST(Codegen, BicgReloadsRInsideLoop) {
  const auto lw = lower("bicg", 32);
  const auto& k = lw.stages[0].kernel;
  // The inner loop must contain 3 loads (A, p, r) and one atomic.
  for (const auto& b : k.blocks) {
    if (b.label.rfind("Lj", 0) != 0 ||
        b.label.find("end") != std::string::npos)
      continue;
    const auto loads = count_if_instr(k, [](const ptx::Instruction&) {
      return false;
    });
    (void)loads;
    std::size_t ld = 0, atom = 0;
    for (const auto& i : b.body) {
      if (i.op == ptx::Opcode::LD && i.space == ptx::MemSpace::Global) ++ld;
      if (i.op == ptx::Opcode::ATOM_ADD) ++atom;
    }
    EXPECT_EQ(ld, 3u);
    EXPECT_EQ(atom, 1u);
    return;
  }
  FAIL() << "bicg loop block not found";
}

TEST(Codegen, ParamArraysOnlyIncludeUsedBuffers) {
  const auto lw = lower("atax", 32);
  // Stage 1 uses A, x, tmp (not y).
  const auto& pa = lw.stages[0].param_arrays;
  ASSERT_EQ(pa.size(), 4u);  // 3 arrays + n_items
  EXPECT_EQ(pa[0], "A");
  EXPECT_EQ(pa[1], "x");
  EXPECT_EQ(pa[2], "tmp");
  EXPECT_EQ(pa[3], "");  // scalar
}

TEST(Codegen, BlockFrequenciesScaleWithLaunch) {
  // Twice the threads -> half the per-thread loop frequency.
  codegen::TuningParams small, big;
  small.threads_per_block = 64;
  small.block_count = 8;
  big.threads_per_block = 128;
  big.block_count = 8;
  const auto lw_small = lower("atax", 512, small);
  const auto lw_big = lower("atax", 512, big);
  const double f_small = lw_small.stages[0].block_freq[1];
  const double f_big = lw_big.stages[0].block_freq[1];
  EXPECT_NEAR(f_small, 2.0 * f_big, 1e-9);
}

TEST(Codegen, InvalidParamsThrow) {
  codegen::TuningParams p;
  p.threads_per_block = 2048;  // above T^cc_B
  EXPECT_THROW(codegen::Compiler(arch::gpu("K20"), p),
               gpustatic::ConfigError);
  codegen::TuningParams q;
  q.unroll = 0;
  EXPECT_THROW(codegen::Compiler(arch::gpu("K20"), q),
               gpustatic::ConfigError);
}

TEST(Codegen, CompileInfoMentionsRegisters) {
  const auto lw = lower("atax", 32);
  const std::string info = codegen::compile_info(lw.stages[0]);
  EXPECT_NE(info.find("registers"), std::string::npos);
  EXPECT_NE(info.find("atax_fwd"), std::string::npos);
}

TEST(Codegen, GeneratedKernelsRoundTripThroughAssembly) {
  for (const auto& info : kernels::all_kernels()) {
    const auto lw = lower(std::string(info.name), info.input_sizes.front());
    for (const auto& st : lw.stages) {
      const std::string text = ptx::to_string(st.kernel);
      // Re-parse and re-print: identical text proves a lossless encoding
      // of the generated program.
      const auto parsed = gpustatic::ptx::parse_kernel(text);
      EXPECT_EQ(ptx::to_string(parsed), text) << info.name;
    }
  }
}
