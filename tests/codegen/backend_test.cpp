#include "codegen/backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "arch/gpu_spec.hpp"
#include "codegen/cache.hpp"
#include "codegen/compiler.hpp"
#include "codegen/cref.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "ptx/printer.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace kernels = gpustatic::kernels;
namespace ptx = gpustatic::ptx;
using gpustatic::Error;

namespace {

/// A backend that always fails to lower — the probe for per-backend
/// failure memoization in the cache.
class FailingBackend : public codegen::Backend {
 public:
  [[nodiscard]] std::string name() const override { return "failing"; }
  [[nodiscard]] codegen::LoweredWorkload lower(
      const gpustatic::dsl::WorkloadDesc&, const arch::GpuSpec&,
      const codegen::TuningParams&) const override {
    throw Error("failing backend: lower always fails");
  }
  [[nodiscard]] std::string emit_source(
      const codegen::LoweredWorkload&,
      const gpustatic::dsl::WorkloadDesc&) const override {
    return "";
  }
};

/// Registers "failing" into the global registry once for this process
/// (the registry has no unregister; tests share the instance).
void ensure_failing_backend() {
  codegen::BackendRegistry& reg = codegen::BackendRegistry::instance();
  if (!reg.contains("failing"))
    reg.register_backend(std::make_shared<FailingBackend>());
}

}  // namespace

TEST(BackendRegistry, BuiltinsAreRegistered) {
  codegen::BackendRegistry& reg = codegen::BackendRegistry::instance();
  EXPECT_TRUE(reg.contains("ptx"));
  EXPECT_TRUE(reg.contains("cref"));
  EXPECT_EQ(reg.get("ptx")->name(), "ptx");
  EXPECT_EQ(reg.get("cref")->name(), "cref");
  EXPECT_FALSE(reg.get("ptx")->executable());
  EXPECT_TRUE(reg.get("cref")->executable());
}

TEST(BackendRegistry, UnknownNameEnumeratesRegisteredBackends) {
  try {
    (void)codegen::BackendRegistry::instance().get("no-such-backend");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    EXPECT_NE(what.find("ptx"), std::string::npos);
    EXPECT_NE(what.find("cref"), std::string::npos);
  }
}

TEST(BackendRegistry, DuplicateAndNullRegistrationsThrow) {
  codegen::BackendRegistry reg;
  codegen::register_builtin_backends(reg);
  EXPECT_THROW(reg.register_backend(nullptr), Error);
  EXPECT_THROW(
      reg.register_backend(std::make_shared<codegen::PtxBackend>()), Error);
}

TEST(PtxBackend, LowerIsByteIdenticalToCompiler) {
  const auto wl = kernels::make_workload("atax", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  codegen::TuningParams p;
  p.unroll = 2;

  const codegen::Compiler compiler(gpu, p);
  const codegen::LoweredWorkload direct = compiler.compile(wl);
  const codegen::LoweredWorkload seamed =
      codegen::BackendRegistry::instance().get("ptx")->lower(wl, gpu, p);

  ASSERT_EQ(seamed.stages.size(), direct.stages.size());
  for (std::size_t i = 0; i < direct.stages.size(); ++i) {
    EXPECT_EQ(ptx::to_string(seamed.stages[i].kernel),
              ptx::to_string(direct.stages[i].kernel));
    EXPECT_EQ(seamed.stages[i].block_freq, direct.stages[i].block_freq);
  }
}

TEST(PtxBackend, EmitSourceMatchesDisasmFormat) {
  const auto wl = kernels::make_workload("bicg", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const codegen::TuningParams p;
  const auto backend = codegen::BackendRegistry::instance().get("ptx");
  const codegen::LoweredWorkload lowered = backend->lower(wl, gpu, p);

  std::string expected;
  for (const codegen::LoweredStage& st : lowered.stages) {
    expected += "// " + codegen::compile_info(st) + "\n";
    expected += ptx::to_string(st.kernel) + "\n";
  }
  EXPECT_EQ(backend->emit_source(lowered, wl), expected);
}

TEST(CRefBackend, LowersIdenticallyToPtx) {
  // The reference backend deliberately shares the mid-level lowering:
  // the difftest pins the exact static model the simulator consumes.
  const auto wl = kernels::make_workload("divergent", 256);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const codegen::TuningParams p;
  const auto& reg = codegen::BackendRegistry::instance();
  const codegen::LoweredWorkload a = reg.get("ptx")->lower(wl, gpu, p);
  const codegen::LoweredWorkload b = reg.get("cref")->lower(wl, gpu, p);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(ptx::to_string(a.stages[i].kernel),
              ptx::to_string(b.stages[i].kernel));
    EXPECT_EQ(a.stages[i].block_freq, b.stages[i].block_freq);
  }
}

TEST(CRefBackend, EmitsSelfContainedCProgram) {
  const auto wl = kernels::make_workload("atax", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const codegen::TuningParams p;
  const auto backend = codegen::BackendRegistry::instance().get("cref");
  const std::string source =
      backend->emit_source(backend->lower(wl, gpu, p), wl);
  EXPECT_NE(source.find("int main("), std::string::npos);
  EXPECT_NE(source.find("static float buf_A["), std::string::npos);
  EXPECT_NE(source.find("cnt_0"), std::string::npos);
  // Counter printing: one "<stage> <block> <count>" line per block.
  EXPECT_NE(source.find("%d %zu %lld"), std::string::npos);
}

TEST(CompilationCache, UnknownBackendFailsAtConstruction) {
  EXPECT_THROW(codegen::CompilationCache(kernels::make_workload("atax", 64),
                                         arch::gpu("K20"), "no-such"),
               Error);
}

TEST(CompilationCache, KeysEntriesAndStatsPerBackend) {
  codegen::CompilationCache cache(kernels::make_workload("atax", 64),
                                  arch::gpu("K20"));
  const codegen::TuningParams p;
  (void)cache.lower(p);            // ptx miss
  (void)cache.lower(p);            // ptx hit
  (void)cache.lower_as("cref", p); // cref miss: distinct entry
  (void)cache.lower_as("cref", p); // cref hit
  (void)cache.lower_as("ptx", p);  // routes to the bound entry: hit

  const auto by_backend = cache.stats_by_backend();
  ASSERT_TRUE(by_backend.contains("ptx"));
  ASSERT_TRUE(by_backend.contains("cref"));
  EXPECT_EQ(by_backend.at("ptx").misses, 1u);
  EXPECT_EQ(by_backend.at("ptx").hits, 2u);
  EXPECT_EQ(by_backend.at("cref").misses, 1u);
  EXPECT_EQ(by_backend.at("cref").hits, 1u);
  EXPECT_EQ(cache.stats().misses, by_backend.at("ptx").misses);
  EXPECT_EQ(cache.backend_name(), "ptx");
}

TEST(CompilationCache, MemoizedFailuresAreScopedToTheirBackend) {
  // A failure under one backend must not poison the same CodegenKey
  // under another: the memo key carries the backend id.
  ensure_failing_backend();
  codegen::CompilationCache cache(kernels::make_workload("atax", 64),
                                  arch::gpu("K20"));
  const codegen::TuningParams p;
  EXPECT_THROW((void)cache.lower_as("failing", p), Error);
  EXPECT_THROW((void)cache.lower_as("failing", p), Error);  // memoized
  EXPECT_NO_THROW((void)cache.lower(p));  // ptx entry is untouched
  EXPECT_NO_THROW((void)cache.lower_as("cref", p));

  const auto by_backend = cache.stats_by_backend();
  // Both throws consult the same memoized entry: one miss, one hit.
  EXPECT_EQ(by_backend.at("failing").misses, 1u);
  EXPECT_EQ(by_backend.at("failing").hits, 1u);
}
