// Chaos gate: with every failpoint armed at low probability, the serve
// pipeline must degrade — never crash, never hang, never answer out of
// band. Every response stays one parseable JSON line with status
// ok|error|shed, the store file stays loadable, and once the faults are
// disarmed the server recovers completely.
//
// The fault schedule comes from GPUSTATIC_FAILPOINTS when set (the CI
// chaos step pins one), falling back to a fixed seeded schedule so the
// test is deterministic either way. Only `error` and `delay` actions
// belong here: `throw` is the foreign-exception case, tested separately.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT
using serve::JsonObject;
using serve::ServeOptions;
using serve::Server;

namespace {

const char* kFixedSchedule =
    "codegen.compile=error(p=0.10,seed=1);"
    "sim.measure=error(p=0.05,seed=2);"
    "store.save=error(p=0.30,seed=3);"
    "store.merge=error(p=0.20,seed=4);"
    "learn.model_load=error(seed=5);"
    "serve.write=error(p=0.15,seed=6)";

void arm_schedule() {
  if (std::getenv("GPUSTATIC_FAILPOINTS") != nullptr)
    failpoint::configure_from_env();
  else
    failpoint::configure(kFixedSchedule);
}

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Every status a degraded-but-correct server may answer with.
void expect_in_band(const std::string& response_line) {
  const JsonObject response = serve::parse_json_object(response_line);
  const std::string& status = response.at("status").string;
  EXPECT_TRUE(status == "ok" || status == "error" || status == "shed")
      << response_line;
}

std::vector<std::string> chaos_request_lines() {
  std::vector<std::string> lines;
  for (const char* kernel : {"atax", "bicg"})
    for (const char* method : {"rule", "random"})
      for (const int n : {16, 32}) {
        std::ostringstream tune;
        tune << R"({"op":"tune","kernel":")" << kernel
             << R"(","n":)" << n << R"(,"method":")" << method
             << R"(","search_budget":12})";
        lines.push_back(tune.str());
        // The same request under a deadline: either it finishes (ok) or
        // it times out (error + timed_out) — both are in-band.
        std::ostringstream capped;
        capped << R"({"op":"tune","kernel":")" << kernel
               << R"(","n":)" << n << R"(,"method":")" << method
               << R"(","search_budget":12,"deadline_ms":500})";
        lines.push_back(capped.str());
      }
  lines.push_back(R"({"op":"query","kernel":"atax","n":16})");
  lines.push_back(R"({"op":"stats"})");
  lines.push_back(R"({"op":"ping","id":9})");
  lines.push_back(R"({"op":"retrain"})");
  lines.push_back("definitely not json");
  lines.push_back(R"({"op":"tune","kernel":"nosuchkernel"})");
  return lines;
}

}  // namespace

TEST(Chaos, ServerDegradesInBandUnderTheFaultSchedule) {
  const std::string store = temp_path("chaos_server.store");
  std::filesystem::remove(store);
  arm_schedule();
  {
    ServeOptions opts;
    opts.store_path = store;
    opts.save_every = 2;  // exercise the periodic-save retry path often
    Server server(opts);
    for (const std::string& line : chaos_request_lines())
      expect_in_band(server.handle_line(line));
    // The transport write path (serve.write) + shutdown persist. A
    // persist whose every retry was injected away surfaces as an Error
    // — the CLI boundary reports it — but never a crash or a torn file.
    std::istringstream in(
        R"({"op":"tune","kernel":"atax","n":16})" "\n"
        R"({"op":"stats"})" "\n");
    std::ostringstream out;
    try {
      EXPECT_EQ(server.run_pipe(in, out), 0);
    } catch (const Error&) {
      // Injected persist failure after bounded retries: acceptable
      // degradation, asserted recoverable below.
    }
    std::istringstream responses(out.str());
    std::string response_line;
    while (std::getline(responses, response_line))
      expect_in_band(response_line);
  }
  failpoint::disarm();

  // Gate: whatever the injected faults did, the store reloads cleanly…
  std::vector<std::string> warnings;
  EXPECT_NO_THROW((void)tuner::TuningStore::load(store, &warnings));
  // …and a clean server over the same file serves normally again.
  ServeOptions clean_opts;
  clean_opts.store_path = store;
  Server clean(clean_opts);
  const JsonObject ok = serve::parse_json_object(
      clean.handle_line(R"({"op":"tune","kernel":"atax","n":16})"));
  EXPECT_EQ(ok.at("status").string, "ok") << ok.at("error").string;
  std::filesystem::remove(store);
}

TEST(Chaos, StatsKeepServingAndCountTripsUnderFaults) {
  arm_schedule();
  Server server(ServeOptions{});
  // Enough tunes that some failpoint almost surely trips.
  for (int i = 0; i < 6; ++i)
    expect_in_band(server.handle_line(
        R"({"op":"tune","kernel":"atax","n":16,"method":"random"})"));
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("status").string, "ok");
  // The degradation counters are present and the trip counter reflects
  // the armed schedule (≥ 0 always; > 0 when anything fired).
  ASSERT_EQ(stats.count("failpoint_trips"), 1u);
  ASSERT_EQ(stats.count("timed_out"), 1u);
  ASSERT_EQ(stats.count("store_save_retries"), 1u);
  EXPECT_DOUBLE_EQ(stats.at("failpoint_trips").number,
                   static_cast<double>(failpoint::total_trips()));
  failpoint::disarm();
}
