// Cross-module integration properties: these tests intentionally span
// multiple libraries (frontend -> codegen -> sim -> analysis -> tuner)
// to pin down the contracts the benches rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/divergence.hpp"
#include "analysis/mix.hpp"
#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "core/session.hpp"
#include "core/static_analyzer.hpp"
#include "dynamic/profile.hpp"
#include "frontend/parser.hpp"
#include "frontend/sources.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

std::int64_t small_size(const std::string& kernel) {
  if (kernel == "ex14fj") return 8;
  if (kernel == "divergent") return 2048;
  if (kernel == "jacobi2d" || kernel == "gemver") return 32;
  return 64;  // power of two: matvec2d's chunk math requires it
}

sim::CollectResult run_variant(const dsl::WorkloadDesc& wl,
                               const codegen::TuningParams& p) {
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  return sim::run_workload_collect(lw, wl, machine);
}

/// Name of each kernel's primary output array.
std::string output_array(const std::string& kernel) {
  if (kernel == "bicg") return "q";
  if (kernel == "ex14fj") return "F";
  if (kernel == "gemver") return "w";
  if (kernel == "mvt") return "x1";
  if (kernel == "jacobi2d") return "B";
  return "y";
}

}  // namespace

// ---- variant invariance across the whole suite ----------------------------

class SuiteInvariance : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteInvariance, OutputsIndependentOfTuningParameters) {
  const std::string kernel = GetParam();
  const auto wl = kernels::make_workload(kernel, small_size(kernel));
  const std::string out = output_array(kernel);

  codegen::TuningParams base;
  base.threads_per_block = 32;
  base.block_count = 24;
  auto baseline = run_variant(wl, base);
  ASSERT_TRUE(baseline.measurement.valid);
  const auto& want = baseline.memory.host(out);

  // Kernels with atomic reductions accumulate in schedule order, so
  // exact bit-equality only holds for the store-only kernels.
  const bool atomics =
      kernel == "bicg" || kernel == "matvec2d";
  const double tol = atomics ? 1e-4 : 0.0;

  for (const int tc : {96, 256, 1024}) {
    for (const int uif : {2, 5}) {
      codegen::TuningParams p;
      p.threads_per_block = tc;
      p.block_count = 96;
      p.unroll = uif;
      p.stream_chunk = 2;
      auto res = run_variant(wl, p);
      ASSERT_TRUE(res.measurement.valid) << tc << "/" << uif;
      const auto& got = res.memory.host(out);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (tol == 0.0) {
          ASSERT_EQ(got[i], want[i])
              << kernel << " TC=" << tc << " UIF=" << uif << " [" << i
              << "]";
        } else {
          const double denom = std::abs(want[i]) + 1e-9;
          ASSERT_LE(std::abs(got[i] - want[i]) / denom, tol)
              << kernel << " TC=" << tc << " UIF=" << uif << " [" << i
              << "]";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuiteInvariance,
                         ::testing::Values("atax", "bicg", "ex14fj",
                                           "matvec2d", "gesummv", "gemver",
                                           "mvt", "jacobi2d", "divergent"));

// ---- static predictions vs dynamic measurements ----------------------------

TEST(StaticVsDynamic, DivergenceAnalysisAgreesWithExecution) {
  // The static taint analysis flags potentially divergent branches; the
  // profiler measures real splits. They must agree in both directions.
  struct Case {
    const char* kernel;
    bool expect_divergence;
  };
  for (const Case c : {Case{"atax", false}, Case{"divergent", true},
                       Case{"jacobi2d", true}}) {
    const auto wl = kernels::make_workload(c.kernel, small_size(c.kernel));
    const auto& gpu = arch::gpu("K20");
    codegen::TuningParams p;
    p.threads_per_block = 64;
    p.block_count = 24;
    const codegen::Compiler compiler(gpu, p);
    const auto lw = compiler.compile(wl);

    // Static view: any lane-varying (non-latch) branch?
    std::size_t static_divergent = 0;
    for (const auto& st : lw.stages) {
      const auto rep = analysis::analyze_divergence(st.kernel);
      for (const auto& b : rep.branches)
        if (b.divergent && !b.loop_back_edge) ++static_divergent;
    }

    // Dynamic view: did warps actually split at branches? (The
    // branch-divergence rate, not the partial-mask issue ratio — entry
    // guards legitimately leave tail warps partially masked.)
    const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
    const auto prof = dynamic::profile_workload(lw, wl, machine);
    ASSERT_TRUE(prof.measurement.valid) << c.kernel;
    const auto& counts = prof.measurement.counts;
    const double rate =
        counts.divergent_branches / std::max(1.0, counts.branches);
    if (c.expect_divergence) {
      EXPECT_GT(static_divergent, 0u) << c.kernel;
      EXPECT_GT(rate, 0.05) << c.kernel;
    } else {
      EXPECT_LT(rate, 0.05) << c.kernel;
    }
  }
}

TEST(StaticVsDynamic, WeightedMixTracksDynamicMixShares) {
  // Table VI's premise: loop-weighted static mixes approximate dynamic
  // mix *shares*. Check the FLOPS share error stays small for every
  // paper kernel.
  for (const char* kernel : {"atax", "bicg", "ex14fj", "matvec2d"}) {
    // Paper-scale sizes: the nominal loop weight approximates dynamic
    // trip counts poorly on tiny grids.
    const auto wl = kernels::make_workload(
        kernel, std::string(kernel) == "ex14fj" ? 16 : 128);
    const auto& gpu = arch::gpu("K20");
    codegen::TuningParams p;
    p.threads_per_block = 64;
    p.block_count = 24;
    const codegen::Compiler compiler(gpu, p);
    const auto lw = compiler.compile(wl);

    sim::Counts stat;
    for (const auto& st : lw.stages)
      stat += analysis::analyze_mix(st.kernel).weighted;
    const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
    sim::RunOptions run;
    run.engine = sim::Engine::Warp;
    const auto m = sim::run_workload(lw, wl, machine, run);
    ASSERT_TRUE(m.valid);

    auto share = [](const sim::Counts& c, arch::OpClass cls) {
      const double total = c.by_class(arch::OpClass::FLOPS) +
                           c.by_class(arch::OpClass::MEM) +
                           c.by_class(arch::OpClass::CTRL);
      return total > 0 ? c.by_class(cls) / total : 0.0;
    };
    const double err = std::abs(share(stat, arch::OpClass::FLOPS) -
                                share(m.counts, arch::OpClass::FLOPS));
    EXPECT_LT(err, 0.2) << kernel;
  }
}

// ---- frontend sources through the full tuning pipeline ----------------------

TEST(FrontendPipeline, SourceKernelsReproduceRuleDecisions) {
  // Parsing the source form must lead the analyzer to the same rule
  // decision as the hand-built DSL (atax and bicg are shape-identical).
  const auto& gpu = arch::gpu("K20");
  const core::StaticAnalyzer analyzer(gpu);
  for (const char* kernel : {"atax", "bicg"}) {
    const auto parsed =
        frontend::parse_workload(frontend::sources::by_name(kernel), 128);
    const auto built = kernels::make_workload(kernel, 128);
    const auto rep_parsed = analyzer.analyze(parsed);
    const auto rep_built = analyzer.analyze(built);
    EXPECT_DOUBLE_EQ(rep_parsed.intensity, rep_built.intensity) << kernel;
    EXPECT_EQ(rep_parsed.prefers_upper, rep_built.prefers_upper) << kernel;
    EXPECT_EQ(rep_parsed.rule_threads, rep_built.rule_threads) << kernel;
    EXPECT_EQ(rep_parsed.regs_per_thread, rep_built.regs_per_thread)
        << kernel;
  }
}

TEST(FrontendPipeline, ParsedKernelTunesEndToEnd) {
  const auto wl =
      frontend::parse_workload(frontend::sources::kMatVec2d, 64);
  core::TuningSession session(wl, arch::gpu("M40"));
  const auto outcome = session.tune("rule");
  EXPECT_GT(outcome.space_reduction(), 0.85);
  EXPECT_LT(outcome.search.best_time, tuner::kInvalid);
}

// ---- extended kernels through the analyzer ---------------------------------

TEST(ExtendedAnalysis, IntensityClassifiesStreamingVsCompute) {
  const auto& gpu = arch::gpu("K20");
  const core::StaticAnalyzer analyzer(gpu);
  auto intensity = [&](const char* k) {
    return analyzer
        .analyze(kernels::make_workload(k, small_size(k)))
        .intensity;
  };
  // Streaming linear algebra sits below the rule threshold...
  EXPECT_LE(intensity("gesummv"), 4.0);
  EXPECT_LE(intensity("mvt"), 4.0);
  EXPECT_LE(intensity("gemver"), 4.0);
  // ... the arithmetic-heavy stressor above it.
  EXPECT_GT(intensity("divergent"), 4.0);
}
