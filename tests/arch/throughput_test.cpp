#include "arch/throughput.hpp"

#include <gtest/gtest.h>

namespace arch = gpustatic::arch;
using arch::Family;
using arch::OpCategory;
using arch::OpClass;

TEST(Throughput, TableTwoSpotChecks) {
  // Table II, verbatim values.
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::FPIns32, Family::Fermi), 32);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::FPIns32, Family::Kepler), 192);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::FPIns32, Family::Maxwell), 128);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::FPIns32, Family::Pascal), 64);

  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::FPIns64, Family::Maxwell), 4);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::LogSinCos, Family::Fermi), 4);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::IntAdd32, Family::Kepler), 160);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::Conv64, Family::Kepler), 8);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::Conv32, Family::Kepler), 128);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::LdStIns, Family::Maxwell), 64);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::MoveIns, Family::Pascal), 32);
  EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::Regs, Family::Fermi), 16);
}

TEST(Throughput, SharedRowsShareNumbers) {
  for (const Family f : {Family::Fermi, Family::Kepler, Family::Maxwell,
                         Family::Pascal}) {
    EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::TexIns, f),
                     arch::ipc(OpCategory::LdStIns, f));
    EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::SurfIns, f),
                     arch::ipc(OpCategory::LdStIns, f));
    EXPECT_DOUBLE_EQ(arch::ipc(OpCategory::PredIns, f),
                     arch::ipc(OpCategory::CtrlIns, f));
  }
}

TEST(Throughput, CpiIsReciprocalOfIpc) {
  for (const OpCategory c : arch::all_categories()) {
    for (const Family f : {Family::Fermi, Family::Kepler, Family::Maxwell,
                           Family::Pascal}) {
      EXPECT_DOUBLE_EQ(arch::cpi(c, f) * arch::ipc(c, f), 1.0);
    }
  }
}

TEST(Throughput, CategoryClassMapping) {
  EXPECT_EQ(arch::op_class(OpCategory::FPIns32), OpClass::FLOPS);
  EXPECT_EQ(arch::op_class(OpCategory::IntAdd32), OpClass::FLOPS);
  EXPECT_EQ(arch::op_class(OpCategory::LogSinCos), OpClass::FLOPS);
  EXPECT_EQ(arch::op_class(OpCategory::LdStIns), OpClass::MEM);
  EXPECT_EQ(arch::op_class(OpCategory::TexIns), OpClass::MEM);
  EXPECT_EQ(arch::op_class(OpCategory::CtrlIns), OpClass::CTRL);
  EXPECT_EQ(arch::op_class(OpCategory::MoveIns), OpClass::CTRL);
  EXPECT_EQ(arch::op_class(OpCategory::PredIns), OpClass::CTRL);
  EXPECT_EQ(arch::op_class(OpCategory::Regs), OpClass::REG);
}

TEST(Throughput, AllCategoriesEnumerated) {
  EXPECT_EQ(arch::all_categories().size(), arch::kNumOpCategories);
}

TEST(Throughput, AllIpcsPositive) {
  for (const OpCategory c : arch::all_categories())
    for (const Family f : {Family::Fermi, Family::Kepler, Family::Maxwell,
                           Family::Pascal})
      EXPECT_GT(arch::ipc(c, f), 0.0);
}

TEST(Throughput, ClassCpiUsesPrimaryCategory) {
  EXPECT_DOUBLE_EQ(arch::class_cpi(OpClass::FLOPS, Family::Kepler),
                   arch::cpi(OpCategory::FPIns32, Family::Kepler));
  EXPECT_DOUBLE_EQ(arch::class_cpi(OpClass::MEM, Family::Fermi),
                   arch::cpi(OpCategory::LdStIns, Family::Fermi));
  EXPECT_DOUBLE_EQ(arch::class_cpi(OpClass::CTRL, Family::Pascal),
                   arch::cpi(OpCategory::CtrlIns, Family::Pascal));
  EXPECT_DOUBLE_EQ(arch::class_cpi(OpClass::REG, Family::Maxwell),
                   arch::cpi(OpCategory::Regs, Family::Maxwell));
}

TEST(Throughput, NamesRoundTrip) {
  EXPECT_EQ(arch::category_name(OpCategory::FPIns32), "FPIns32");
  EXPECT_EQ(arch::category_name(OpCategory::Regs), "Regs");
  EXPECT_EQ(arch::class_name(OpClass::FLOPS), "FLOPS");
  EXPECT_EQ(arch::class_name(OpClass::REG), "REG");
}
