#include "arch/gpu_spec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace arch = gpustatic::arch;
using arch::Family;

TEST(GpuSpec, FourGpusInPaperOrder) {
  const auto gpus = arch::all_gpus();
  ASSERT_EQ(gpus.size(), 4u);
  EXPECT_EQ(gpus[0].name, "M2050");
  EXPECT_EQ(gpus[1].name, "K20");
  EXPECT_EQ(gpus[2].name, "M40");
  EXPECT_EQ(gpus[3].name, "P100");
}

TEST(GpuSpec, TableOneFermiColumn) {
  const auto& g = arch::gpu("M2050");
  EXPECT_EQ(g.family, Family::Fermi);
  EXPECT_DOUBLE_EQ(g.compute_capability, 2.0);
  EXPECT_EQ(g.multiprocessors, 14u);
  EXPECT_EQ(g.cuda_cores, 448u);
  EXPECT_EQ(g.threads_per_mp, 1536u);
  EXPECT_EQ(g.blocks_per_mp, 8u);
  EXPECT_EQ(g.warps_per_mp, 48u);
  EXPECT_EQ(g.regs_per_block, 32768u);
  EXPECT_EQ(g.reg_alloc_unit, 64u);
  EXPECT_EQ(g.regs_per_thread, 63u);
}

TEST(GpuSpec, TableOneKeplerColumn) {
  const auto& g = arch::gpu("K20");
  EXPECT_DOUBLE_EQ(g.compute_capability, 3.5);
  EXPECT_EQ(g.multiprocessors, 13u);
  EXPECT_EQ(g.cores_per_mp, 192u);
  EXPECT_EQ(g.threads_per_mp, 2048u);
  EXPECT_EQ(g.blocks_per_mp, 16u);
  EXPECT_EQ(g.warps_per_mp, 64u);
  EXPECT_EQ(g.regs_per_block, 65536u);
  EXPECT_EQ(g.regs_per_thread, 255u);
}

TEST(GpuSpec, TableOneMaxwellPascalColumns) {
  const auto& m = arch::gpu("M40");
  EXPECT_DOUBLE_EQ(m.compute_capability, 5.2);
  EXPECT_EQ(m.multiprocessors, 24u);
  EXPECT_EQ(m.blocks_per_mp, 32u);
  const auto& p = arch::gpu("P100");
  EXPECT_DOUBLE_EQ(p.compute_capability, 6.0);
  EXPECT_EQ(p.multiprocessors, 56u);
  EXPECT_EQ(p.cuda_cores, 3584u);
}

TEST(GpuSpec, InvariantsHoldForAllGpus) {
  for (const auto& g : arch::all_gpus()) {
    EXPECT_EQ(g.warp_size, 32u) << g.name;
    EXPECT_EQ(g.threads_per_warp, 32u) << g.name;
    EXPECT_EQ(g.threads_per_block, 1024u) << g.name;
    EXPECT_EQ(g.smem_per_block, 49152u) << g.name;
    EXPECT_EQ(g.cores_per_mp * g.multiprocessors, g.cuda_cores) << g.name;
    // Max warps * warp size == max threads per SM.
    EXPECT_EQ(g.warps_per_mp * g.warp_size, g.threads_per_mp) << g.name;
    // Shared memory per SM at least covers one full block allocation.
    EXPECT_GE(g.smem_per_mp, 49152u) << g.name;
  }
}

TEST(GpuSpec, LookupByFamilyNameCaseInsensitive) {
  EXPECT_EQ(arch::gpu("kepler").name, "K20");
  EXPECT_EQ(arch::gpu("FERMI").name, "M2050");
  EXPECT_EQ(arch::gpu("p100").name, "P100");
}

TEST(GpuSpec, LookupByFamilyEnum) {
  EXPECT_EQ(arch::gpu(Family::Maxwell).name, "M40");
}

TEST(GpuSpec, UnknownNameThrows) {
  EXPECT_THROW((void)arch::gpu("V100"), gpustatic::LookupError);
}

TEST(GpuSpec, FamilyNames) {
  EXPECT_EQ(arch::family_name(Family::Fermi), "Fermi");
  EXPECT_EQ(arch::family_letter(Family::Pascal), "P");
  EXPECT_EQ(arch::family_sm(Family::Kepler), "sm_35");
  EXPECT_EQ(arch::family_from_name("maxwell"), Family::Maxwell);
  EXPECT_EQ(arch::family_from_name("K"), Family::Kepler);
  EXPECT_THROW((void)arch::family_from_name("volta"), gpustatic::LookupError);
}
