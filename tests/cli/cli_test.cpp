#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "common/error.hpp"

using namespace gpustatic;  // NOLINT
using cli::Options;

namespace {

Options parse(std::initializer_list<const char*> args) {
  return cli::parse_args(std::vector<std::string>(args.begin(), args.end()));
}

std::string run(std::initializer_list<const char*> args,
                int expect_code = 0) {
  std::ostringstream out;
  const int code = cli::run_command(parse(args), out);
  EXPECT_EQ(code, expect_code);
  return out.str();
}

}  // namespace

// ---- argument parsing -------------------------------------------------------

TEST(CliParse, ParsesCommandKernelAndFlags) {
  const Options o = parse({"analyze", "atax", "-g", "P100", "-n", "256",
                           "--tc", "512", "--fast-math", "--uif", "3"});
  EXPECT_EQ(o.command, "analyze");
  EXPECT_EQ(o.kernel, "atax");
  EXPECT_EQ(o.gpu, "P100");
  EXPECT_EQ(o.n, 256);
  EXPECT_EQ(o.tc, 512);
  EXPECT_EQ(o.uif, 3);
  EXPECT_TRUE(o.fast_math);
}

TEST(CliParse, DefaultsAreSensible) {
  const Options o = parse({"suggest", "bicg"});
  EXPECT_EQ(o.gpu, "K20");
  EXPECT_EQ(o.n, 0);
  EXPECT_EQ(o.tc, 128);
  EXPECT_EQ(o.method, "rule");
  EXPECT_FALSE(o.fast_math);
}

TEST(CliParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse({}), Error);
  EXPECT_THROW((void)parse({"analyze"}), Error);           // missing kernel
  EXPECT_THROW((void)parse({"analyze", "--tc", "64"}), Error);
  EXPECT_THROW((void)parse({"gpus", "--bogus"}), Error);   // unknown flag
  EXPECT_THROW((void)parse({"tune", "atax", "--tc"}), Error);  // no value
  EXPECT_THROW((void)parse({"tune", "atax", "--tc", "abc"}), Error);
  EXPECT_THROW((void)parse({"tune", "atax", "--tc", "12x"}), Error);
}

TEST(CliParse, UnknownCommandFailsAtRun) {
  std::ostringstream out;
  EXPECT_THROW((void)cli::run_command(parse({"frobnicate"}), out), Error);
}

// ---- command smoke tests ------------------------------------------------------

TEST(CliRun, GpusPrintsTableOne) {
  const std::string out = run({"gpus"});
  for (const char* name : {"M2050", "K20", "M40", "P100"})
    EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(CliRun, HelpPrintsUsage) {
  const std::string out = run({"help"});
  EXPECT_NE(out.find("usage: gpustatic"), std::string::npos);
  EXPECT_NE(out.find("analyze"), std::string::npos);
}

TEST(CliRun, AnalyzeReportsStaticAnalysis) {
  const std::string out = run({"analyze", "atax", "-n", "64"});
  EXPECT_NE(out.find("Static analysis of 'atax'"), std::string::npos);
  EXPECT_NE(out.find("intensity"), std::string::npos);
  EXPECT_NE(out.find("occ"), std::string::npos);
}

TEST(CliRun, OccupancyRendersCalculatorPanels) {
  const std::string out =
      run({"occupancy", "-g", "M40", "--tc", "256", "--regs", "32"});
  EXPECT_NE(out.find("Occupancy calculator for M40"), std::string::npos);
  EXPECT_NE(out.find("Impact of varying block size"), std::string::npos);
}

TEST(CliRun, SuggestPrintsTableSevenRow) {
  const std::string out = run({"suggest", "matvec2d", "-n", "128"});
  EXPECT_NE(out.find("T* = {"), std::string::npos);
  EXPECT_NE(out.find("rule (intensity"), std::string::npos);
  EXPECT_NE(out.find("upper half"), std::string::npos);  // matvec2d > 4.0
}

TEST(CliRun, PredictPrintsScoreAndEstimate) {
  const std::string out = run({"predict", "bicg", "-n", "64"});
  EXPECT_NE(out.find("Eq. 6 static cost score"), std::string::npos);
  EXPECT_NE(out.find("analytic time estimate"), std::string::npos);
}

TEST(CliRun, DisasmEmitsVirtualIsa) {
  const std::string out = run({"disasm", "atax", "-n", "32"});
  EXPECT_NE(out.find(".kernel"), std::string::npos);
  EXPECT_NE(out.find("Used"), std::string::npos);  // ptxas-style info line
}

TEST(CliRun, ProfileReportsDynamicMetrics) {
  const std::string out =
      run({"profile", "atax", "-n", "48", "--tc", "64"});
  EXPECT_NE(out.find("dynamic profile"), std::string::npos);
  EXPECT_NE(out.find("reuse distance"), std::string::npos);
}

TEST(CliRun, TuneRuleBasedPrunesAndFindsBest) {
  const std::string out = run({"tune", "atax", "-n", "64"});
  EXPECT_NE(out.find("pruned"), std::string::npos);
  EXPECT_NE(out.find("best TC="), std::string::npos);
}

TEST(CliRun, TuneHybridHonorsBudget) {
  const std::string out = run(
      {"tune", "atax", "-n", "64", "--method", "hybrid", "--budget", "4"});
  EXPECT_NE(out.find("hybrid search (budget 4, 4 runs"), std::string::npos);
}

TEST(CliRun, TuneZeroBudgetHybridIsZeroRun) {
  const std::string out = run(
      {"tune", "atax", "-n", "64", "--method", "hybrid", "--budget", "0"});
  EXPECT_NE(out.find("zero-run recommendation"), std::string::npos);
}

TEST(CliRun, TuneUnknownMethodFails) {
  std::ostringstream out;
  EXPECT_THROW((void)cli::run_command(
                   parse({"tune", "atax", "--method", "magic"}), out),
               Error);
}

TEST(CliRun, TuneUnknownMethodErrorEnumeratesRegistry) {
  std::ostringstream out;
  try {
    (void)cli::run_command(parse({"tune", "atax", "--method", "magic"}),
                           out);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const char* name : {"exhaustive", "random", "anneal", "genetic",
                             "simplex", "static", "rule", "hybrid"})
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(CliRun, TuneMethodListEnumeratesRegistry) {
  // No kernel argument needed to list strategies.
  const std::string out = run({"tune", "--method", "list"});
  for (const char* name : {"exhaustive", "random", "anneal", "genetic",
                           "simplex", "static", "rule", "hybrid"})
    EXPECT_NE(out.find(std::string(name) + "\n"), std::string::npos)
        << name;
}

TEST(CliRun, TuneWithoutKernelStillFails) {
  std::ostringstream out;
  EXPECT_THROW((void)cli::run_command(parse({"tune", "--method", "random"}),
                                      out),
               Error);
}

TEST(CliRun, UsageListsRegisteredStrategies) {
  const std::string text = cli::usage();
  EXPECT_NE(text.find("anneal|exhaustive|genetic|hybrid|random|rule|"
                      "simplex|static"),
            std::string::npos);
}

TEST(CliParse, SeedReachesSearchOptions) {
  const Options o = parse({"tune", "atax", "--seed", "77"});
  EXPECT_EQ(o.seed, 77u);
  EXPECT_EQ(cli::to_search_options(o).seed, 77u);
  // Default plumbs through too.
  EXPECT_EQ(cli::to_search_options(parse({"tune", "atax"})).seed, 1234u);
}

TEST(CliRun, TuneSameSeedIsDeterministic) {
  const auto once = run({"tune", "atax", "-n", "64", "--method", "genetic",
                         "--seed", "5"});
  const auto twice = run({"tune", "atax", "-n", "64", "--method",
                          "genetic", "--seed", "5"});
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("genetic search"), std::string::npos);
}

// ---- tune-fleet ------------------------------------------------------------

namespace {

std::string fleet_temp_store(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

}  // namespace

TEST(CliParse, ParsesTuneFleetFlags) {
  const Options o =
      parse({"tune-fleet", "--store", "/tmp/x.store", "--gpu", "all",
             "--kernels", "atax,bicg", "--report", "json", "-n", "32"});
  EXPECT_EQ(o.command, "tune-fleet");
  EXPECT_EQ(o.store_path, "/tmp/x.store");
  EXPECT_EQ(o.gpu, "all");
  EXPECT_EQ(o.kernels, "atax,bicg");
  EXPECT_EQ(o.report, "json");
  EXPECT_EQ(o.n, 32);
}

TEST(CliRun, TuneFleetColdThenWarmStoreReportsZeroFreshRuns) {
  const std::string path = fleet_temp_store("cli_fleet_warm.store");
  const auto args = {"tune-fleet",  "--kernels", "atax,bicg",
                     "--store",     path.c_str(), "-n",
                     "32"};
  const std::string cold = run(args);
  EXPECT_NE(cold.find("0 warm hits"), std::string::npos) << cold;
  EXPECT_EQ(cold.find(" 0 fresh simulator runs"), std::string::npos)
      << cold;

  // Same request against the now-warm store: zero fresh evaluations,
  // same best variants.
  const std::string warm = run(args);
  EXPECT_NE(warm.find("0 fresh simulator runs"), std::string::npos)
      << warm;
  auto best_of = [](const std::string& out, const char* kernel) {
    const std::size_t row = out.find(kernel);
    EXPECT_NE(row, std::string::npos);
    const std::size_t tc = out.find("TC=", row);
    return out.substr(tc, out.find('|', tc) - tc);
  };
  EXPECT_EQ(best_of(cold, "atax"), best_of(warm, "atax"));
  EXPECT_EQ(best_of(cold, "bicg"), best_of(warm, "bicg"));
  std::remove(path.c_str());
}

TEST(CliRun, TuneFleetBestMatchesSingleKernelTune) {
  // The acceptance bar: a fleet row's best point is byte-identical to
  // the standalone `tune` command over the same kernel/GPU/size.
  const std::string single = run({"tune", "atax", "-n", "32"});
  const std::size_t at = single.find("best TC=");
  ASSERT_NE(at, std::string::npos);
  const std::string best = single.substr(
      at + 5, single.find(" -> ", at) - (at + 5));

  const std::string fleet =
      run({"tune-fleet", "--kernels", "atax", "-n", "32"});
  EXPECT_NE(fleet.find(best), std::string::npos)
      << "fleet best differs from single-kernel tune: " << best << "\n"
      << fleet;
}

TEST(CliRun, TuneFleetRendersJsonAndCsv) {
  const std::string json = run({"tune-fleet", "--kernels", "atax", "-n",
                                "32", "--report", "json"});
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"kernel\": \"atax\""), std::string::npos);
  EXPECT_NE(json.find("\"fresh_evaluations\""), std::string::npos);

  const std::string csv = run({"tune-fleet", "--kernels", "atax", "-n",
                               "32", "--report", "csv"});
  EXPECT_EQ(csv.rfind("kernel,gpu,n,method", 0), 0u);
  EXPECT_NE(csv.find("atax,K20,32,rule,TC="), std::string::npos);
}

TEST(CliRun, TuneFleetValidatesRequestUpFront) {
  std::ostringstream out;
  EXPECT_THROW((void)cli::run_command(
                   parse({"tune-fleet", "--report", "xml"}), out),
               Error);
  EXPECT_THROW((void)cli::run_command(
                   parse({"tune-fleet", "--method", "magic"}), out),
               Error);
  EXPECT_THROW((void)cli::run_command(
                   parse({"tune-fleet", "--kernels", "nope"}), out),
               Error);
  EXPECT_THROW((void)cli::run_command(
                   parse({"tune-fleet", "--gpu", "GTX9000"}), out),
               Error);
}

TEST(CliRun, TuneFleetWarnsOnTruncatedStoreAndRecovers) {
  const std::string path = fleet_temp_store("cli_fleet_trunc.store");
  (void)run({"tune-fleet", "--kernels", "atax", "--store", path.c_str(),
             "-n", "32"});
  // Truncate the store's final line, as a killed writer would.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  text.resize(text.size() - 20);
  {
    std::ofstream outf(path, std::ios::trunc);
    outf << text;
  }
  const std::string out = run({"tune-fleet", "--kernels", "atax",
                               "--store", path.c_str(), "-n", "32"});
  EXPECT_NE(out.find("warning:"), std::string::npos) << out;
  EXPECT_NE(out.find("truncated final line"), std::string::npos);
  std::remove(path.c_str());
}

// ---- source-file kernels ---------------------------------------------------------

TEST(CliRun, AnalyzesKernelFromSourceFile) {
  const std::string path = ::testing::TempDir() + "cli_kernel_test.gk";
  {
    std::ofstream f(path);
    f << "workload filedemo(N = 32);\n"
         "array y[N] init zero;\n"
         "stage s(t : N) {\n"
         "  float a = 1.0;\n"
         "  unroll for (j = 0; j < N; j++) { a += 1.0; }\n"
         "  y[t] = a;\n"
         "}\n";
  }
  const std::string out = run({"analyze", path.c_str()});
  EXPECT_NE(out.find("filedemo"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliRun, MissingSourceFileFails) {
  std::ostringstream out;
  EXPECT_THROW((void)cli::run_command(
                   parse({"analyze", "/nonexistent/kernel.gk"}), out),
               Error);
}

TEST(CliRun, TuneHonorsPerfTuningSpecFile) {
  const std::string path = ::testing::TempDir() + "cli_spec_test.orio";
  {
    std::ofstream f(path);
    f << "/*@ begin PerfTuning (\n"
         "  def performance_params {\n"
         "    param TC[] = range(64,257,64);\n"
         "    param BC[] = [24,96];\n"
         "    param UIF[] = range(1,3);\n"
         "    param PL[] = [48];\n"
         "    param CFLAGS[] = [''];\n"
         "  }\n"
         ") @*/\n";
  }
  const std::string out = run(
      {"tune", "atax", "-n", "64", "--spec", path.c_str()});
  // 4 TCs x 2 BCs x 2 UIFs = 16 variants before pruning.
  EXPECT_NE(out.find("of 16 variants"), std::string::npos) << out;
  std::remove(path.c_str());
}

TEST(CliRun, MissingSpecFileFails) {
  std::ostringstream out;
  EXPECT_THROW(
      (void)cli::run_command(
          parse({"tune", "atax", "--spec", "/nonexistent.orio"}), out),
      Error);
}

TEST(CliRun, ProfileReturnsNonZeroForUnlaunchableVariant) {
  std::ostringstream out;
  // TC=48 compiles but is not a warp multiple: the warp engine rejects it.
  const int code = cli::run_command(
      parse({"profile", "atax", "-n", "32", "--tc", "48"}), out);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.str().find("not launchable"), std::string::npos);
}

// ---- exit-code contract -----------------------------------------------------

namespace {

/// run_main with captured stdout/stderr; returns the exit code.
int main_code(std::initializer_list<const char*> args,
              std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int code = cli::run_main(
      std::vector<std::string>(args.begin(), args.end()), out, err);
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

}  // namespace

TEST(CliExitCodes, SuccessIsZero) {
  EXPECT_EQ(main_code({"gpus"}), cli::kExitOk);
  EXPECT_EQ(main_code({"--help"}), cli::kExitOk);
  EXPECT_EQ(main_code({"tune", "--method", "list"}), cli::kExitOk);
}

TEST(CliExitCodes, UsageMistakesAreTwo) {
  EXPECT_EQ(main_code({}), cli::kExitUsage);  // no command
  EXPECT_EQ(main_code({"frobnicate"}), cli::kExitUsage);
  EXPECT_EQ(main_code({"analyze", "atax", "--bogus"}), cli::kExitUsage);
  EXPECT_EQ(main_code({"analyze", "atax", "-n", "abc"}), cli::kExitUsage);
  EXPECT_EQ(main_code({"analyze", "atax", "-n"}), cli::kExitUsage);
  EXPECT_EQ(main_code({"analyze"}), cli::kExitUsage);  // missing kernel
  EXPECT_EQ(main_code({"tune"}), cli::kExitUsage);
  EXPECT_EQ(main_code({"tune", "atax", "--method", "bogus"}),
            cli::kExitUsage);
  EXPECT_EQ(main_code({"tune-fleet", "--report", "bogus"}),
            cli::kExitUsage);
}

TEST(CliExitCodes, CommandFailuresAreOne) {
  // The invocation is well-formed; the work itself fails.
  EXPECT_EQ(main_code({"tune", "nosuchkernel"}), cli::kExitError);
  EXPECT_EQ(main_code({"analyze", "/no/such/file.gk"}), cli::kExitError);
}

TEST(CliExitCodes, ErrorsRenderToStderrWithTheToolPrefix) {
  std::string err;
  EXPECT_EQ(main_code({"frobnicate"}, &err), cli::kExitUsage);
  EXPECT_EQ(err.rfind("gpustatic: ", 0), 0u) << err;
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliExitCodes, HelpDocumentsTheContract) {
  EXPECT_NE(cli::usage().find("exit codes:"), std::string::npos);
  EXPECT_NE(cli::usage().find("usage error"), std::string::npos);
}

TEST(CliExitCodes, UsageErrorIsAnErrorSubclassForCompatibility) {
  // Existing callers that catch Error keep working.
  EXPECT_THROW((void)cli::parse_args({"frobnicate", "--x"}), Error);
  EXPECT_THROW((void)cli::parse_args({}), cli::UsageError);
}

// ---- codegen backend selection ---------------------------------------------

TEST(CliParse, BackendFlagParsesAndDefaultsToPtx) {
  EXPECT_EQ(parse({"disasm", "atax"}).backend, "ptx");
  EXPECT_EQ(parse({"disasm", "atax", "--backend", "cref"}).backend, "cref");
}

TEST(CliRun, UnknownBackendIsAUsageErrorEnumeratingBackends) {
  for (auto args : {std::vector<std::string>{"disasm", "atax",
                                             "--backend", "nvvm"},
                    std::vector<std::string>{"tune", "atax",
                                             "--backend", "nvvm"}}) {
    std::ostringstream out;
    try {
      (void)cli::run_command(cli::parse_args(args), out);
      FAIL() << "expected UsageError";
    } catch (const cli::UsageError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("nvvm"), std::string::npos);
      EXPECT_NE(what.find("ptx"), std::string::npos);
      EXPECT_NE(what.find("cref"), std::string::npos);
    }
  }
}

TEST(CliRun, DisasmDefaultAndExplicitPtxAreByteIdentical) {
  const std::string def = run({"disasm", "atax", "-n", "64"});
  const std::string ptx =
      run({"disasm", "atax", "-n", "64", "--backend", "ptx"});
  EXPECT_EQ(def, ptx);
  EXPECT_NE(def.find(".kernel"), std::string::npos);
}

TEST(CliRun, DisasmCRefEmitsAnInstrumentedCProgram) {
  const std::string source =
      run({"disasm", "atax", "-n", "64", "--backend", "cref"});
  EXPECT_NE(source.find("int main("), std::string::npos);
  EXPECT_NE(source.find("cnt_0"), std::string::npos);
}

TEST(CliRun, UsageListsRegisteredBackends) {
  const std::string text = cli::usage();
  EXPECT_NE(text.find("--backend"), std::string::npos);
  EXPECT_NE(text.find("cref|ptx"), std::string::npos);
}
