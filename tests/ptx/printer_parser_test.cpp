#include <gtest/gtest.h>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "ptx/parser.hpp"
#include "ptx/printer.hpp"
#include "test_kernels.hpp"

namespace ptx = gpustatic::ptx;
using namespace gpustatic::ptx;  // NOLINT

namespace {

/// Structural equality check via re-printing: two kernels are equivalent
/// if they print identically.
void expect_round_trip(const Kernel& k) {
  const std::string text = to_string(k);
  const Kernel parsed = parse_kernel(text);
  EXPECT_EQ(to_string(parsed), text);
  EXPECT_EQ(parsed.name, k.name);
  EXPECT_EQ(parsed.params.size(), k.params.size());
  EXPECT_EQ(parsed.blocks.size(), k.blocks.size());
  EXPECT_EQ(parsed.instruction_count(), k.instruction_count());
  EXPECT_EQ(parsed.smem_static_bytes, k.smem_static_bytes);
}

}  // namespace

TEST(PrinterParser, LoopKernelRoundTrips) {
  expect_round_trip(fixtures::make_loop_kernel());
}

TEST(PrinterParser, DiamondKernelRoundTrips) {
  expect_round_trip(fixtures::make_diamond_kernel());
}

TEST(PrinterParser, SaxpyishKernelRoundTrips) {
  expect_round_trip(fixtures::make_saxpyish_kernel());
}

TEST(PrinterParser, PrintsGuards) {
  const Kernel k = fixtures::make_loop_kernel();
  const std::string text = to_string(k);
  EXPECT_NE(text.find("@!%p0 bra done;"), std::string::npos);
  EXPECT_NE(text.find("@%p1 bra loop;"), std::string::npos);
}

TEST(PrinterParser, PrintsHeaderAndParams) {
  const Kernel k = fixtures::make_saxpyish_kernel();
  const std::string text = to_string(k);
  EXPECT_NE(text.find(".kernel saxpyish"), std::string::npos);
  EXPECT_NE(text.find(".param .ptr.f32 x"), std::string::npos);
  EXPECT_NE(text.find(".smem 0"), std::string::npos);
}

TEST(PrinterParser, PrintsAccessHints) {
  const Kernel k = fixtures::make_saxpyish_kernel();
  const std::string text = to_string(k);
  EXPECT_NE(text.find("// stride=4"), std::string::npos);
}

TEST(PrinterParser, ParsesAccessHintBack) {
  const Kernel k = parse_kernel(R"(.kernel m (.param .ptr.f32 a)
.smem 0
{
entry:
  ld.param.s64 %rd0, [a];
  ld.global.f32 %f0, [%rd0+16];  // stride=128
  st.global.f32 [%rd0+0], %f0;  // stride=4 uniform
  exit;
}
)");
  const auto& body = k.blocks[0].body;
  EXPECT_EQ(body[1].access.lane_stride_bytes, 128);
  EXPECT_FALSE(body[1].access.uniform);
  EXPECT_EQ(body[1].offset, 16);
  EXPECT_EQ(body[2].access.lane_stride_bytes, 4);
  EXPECT_TRUE(body[2].access.uniform);
}

TEST(PrinterParser, FloatImmediatesAreExact) {
  Kernel k;
  k.name = "imm";
  const Reg f0{Type::F32, 0};
  BasicBlock entry{"entry", {}};
  // A value that does not round-trip through decimal text at low precision.
  entry.body.push_back(make_mov(f0, Operand::imm_f(0.1)));
  entry.body.push_back(make_exit());
  k.blocks = {entry};
  k.finalize();

  const Kernel parsed = parse_kernel(to_string(k));
  EXPECT_DOUBLE_EQ(parsed.blocks[0].body[0].srcs[0].imm_f(), 0.1);
}

TEST(PrinterParser, NegativeIntImmediates) {
  const Kernel k = parse_kernel(R"(.kernel m ()
.smem 0
{
entry:
  mov.s32 %r0, -42;
  exit;
}
)");
  EXPECT_EQ(k.blocks[0].body[0].srcs[0].imm_i(), -42);
}

TEST(PrinterParser, SpecialRegisters) {
  const Kernel k = parse_kernel(R"(.kernel m ()
.smem 0
{
entry:
  mov.s32 %r0, %tid.x;
  mov.s32 %r1, %ntid.x;
  mov.s32 %r2, %ctaid.x;
  mov.s32 %r3, %nctaid.x;
  exit;
}
)");
  EXPECT_EQ(k.blocks[0].body[0].srcs[0].special(), SpecialReg::TidX);
  EXPECT_EQ(k.blocks[0].body[1].srcs[0].special(), SpecialReg::NTidX);
  EXPECT_EQ(k.blocks[0].body[2].srcs[0].special(), SpecialReg::CTAidX);
  EXPECT_EQ(k.blocks[0].body[3].srcs[0].special(), SpecialReg::NCTAidX);
}

TEST(PrinterParser, SetpVariants) {
  const Kernel k = parse_kernel(R"(.kernel m ()
.smem 0
{
entry:
  setp.ge.f32 %p0, %f1, %f2;
  setp.ne.s64 %p1, %rd1, 0;
  exit;
}
)");
  EXPECT_EQ(k.blocks[0].body[0].cmp, CmpOp::GE);
  EXPECT_EQ(k.blocks[0].body[0].type, Type::F32);
  EXPECT_EQ(k.blocks[0].body[1].cmp, CmpOp::NE);
  EXPECT_EQ(k.blocks[0].body[1].type, Type::I64);
}

TEST(PrinterParser, MulHiRoundTrips) {
  const Kernel k = parse_kernel(R"(.kernel m ()
.smem 0
{
entry:
  mul.hi.s32 %r0, %r1, %r2;
  exit;
}
)");
  EXPECT_EQ(k.blocks[0].body[0].op, Opcode::IMULHI);
  expect_round_trip(k);
}

TEST(PrinterParser, AtomAddParses) {
  const Kernel k = parse_kernel(R"(.kernel m (.param .ptr.f32 y)
.smem 0
{
entry:
  ld.param.s64 %rd0, [y];
  atom.add.global.f32 [%rd0+8], %f0;  // stride=0 uniform
  exit;
}
)");
  EXPECT_EQ(k.blocks[0].body[1].op, Opcode::ATOM_ADD);
  EXPECT_EQ(k.blocks[0].body[1].offset, 8);
}

TEST(PrinterParser, CommentsAndBlankLinesIgnored) {
  const Kernel k = parse_kernel(R"(
// leading comment
.kernel m ()
.smem 0
{
entry:
  // a comment line
  mov.s32 %r0, 1;

  exit;
}
)");
  EXPECT_EQ(k.instruction_count(), 2u);
}

TEST(PrinterParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_kernel(".kernel m ()\n.smem 0\n{\nentry:\n  bogus.s32 %r0;\n}\n");
    FAIL() << "expected ParseError";
  } catch (const gpustatic::ParseError& e) {
    EXPECT_EQ(e.line(), 5u);
  }
}

TEST(PrinterParser, UnknownSymbolFails) {
  EXPECT_THROW((void)parse_kernel(R"(.kernel m ()
.smem 0
{
entry:
  mov.s32 %r0, whatever;
  exit;
}
)"),
               gpustatic::ParseError);
}

TEST(PrinterParser, MissingBraceFails) {
  EXPECT_THROW((void)parse_kernel(".kernel m ()\n.smem 0\n{\nentry:\n  exit;\n"),
               gpustatic::ParseError);
}

TEST(PrinterParser, SmemBytesParsed) {
  const Kernel k = parse_kernel(R"(.kernel m ()
.smem 2048
{
entry:
  exit;
}
)");
  EXPECT_EQ(k.smem_static_bytes, 2048u);
}

// Golden round-trip over the real kernel library: every compiled stage
// of every registry kernel (paper + extended suites) must survive
// print -> parse -> print byte-identically, under the default variant
// and a codegen-stressing one (unrolled, streamed, fast-math).
TEST(PrinterParser, EveryLibraryKernelRoundTripsByteIdentically) {
  namespace arch = gpustatic::arch;
  namespace codegen = gpustatic::codegen;
  namespace kernels = gpustatic::kernels;

  std::vector<std::string> names;
  for (const kernels::KernelInfo& k : kernels::all_kernels())
    names.emplace_back(k.name);
  for (const kernels::KernelInfo& k : kernels::extended_kernels())
    names.emplace_back(k.name);
  ASSERT_FALSE(names.empty());

  codegen::TuningParams stressed;
  stressed.unroll = 2;
  stressed.stream_chunk = 2;
  stressed.fast_math = true;

  const arch::GpuSpec& gpu = arch::gpu("K20");
  for (const std::string& name : names) {
    const auto wl = kernels::make_workload(name, 64);
    for (const codegen::TuningParams& p :
         {codegen::TuningParams{}, stressed}) {
      const codegen::LoweredWorkload lw =
          codegen::Compiler(gpu, p).compile(wl);
      for (const codegen::LoweredStage& st : lw.stages) {
        const std::string text = to_string(st.kernel);
        const Kernel parsed = parse_kernel(text);
        EXPECT_EQ(to_string(parsed), text)
            << name << " stage '" << st.kernel.name << "' variant "
            << p.to_string();
      }
    }
  }
}
