#include "ptx/cfg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <algorithm>

#include "test_kernels.hpp"

using namespace gpustatic::ptx;  // NOLINT

namespace {

bool has_edge(const Cfg& cfg, std::int32_t from, std::int32_t to) {
  const auto& s = cfg.successors(from);
  return std::find(s.begin(), s.end(), to) != s.end();
}

}  // namespace

TEST(Cfg, LoopKernelEdges) {
  const Kernel k = fixtures::make_loop_kernel();
  const Cfg cfg(k);
  // entry(0) -> loop(1) fallthrough, entry -> done(2) guarded branch.
  EXPECT_TRUE(has_edge(cfg, 0, 1));
  EXPECT_TRUE(has_edge(cfg, 0, 2));
  // loop -> loop back edge, loop -> done fallthrough.
  EXPECT_TRUE(has_edge(cfg, 1, 1));
  EXPECT_TRUE(has_edge(cfg, 1, 2));
  EXPECT_TRUE(cfg.successors(2).empty());
}

TEST(Cfg, LoopKernelPredecessors) {
  const Kernel k = fixtures::make_loop_kernel();
  const Cfg cfg(k);
  const auto& preds_done = cfg.predecessors(2);
  EXPECT_EQ(preds_done.size(), 2u);
  const auto& preds_loop = cfg.predecessors(1);
  EXPECT_EQ(preds_loop.size(), 2u);  // entry + itself
}

TEST(Cfg, RpoStartsAtEntryAndCoversAll) {
  const Kernel k = fixtures::make_diamond_kernel();
  const Cfg cfg(k);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo()[0], 0);
}

TEST(Cfg, DiamondDominators) {
  const Kernel k = fixtures::make_diamond_kernel();
  const Cfg cfg(k);
  // entry=0, then=1, else=2, join=3
  EXPECT_EQ(cfg.idom(0), 0);
  EXPECT_EQ(cfg.idom(1), 0);
  EXPECT_EQ(cfg.idom(2), 0);
  EXPECT_EQ(cfg.idom(3), 0);  // join's idom is entry, not a branch arm
  EXPECT_TRUE(cfg.dominates(0, 3));
  EXPECT_FALSE(cfg.dominates(1, 3));
}

TEST(Cfg, DiamondPostDominators) {
  const Kernel k = fixtures::make_diamond_kernel();
  const Cfg cfg(k);
  // join (3) post-dominates both arms and the entry: it is the
  // reconvergence point for the divergent branch in entry.
  EXPECT_EQ(cfg.ipdom(1), 3);
  EXPECT_EQ(cfg.ipdom(2), 3);
  EXPECT_EQ(cfg.ipdom(0), 3);
  EXPECT_TRUE(cfg.post_dominates(3, 0));
  EXPECT_TRUE(cfg.post_dominates(3, 1));
  EXPECT_FALSE(cfg.post_dominates(1, 0));
}

TEST(Cfg, LoopDetection) {
  const Kernel k = fixtures::make_loop_kernel();
  const Cfg cfg(k);
  ASSERT_EQ(cfg.loops().size(), 1u);
  const auto& loop = cfg.loops()[0];
  EXPECT_EQ(loop.header, 1);
  EXPECT_EQ(loop.latch, 1);
  EXPECT_EQ(loop.depth, 1);
  ASSERT_EQ(loop.blocks.size(), 1u);
  EXPECT_EQ(loop.blocks[0], 1);
}

TEST(Cfg, LoopDepths) {
  const Kernel k = fixtures::make_loop_kernel();
  const Cfg cfg(k);
  EXPECT_EQ(cfg.loop_depth(0), 0);
  EXPECT_EQ(cfg.loop_depth(1), 1);
  EXPECT_EQ(cfg.loop_depth(2), 0);
}

TEST(Cfg, BackEdgeDetection) {
  const Kernel k = fixtures::make_loop_kernel();
  const Cfg cfg(k);
  EXPECT_TRUE(cfg.is_back_edge(1, 1));
  EXPECT_FALSE(cfg.is_back_edge(0, 1));
  EXPECT_FALSE(cfg.is_back_edge(1, 2));
}

TEST(Cfg, DiamondHasNoLoops) {
  const Kernel k = fixtures::make_diamond_kernel();
  const Cfg cfg(k);
  EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, NestedLoopDepths) {
  // Build: entry -> outer_hdr -> inner_hdr -> inner_latch(back to inner)
  //        inner exit -> outer_latch (back to outer) -> done
  Kernel k;
  k.name = "nested";
  const Reg r0{Type::I32, 0}, r1{Type::I32, 1};
  const Reg p0{Type::Pred, 0}, p1{Type::Pred, 1};

  BasicBlock entry{"entry", {}};
  entry.body.push_back(make_mov(r0, Operand::imm_i(0)));

  BasicBlock outer{"outer", {}};
  outer.body.push_back(make_mov(r1, Operand::imm_i(0)));

  BasicBlock inner{"inner", {}};
  inner.body.push_back(
      make_binary(Opcode::IADD, r1, Operand(r1), Operand::imm_i(1)));
  inner.body.push_back(
      make_setp(CmpOp::LT, p1, Operand(r1), Operand::imm_i(8), Type::I32));
  inner.body.push_back(make_bra_if(p1, false, "inner"));

  BasicBlock outer_latch{"outer_latch", {}};
  outer_latch.body.push_back(
      make_binary(Opcode::IADD, r0, Operand(r0), Operand::imm_i(1)));
  outer_latch.body.push_back(
      make_setp(CmpOp::LT, p0, Operand(r0), Operand::imm_i(4), Type::I32));
  outer_latch.body.push_back(make_bra_if(p0, false, "outer"));

  BasicBlock done{"done", {make_exit()}};

  k.blocks = {entry, outer, inner, outer_latch, done};
  k.finalize();

  const Cfg cfg(k);
  ASSERT_EQ(cfg.loops().size(), 2u);
  EXPECT_EQ(cfg.loop_depth(k.block_index("inner")), 2);
  EXPECT_EQ(cfg.loop_depth(k.block_index("outer")), 1);
  EXPECT_EQ(cfg.loop_depth(k.block_index("outer_latch")), 1);
  EXPECT_EQ(cfg.loop_depth(k.block_index("done")), 0);
  // Outer loop body contains the inner loop's blocks.
  const auto& outer_loop = cfg.loops()[0];
  EXPECT_EQ(outer_loop.depth, 1);
  EXPECT_EQ(outer_loop.blocks.size(), 3u);  // outer, inner, outer_latch
}

TEST(Cfg, RequiresFinalizedKernel) {
  Kernel k;
  k.name = "raw";
  k.blocks = {BasicBlock{"a", {make_exit()}}};
  EXPECT_THROW(Cfg cfg(k), gpustatic::Error);
}

TEST(Cfg, StraightLineIpdomChain) {
  const Kernel k = fixtures::make_saxpyish_kernel();
  const Cfg cfg(k);
  // Single block: its ipdom is the virtual exit (encoded as num_blocks()).
  EXPECT_EQ(cfg.ipdom(0), static_cast<std::int32_t>(cfg.num_blocks()));
}
