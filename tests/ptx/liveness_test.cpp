#include "ptx/liveness.hpp"

#include <gtest/gtest.h>

#include "test_kernels.hpp"

using namespace gpustatic::ptx;  // NOLINT

TEST(Liveness, StraightLineDemand) {
  const Kernel k = fixtures::make_saxpyish_kernel();
  const RegisterDemand d = analyze_register_demand(k);
  // Live at peak: rd0, rd1 (2 slots each), r0, rd2... — well above ABI
  // floor, well below anything dramatic.
  EXPECT_GE(d.regs_per_thread, 6u + kAbiReserved);
  EXPECT_LE(d.regs_per_thread, 16u);
  EXPECT_EQ(d.preds_per_thread, 0u);
}

TEST(Liveness, LoopKernelKeepsLoopCarriedValuesLive) {
  const Kernel k = fixtures::make_loop_kernel();
  const RegisterDemand d = analyze_register_demand(k);
  // r1 (bound), r2 (counter), f0 (accumulator) + r0 early = 3-4 live
  // 32-bit slots at peak.
  EXPECT_GE(d.regs_per_thread, 3u + kAbiReserved);
  EXPECT_LE(d.regs_per_thread, 8u);
  EXPECT_GE(d.preds_per_thread, 1u);
}

TEST(Liveness, DeadCodeDoesNotRaiseDemand) {
  // Write 8 registers that are never read: peak live is ~0 beyond ABI.
  Kernel k;
  k.name = "dead";
  BasicBlock entry{"entry", {}};
  for (int i = 0; i < 8; ++i)
    entry.body.push_back(make_mov(Reg{Type::F32, static_cast<uint16_t>(i)},
                                  Operand::imm_f(1.0)));
  entry.body.push_back(make_exit());
  k.blocks = {entry};
  k.finalize();
  const RegisterDemand d = analyze_register_demand(k);
  EXPECT_LE(d.regs_per_thread, 1u + kAbiReserved);
}

TEST(Liveness, OverlappingLiveRangesSum) {
  // Chain: load 8 values, then consume them all in one reduction —
  // all 8 must be simultaneously live.
  Kernel k;
  k.name = "wide";
  BasicBlock entry{"entry", {}};
  const Reg acc{Type::F32, 100};
  entry.body.push_back(make_mov(acc, Operand::imm_f(0.0)));
  for (int i = 0; i < 8; ++i)
    entry.body.push_back(make_mov(Reg{Type::F32, static_cast<uint16_t>(i)},
                                  Operand::imm_f(double(i))));
  for (int i = 0; i < 8; ++i)
    entry.body.push_back(make_binary(
        Opcode::FADD, acc, Operand(acc),
        Operand(Reg{Type::F32, static_cast<uint16_t>(i)})));
  entry.body.push_back(make_exit());
  k.blocks = {entry};
  k.finalize();
  const RegisterDemand d = analyze_register_demand(k);
  EXPECT_GE(d.regs_per_thread, 9u);  // acc + 8 temps
}

TEST(Liveness, WideTypesCostTwoSlots) {
  Kernel k;
  k.name = "wide64";
  BasicBlock entry{"entry", {}};
  const Reg acc{Type::F64, 50};
  entry.body.push_back(make_mov(acc, Operand::imm_f(0.0)));
  for (int i = 0; i < 4; ++i)
    entry.body.push_back(make_mov(Reg{Type::F64, static_cast<uint16_t>(i)},
                                  Operand::imm_f(double(i))));
  for (int i = 0; i < 4; ++i)
    entry.body.push_back(make_binary(
        Opcode::FADD, acc, Operand(acc),
        Operand(Reg{Type::F64, static_cast<uint16_t>(i)})));
  entry.body.push_back(make_exit());
  k.blocks = {entry};
  k.finalize();
  const RegisterDemand d = analyze_register_demand(k);
  // 5 doubles live at once = 10 slots (+ABI).
  EXPECT_GE(d.regs_per_thread, 10u + kAbiReserved);
}

TEST(Liveness, GuardedDefKeepsOldValueLive) {
  // @p mov f0, 1.0 then read f0: f0's prior value must stay live across
  // the guarded write (inactive lanes keep it).
  Kernel k;
  k.name = "guarded";
  const Reg f0{Type::F32, 0}, f1{Type::F32, 1};
  const Reg p0{Type::Pred, 0};
  BasicBlock entry{"entry", {}};
  entry.body.push_back(make_mov(f0, Operand::imm_f(7.0)));
  entry.body.push_back(make_setp(CmpOp::LT, p0,
                                 Operand::special(SpecialReg::TidX),
                                 Operand::imm_i(16), Type::I32));
  Instruction guarded_mov = make_mov(f0, Operand::imm_f(1.0));
  guarded_mov.guard = Guard{p0, false};
  entry.body.push_back(guarded_mov);
  entry.body.push_back(make_binary(Opcode::FADD, f1, Operand(f0),
                                   Operand::imm_f(1.0)));
  entry.body.push_back(make_exit());
  k.blocks = {entry};
  k.finalize();
  const RegisterDemand d = analyze_register_demand(k);
  EXPECT_GE(d.preds_per_thread, 1u);
  EXPECT_GE(d.regs_per_thread, 2u);
}

TEST(Liveness, DemandGrowsWithUnrolledBodies) {
  // Property: replicating independent work k times grows register demand
  // monotonically (the basis for unroll -> register pressure modeling).
  auto make_unrolled = [](int copies) {
    Kernel k;
    k.name = "unrolled";
    BasicBlock entry{"entry", {}};
    const Reg acc{Type::F32, 200};
    entry.body.push_back(make_mov(acc, Operand::imm_f(0.0)));
    for (int u = 0; u < copies; ++u) {
      const Reg t{Type::F32, static_cast<uint16_t>(u)};
      entry.body.push_back(make_mov(t, Operand::imm_f(double(u))));
    }
    for (int u = 0; u < copies; ++u) {
      const Reg t{Type::F32, static_cast<uint16_t>(u)};
      entry.body.push_back(
          make_binary(Opcode::FADD, acc, Operand(acc), Operand(t)));
    }
    entry.body.push_back(make_exit());
    k.blocks = {entry};
    k.finalize();
    return analyze_register_demand(k).regs_per_thread;
  };
  const auto d1 = make_unrolled(1);
  const auto d2 = make_unrolled(2);
  const auto d4 = make_unrolled(4);
  EXPECT_LE(d1, d2);
  EXPECT_LE(d2, d4);
  EXPECT_EQ(d4 - d1, 3u);
}
