#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ptx/kernel.hpp"
#include "test_kernels.hpp"

namespace ptx = gpustatic::ptx;
using gpustatic::arch::OpCategory;
using gpustatic::arch::OpClass;
using namespace gpustatic::ptx;  // NOLINT

TEST(Ir, FinalizeResolvesBranchTargets) {
  const Kernel k = fixtures::make_loop_kernel();
  EXPECT_TRUE(k.finalized());
  const auto& entry = k.blocks[0];
  EXPECT_EQ(entry.body.back().target_block, k.block_index("done"));
  const auto& loop = k.blocks[1];
  EXPECT_EQ(loop.body.back().target_block, k.block_index("loop"));
}

TEST(Ir, BlockIndexUnknownLabel) {
  const Kernel k = fixtures::make_loop_kernel();
  EXPECT_EQ(k.block_index("nope"), -1);
}

TEST(Ir, DuplicateLabelThrows) {
  Kernel k;
  k.name = "dup";
  BasicBlock a{"a", {make_exit()}};
  k.blocks = {a, a};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, UnknownBranchTargetThrows) {
  Kernel k;
  k.name = "bad";
  BasicBlock a{"a", {make_bra("nowhere")}};
  k.blocks = {a};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, EmptyBlockThrows) {
  Kernel k;
  k.name = "empty";
  k.blocks = {BasicBlock{"a", {}}};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, TerminatorMustBeLast) {
  Kernel k;
  k.name = "term";
  BasicBlock a{"a", {}};
  a.body.push_back(make_exit());
  a.body.push_back(make_mov(Reg{Type::I32, 0}, Operand::imm_i(1)));
  k.blocks = {a};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, LastBlockMustNotFallThrough) {
  Kernel k;
  k.name = "fall";
  BasicBlock a{"a", {make_mov(Reg{Type::I32, 0}, Operand::imm_i(1))}};
  k.blocks = {a};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, InstructionCount) {
  const Kernel k = fixtures::make_loop_kernel();
  EXPECT_EQ(k.instruction_count(), 6u + 4u + 1u);
}

TEST(Ir, MaxRegIndexPerClass) {
  const Kernel k = fixtures::make_loop_kernel();
  EXPECT_EQ(k.max_reg_index(Type::I32), 3u);   // r0..r2
  EXPECT_EQ(k.max_reg_index(Type::F32), 1u);   // f0
  EXPECT_EQ(k.max_reg_index(Type::Pred), 2u);  // p0, p1
  EXPECT_EQ(k.max_reg_index(Type::F64), 0u);
}

TEST(Ir, CategoryMappingFloat) {
  Instruction fadd = make_binary(Opcode::FADD, Reg{Type::F32, 0},
                                 Operand::imm_f(0), Operand::imm_f(0));
  EXPECT_EQ(fadd.category(), OpCategory::FPIns32);
  EXPECT_EQ(fadd.op_class(), OpClass::FLOPS);

  Instruction dadd = make_binary(Opcode::FADD, Reg{Type::F64, 0},
                                 Operand::imm_f(0), Operand::imm_f(0));
  EXPECT_EQ(dadd.category(), OpCategory::FPIns64);
}

TEST(Ir, CategoryMappingIntAndLogic) {
  Instruction add = make_binary(Opcode::IADD, Reg{Type::I32, 0},
                                Operand::imm_i(0), Operand::imm_i(0));
  EXPECT_EQ(add.category(), OpCategory::IntAdd32);
  EXPECT_EQ(add.op_class(), OpClass::FLOPS);

  Instruction andi = make_binary(Opcode::AND, Reg{Type::I32, 0},
                                 Operand::imm_i(0), Operand::imm_i(0));
  EXPECT_EQ(andi.category(), OpCategory::Regs);
  EXPECT_EQ(andi.op_class(), OpClass::REG);

  Instruction mov = make_mov(Reg{Type::I32, 0}, Operand::imm_i(0));
  EXPECT_EQ(mov.category(), OpCategory::MoveIns);
  EXPECT_EQ(mov.op_class(), OpClass::CTRL);
}

TEST(Ir, CategoryMappingMemoryAndControl) {
  Instruction ld = make_ld(MemSpace::Global, Reg{Type::F32, 0},
                           Reg{Type::I64, 0}, 0, {});
  EXPECT_EQ(ld.category(), OpCategory::LdStIns);
  EXPECT_EQ(ld.op_class(), OpClass::MEM);

  Instruction bra = make_bra("x");
  EXPECT_EQ(bra.category(), OpCategory::CtrlIns);
  Instruction bar = make_bar();
  EXPECT_EQ(bar.category(), OpCategory::CtrlIns);

  Instruction setp = make_setp(CmpOp::LT, Reg{Type::Pred, 0},
                               Operand::imm_i(0), Operand::imm_i(1),
                               Type::I32);
  EXPECT_EQ(setp.category(), OpCategory::PredIns);
  EXPECT_EQ(setp.op_class(), OpClass::CTRL);
}

TEST(Ir, CategoryMappingConversions) {
  Instruction narrow = make_cvt(Reg{Type::F32, 0}, Reg{Type::I32, 0});
  EXPECT_EQ(narrow.category(), OpCategory::Conv32);
  Instruction widen = make_cvt(Reg{Type::I64, 0}, Reg{Type::I32, 0});
  EXPECT_EQ(widen.category(), OpCategory::Conv64);
  Instruction f64cvt = make_cvt(Reg{Type::F32, 0}, Reg{Type::F64, 0});
  EXPECT_EQ(f64cvt.category(), OpCategory::Conv64);
}

TEST(Ir, CategoryMappingSpecialFunctions) {
  for (const Opcode op : {Opcode::RCP, Opcode::RSQRT, Opcode::SQRT,
                          Opcode::EX2, Opcode::LG2, Opcode::SIN,
                          Opcode::COS}) {
    Instruction i = make_unary(op, Reg{Type::F32, 0}, Operand::imm_f(1.0));
    EXPECT_EQ(i.category(), OpCategory::LogSinCos);
  }
}

TEST(Ir, RegReadsWritesCounting) {
  const Reg f0{Type::F32, 0}, f1{Type::F32, 1}, f2{Type::F32, 2};
  Instruction fma =
      make_ternary(Opcode::FFMA, f0, Operand(f1), Operand(f2), Operand(f0));
  EXPECT_EQ(fma.reg_reads(), 3u);
  EXPECT_EQ(fma.reg_writes(), 1u);

  Instruction guarded = fma;
  guarded.guard = Guard{Reg{Type::Pred, 0}, false};
  EXPECT_EQ(guarded.reg_reads(), 4u);  // guard counts as a read

  Instruction movimm = make_mov(f0, Operand::imm_f(3.0));
  EXPECT_EQ(movimm.reg_reads(), 0u);
  EXPECT_EQ(movimm.reg_writes(), 1u);
}

TEST(Ir, GuardMustBePredicate) {
  Kernel k;
  k.name = "badguard";
  Instruction i = make_mov(Reg{Type::I32, 0}, Operand::imm_i(1));
  i.guard = Guard{Reg{Type::I32, 5}, false};
  BasicBlock a{"a", {i, make_exit()}};
  k.blocks = {a};
  EXPECT_THROW(k.finalize(), gpustatic::Error);
}

TEST(Ir, ForEachInstructionVisitsAll) {
  const Kernel k = fixtures::make_diamond_kernel();
  std::size_t n = 0;
  k.for_each_instruction([&](const Instruction&) { ++n; });
  EXPECT_EQ(n, k.instruction_count());
}
