#pragma once

// Hand-built IR kernels shared by the ptx test suites.

#include "ptx/kernel.hpp"

namespace gpustatic::ptx::fixtures {

/// A simple counted loop:
///
/// entry:   %r0 = tid; %r1 = n (param 1); %r2 = 0; setp p0 = r0 < r1;
///          @!p0 bra done;
/// loop:    %f0 += 1.0; %r2 += 1; setp p1 = r2 < r1; @p1 bra loop;
/// done:    exit;
inline Kernel make_loop_kernel() {
  Kernel k;
  k.name = "loop_kernel";
  k.params = {{"out", Type::F32, true}, {"n", Type::I32, false}};

  const Reg r0{Type::I32, 0}, r1{Type::I32, 1}, r2{Type::I32, 2};
  const Reg f0{Type::F32, 0};
  const Reg p0{Type::Pred, 0}, p1{Type::Pred, 1};

  BasicBlock entry{"entry", {}};
  entry.body.push_back(make_mov(r0, Operand::special(SpecialReg::TidX)));
  entry.body.push_back(make_ld_param(r1, 1));
  entry.body.push_back(make_mov(r2, Operand::imm_i(0)));
  entry.body.push_back(make_mov(f0, Operand::imm_f(0.0)));
  entry.body.push_back(
      make_setp(CmpOp::LT, p0, Operand(r0), Operand(r1), Type::I32));
  entry.body.push_back(make_bra_if(p0, /*negated=*/true, "done"));

  BasicBlock loop{"loop", {}};
  loop.body.push_back(
      make_binary(Opcode::FADD, f0, Operand(f0), Operand::imm_f(1.0)));
  loop.body.push_back(
      make_binary(Opcode::IADD, r2, Operand(r2), Operand::imm_i(1)));
  loop.body.push_back(
      make_setp(CmpOp::LT, p1, Operand(r2), Operand(r1), Type::I32));
  loop.body.push_back(make_bra_if(p1, /*negated=*/false, "loop"));

  BasicBlock done{"done", {}};
  done.body.push_back(make_exit());

  k.blocks = {entry, loop, done};
  k.finalize();
  return k;
}

/// Diamond control flow (if/else):
///
/// entry: setp p0 = tid < 16; @!p0 bra else_bb;
/// then_bb: %f0 = f0 + 1.0; bra join;
/// else_bb: %f0 = f0 * 2.0;
/// join: exit;
inline Kernel make_diamond_kernel() {
  Kernel k;
  k.name = "diamond";
  k.params = {{"out", Type::F32, true}};

  const Reg r0{Type::I32, 0};
  const Reg f0{Type::F32, 0};
  const Reg p0{Type::Pred, 0};

  BasicBlock entry{"entry", {}};
  entry.body.push_back(make_mov(r0, Operand::special(SpecialReg::TidX)));
  entry.body.push_back(make_mov(f0, Operand::imm_f(1.0)));
  entry.body.push_back(
      make_setp(CmpOp::LT, p0, Operand(r0), Operand::imm_i(16), Type::I32));
  entry.body.push_back(make_bra_if(p0, true, "else_bb"));

  BasicBlock then_bb{"then_bb", {}};
  then_bb.body.push_back(
      make_binary(Opcode::FADD, f0, Operand(f0), Operand::imm_f(1.0)));
  then_bb.body.push_back(make_bra("join"));

  BasicBlock else_bb{"else_bb", {}};
  else_bb.body.push_back(
      make_binary(Opcode::FMUL, f0, Operand(f0), Operand::imm_f(2.0)));

  BasicBlock join{"join", {}};
  join.body.push_back(make_exit());

  k.blocks = {entry, then_bb, else_bb, join};
  k.finalize();
  return k;
}

/// Straight-line kernel exercising memory + many operand kinds; stores
/// (x[i] * 2 + 1) to out[i].
inline Kernel make_saxpyish_kernel() {
  Kernel k;
  k.name = "saxpyish";
  k.params = {{"x", Type::F32, true}, {"out", Type::F32, true}};

  const Reg r0{Type::I32, 0};
  const Reg rd0{Type::I64, 0}, rd1{Type::I64, 1}, rd2{Type::I64, 2},
      rd3{Type::I64, 3};
  const Reg f0{Type::F32, 0}, f1{Type::F32, 1};

  BasicBlock entry{"entry", {}};
  entry.body.push_back(make_ld_param(rd0, 0));
  entry.body.push_back(make_ld_param(rd1, 1));
  entry.body.push_back(make_mov(r0, Operand::special(SpecialReg::TidX)));
  // rd2 = rd0 + 4*r0 (widening mad)
  entry.body.push_back(make_cvt(rd2, r0));
  entry.body.push_back(make_ternary(Opcode::IMAD, rd2, Operand(rd2),
                                    Operand::imm_i(4), Operand(rd0)));
  entry.body.push_back(
      make_ld(MemSpace::Global, f0, rd2, 0, AccessHint{4, false}));
  entry.body.push_back(make_ternary(Opcode::FFMA, f1, Operand(f0),
                                    Operand::imm_f(2.0),
                                    Operand::imm_f(1.0)));
  entry.body.push_back(make_cvt(rd3, r0));
  entry.body.push_back(make_ternary(Opcode::IMAD, rd3, Operand(rd3),
                                    Operand::imm_i(4), Operand(rd1)));
  entry.body.push_back(make_st(MemSpace::Global, rd3, Operand(f1), 0,
                               AccessHint{4, false}));
  entry.body.push_back(make_exit());

  k.blocks = {entry};
  k.finalize();
  return k;
}

}  // namespace gpustatic::ptx::fixtures
