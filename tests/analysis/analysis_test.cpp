#include <gtest/gtest.h>

#include "analysis/divergence.hpp"
#include "analysis/mix.hpp"
#include "analysis/predictor.hpp"
#include "codegen/compiler.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

namespace {

codegen::LoweredWorkload compile(const std::string& name, std::int64_t n,
                                 codegen::TuningParams p = {}) {
  const codegen::Compiler c(arch::gpu("K20"), p);
  return c.compile(kernels::make_workload(name, n));
}

}  // namespace

TEST(Mix, IntensityOrderingMatchesPaperThreshold) {
  // bicg < atax <= 4.0 < matvec2d, ex14fj (the rule's decision inputs).
  auto intensity = [&](const char* k, std::int64_t n) {
    const auto lw = compile(k, n);
    sim::Counts w;
    for (const auto& st : lw.stages)
      w += analysis::analyze_mix(st.kernel).weighted;
    return w.intensity();
  };
  const double i_atax = intensity("atax", 256);
  const double i_bicg = intensity("bicg", 256);
  const double i_ex = intensity("ex14fj", 32);
  const double i_mv = intensity("matvec2d", 256);
  EXPECT_LT(i_bicg, i_atax);
  EXPECT_LE(i_atax, 4.0);
  EXPECT_GT(i_mv, 4.0);
  EXPECT_GT(i_ex, 4.0);
}

TEST(Mix, FlatCountsMatchKernelSize) {
  const auto lw = compile("atax", 64);
  const auto m = analysis::analyze_mix(lw.stages[0].kernel);
  EXPECT_EQ(m.flat.total_issues,
            static_cast<double>(lw.stages[0].kernel.instruction_count()));
}

TEST(Mix, WeightedEmphasizesLoops) {
  const auto lw = compile("atax", 64);
  const auto m = analysis::analyze_mix(lw.stages[0].kernel);
  // The weighted FLOPS share must exceed the flat share: the dot-product
  // body lives one loop level down.
  const auto share = [](const sim::Counts& c) {
    return c.by_class(arch::OpClass::FLOPS) /
           std::max(1.0, c.total_issues);
  };
  EXPECT_GT(share(m.weighted), share(m.flat));
}

TEST(Mix, UnrollDetectionNormalizesWeights) {
  // Weighted totals of a x4-unrolled loop should be close to the x1
  // variant (both cover the same iterations), not 4x larger.
  codegen::TuningParams p4;
  p4.unroll = 4;
  const auto lw1 = compile("atax", 64);
  const auto lw4 = compile("atax", 64, p4);
  const double t1 =
      analysis::analyze_mix(lw1.stages[0].kernel).weighted.total_issues;
  const double t4 =
      analysis::analyze_mix(lw4.stages[0].kernel).weighted.total_issues;
  EXPECT_LT(t4, t1 * 1.5);
  EXPECT_GT(t4, t1 * 0.4);
}

TEST(Pipeline, SharesSumToOne) {
  const auto lw = compile("ex14fj", 16);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  const auto u = analysis::pipeline_utilization(mix, arch::Family::Kepler);
  double total = 0;
  for (const double s : u.share) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pipeline, MemoryKernelHitsLoadStoreOrFpPipes) {
  const auto lw = compile("bicg", 128);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  const auto u = analysis::pipeline_utilization(mix, arch::Family::Kepler);
  const double ldst =
      u.share[static_cast<std::size_t>(arch::OpCategory::LdStIns)];
  EXPECT_GT(ldst, 0.2);  // memory-bound kernel keeps the LSU busy
}

TEST(Divergence, Ex14fjBoundaryBranchIsDivergent) {
  const auto lw = compile("ex14fj", 8);
  const auto rep = analysis::analyze_divergence(lw.stages[0].kernel);
  EXPECT_GT(rep.divergent_count, 0u);
  // The boundary test depends on tid -> lane-varying.
  bool found_divergent_non_loop = false;
  for (const auto& b : rep.branches)
    if (b.divergent && !b.loop_back_edge) found_divergent_non_loop = true;
  EXPECT_TRUE(found_divergent_non_loop);
}

TEST(Divergence, InnerDotLoopLatchIsUniformGridStrideLatchIsNot) {
  const auto lw = compile("atax", 64);
  const auto& kernel = lw.stages[0].kernel;
  const auto rep = analysis::analyze_divergence(kernel);
  bool saw_inner = false, saw_gs = false;
  for (const auto& b : rep.branches) {
    if (!b.loop_back_edge) continue;
    const auto& branch =
        kernel.blocks[static_cast<std::size_t>(b.block)].body.back();
    if (branch.target == "gs_loop") {
      // Grid-stride latch: the work-item base derives from %tid.x, so
      // lanes can disagree on the final iteration -> lane-varying.
      EXPECT_TRUE(b.divergent) << branch.target;
      saw_gs = true;
    } else {
      // Inner dot-product latch: counter runs 0..N identically on every
      // lane -> warp-uniform.
      EXPECT_FALSE(b.divergent) << branch.target;
      saw_inner = true;
    }
  }
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_gs);
}

TEST(Divergence, ReconvergencePointsRecorded) {
  const auto lw = compile("ex14fj", 8);
  const auto rep = analysis::analyze_divergence(lw.stages[0].kernel);
  for (const auto& b : rep.branches) EXPECT_GE(b.reconvergence, 0);
}

TEST(Predictor, CostPositiveAndArchSensitive) {
  const auto lw = compile("atax", 128);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  const double k = analysis::predicted_cost(mix, arch::Family::Kepler);
  const double f = analysis::predicted_cost(mix, arch::Family::Fermi);
  EXPECT_GT(k, 0);
  EXPECT_GT(f, 0);
  // Fermi's lower IPCs mean higher CPI weights -> higher cost score.
  EXPECT_GT(f, k);
}

TEST(Predictor, FastMathLowersPredictedCost) {
  codegen::TuningParams fm;
  fm.fast_math = true;
  const double precise =
      analysis::predicted_cost(compile("ex14fj", 16), arch::Family::Kepler);
  const double fast = analysis::predicted_cost(compile("ex14fj", 16, fm),
                                               arch::Family::Kepler);
  EXPECT_LT(fast, precise);
}

TEST(Predictor, SizeScalingIsLinear) {
  const auto lw = compile("atax", 128);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  const double c1 = analysis::predicted_cost_at_size(
      mix, arch::Family::Kepler, 128);
  const double c2 = analysis::predicted_cost_at_size(
      mix, arch::Family::Kepler, 256);
  EXPECT_NEAR(c2, 2.0 * c1, c1 * 1e-9);
}

TEST(Predictor, ModelsDifferButAgreeOnSign) {
  const auto lw = compile("matvec2d", 128);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  const double a = analysis::predicted_cost(
      mix, arch::Family::Kepler, analysis::CostModel::ClassCpi);
  const double b = analysis::predicted_cost(
      mix, arch::Family::Kepler, analysis::CostModel::CategoryCpi);
  const double c = analysis::predicted_cost(
      mix, arch::Family::Kepler, analysis::CostModel::Unweighted);
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  EXPECT_GT(c, 0);
}
