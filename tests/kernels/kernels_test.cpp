#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsl/linear.hpp"
#include "dsl/printer.hpp"

namespace kernels = gpustatic::kernels;
using namespace gpustatic::dsl;  // NOLINT

TEST(Kernels, RegistryHasFourEntries) {
  const auto all = kernels::all_kernels();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "atax");
  EXPECT_EQ(all[1].name, "bicg");
  EXPECT_EQ(all[2].name, "ex14fj");
  EXPECT_EQ(all[3].name, "matvec2d");
}

TEST(Kernels, PaperInputSizes) {
  for (const auto& k : kernels::all_kernels()) {
    ASSERT_EQ(k.input_sizes.size(), 5u) << k.name;
    if (k.name == "ex14fj") {
      EXPECT_EQ(k.input_sizes.front(), 8);
      EXPECT_EQ(k.input_sizes.back(), 128);
    } else {
      EXPECT_EQ(k.input_sizes.front(), 32);
      EXPECT_EQ(k.input_sizes.back(), 512);
    }
  }
}

TEST(Kernels, UnknownNameThrows) {
  EXPECT_THROW((void)kernels::make_workload("gemm", 32),
               gpustatic::LookupError);
}

TEST(Kernels, AtaxStructure) {
  const auto wl = kernels::make_atax(64);
  EXPECT_EQ(wl.problem_size, 64);
  ASSERT_EQ(wl.stages.size(), 2u);
  EXPECT_EQ(wl.stages[0].domain, 64);
  EXPECT_EQ(wl.stages[1].domain, 64);
  EXPECT_EQ(wl.array("A").length, 64 * 64);
  EXPECT_EQ(wl.array("tmp").length, 64);
  EXPECT_EQ(wl.array("y").length, 64);
}

TEST(Kernels, BicgIsFusedSingleStage) {
  const auto wl = kernels::make_bicg(64);
  ASSERT_EQ(wl.stages.size(), 1u);
  EXPECT_EQ(wl.stages[0].domain, 64);
  // The fused kernel touches all five arrays.
  for (const char* a : {"A", "p", "r", "q", "s"})
    EXPECT_TRUE(wl.has_array(a)) << a;
  // Its body re-loads r inside the loop: check the printer shows an
  // atomicAdd to s (the aliasing-sensitive store).
  const std::string text = to_string(wl.stages[0]);
  EXPECT_NE(text.find("atomicAdd(&s["), std::string::npos);
  EXPECT_NE(text.find("r[t]"), std::string::npos);
}

TEST(Kernels, Ex14fjDomainIsCubed) {
  const auto wl = kernels::make_ex14fj(16);
  ASSERT_EQ(wl.stages.size(), 1u);
  EXPECT_EQ(wl.stages[0].domain, 16 * 16 * 16);
  EXPECT_EQ(wl.array("u").length, 16 * 16 * 16);
}

TEST(Kernels, Ex14fjBoundaryProbabilityMatchesGeometry) {
  const auto wl = kernels::make_ex14fj(8);
  // Find the If node.
  const StmtPtr body = wl.stages[0].body;
  const Stmt* ifnode = nullptr;
  for (const auto& c : body->children)
    if (c->kind == Stmt::Kind::If) ifnode = c.get();
  ASSERT_NE(ifnode, nullptr);
  const double expected = 1.0 - 6.0 * 6.0 * 6.0 / 512.0;
  EXPECT_NEAR(ifnode->then_prob, expected, 1e-12);
}

TEST(Kernels, Ex14fjBoundaryConditionIsCorrect) {
  const auto wl = kernels::make_ex14fj(8);
  const StmtPtr body = wl.stages[0].body;
  const Stmt* ifnode = nullptr;
  for (const auto& c : body->children)
    if (c->kind == Stmt::Kind::If) ifnode = c.get();
  ASSERT_NE(ifnode, nullptr);
  // Interior point (i=j=k=3): condition false. Corner: true.
  EXPECT_FALSE(evaluate(ifnode->cond, {{"i", 3}, {"j", 3}, {"k", 3}}));
  EXPECT_TRUE(evaluate(ifnode->cond, {{"i", 0}, {"j", 3}, {"k", 3}}));
  EXPECT_TRUE(evaluate(ifnode->cond, {{"i", 3}, {"j", 7}, {"k", 3}}));
  EXPECT_TRUE(evaluate(ifnode->cond, {{"i", 3}, {"j", 3}, {"k", 7}}));
}

TEST(Kernels, MatVecDomainCoversRowChunks) {
  const auto wl = kernels::make_matvec2d(128);
  const std::int64_t chunks = 128 / kernels::kMatVecChunk;
  EXPECT_EQ(wl.stages[0].domain, 128 * chunks);
}

TEST(Kernels, MatVecIndexIsNonAffine) {
  // The A index must defeat strength reduction (that is the intensity
  // mechanism; see kernels.hpp).
  const auto wl = kernels::make_matvec2d(128);
  const StmtPtr body = wl.stages[0].body;
  // Walk to the serial loop's accum load index.
  const Stmt* forstmt = nullptr;
  for (const auto& c : body->children)
    if (c->kind == Stmt::Kind::For) forstmt = c.get();
  ASSERT_NE(forstmt, nullptr);
  const Stmt* acc = forstmt->body.get();
  ASSERT_EQ(acc->kind, Stmt::Kind::Accum);
  const auto& load = acc->float_expr->lhs;  // A[...] of the fmul
  ASSERT_EQ(load->kind, FloatExpr::Kind::Load);
  EXPECT_FALSE(linearize(load->index).has_value());
}

TEST(Kernels, SmallSizesStillBuild) {
  for (const auto& k : kernels::all_kernels()) {
    const auto wl = kernels::make_workload(k.name, k.input_sizes.front());
    EXPECT_GT(wl.stages.size(), 0u);
    for (const auto& st : wl.stages) EXPECT_GT(st.domain, 0);
  }
}

TEST(Kernels, TableFourMetadata) {
  const auto all = kernels::all_kernels();
  EXPECT_EQ(all[0].operation, "y = A^T (A x)");
  EXPECT_EQ(all[1].category, "Linear solvers");
  EXPECT_EQ(all[3].operation, "y = A x");
}
