// Functional validation of the extended kernel suite: every kernel's
// simulated output is checked against a scalar CPU reference using the
// same float arithmetic, and the suite's structural claims (stage
// counts, divergence behaviour, registry metadata) are verified.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "codegen/compiler.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

float iv(std::int64_t i) { return static_cast<float>(i % 97) / 97.0f; }

sim::CollectResult run(const dsl::WorkloadDesc& wl, int tc = 64,
                       int bc = 24) {
  codegen::TuningParams p;
  p.threads_per_block = tc;
  p.block_count = bc;
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  return sim::run_workload_collect(lw, wl, machine);
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, double tol = 1e-5) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double denom = std::abs(want[i]) + 1e-9;
    ASSERT_LE(std::abs(got[i] - want[i]) / denom, tol) << "index " << i;
  }
}

}  // namespace

TEST(ExtendedKernels, GesummvMatchesReference) {
  const std::int64_t n = 64;
  auto res = run(kernels::make_gesummv(n));
  ASSERT_TRUE(res.measurement.valid);

  std::vector<float> want(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float sa = 0;
    float sb = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      sa += iv(i * n + j) * iv(j);
      sb += iv(i * n + j) * iv(j);  // B has the same ramp init as A
    }
    want[static_cast<std::size_t>(i)] = 1.5f * sa + 0.5f * sb;
  }
  expect_close(res.memory.host("y"), want);
}

TEST(ExtendedKernels, GemverMatchesReference) {
  const std::int64_t n = 32;
  auto res = run(kernels::make_gemver(n));
  ASSERT_TRUE(res.measurement.valid);

  const float alpha = 1.5f;
  const float beta = 1.2f;
  std::vector<float> a(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      a[static_cast<std::size_t>(i * n + j)] =
          iv(i * n + j) + iv(i) * iv(j) + 1.0f * iv(j);  // u2 = ones
  std::vector<float> x(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    float acc = 0;
    for (std::int64_t i = 0; i < n; ++i)
      acc += a[static_cast<std::size_t>(i * n + j)] * iv(i);  // y ramp
    x[static_cast<std::size_t>(j)] = beta * acc + iv(j);      // + z
  }
  std::vector<float> w(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    float acc = 0;
    for (std::int64_t j = 0; j < n; ++j)
      acc += a[static_cast<std::size_t>(i * n + j)] *
             x[static_cast<std::size_t>(j)];
    w[static_cast<std::size_t>(i)] = alpha * acc;
  }
  expect_close(res.memory.host("A"), a);
  expect_close(res.memory.host("x"), x);
  expect_close(res.memory.host("w"), w, 1e-4);
}

TEST(ExtendedKernels, MvtMatchesReference) {
  const std::int64_t n = 48;
  auto res = run(kernels::make_mvt(n));
  ASSERT_TRUE(res.measurement.valid);

  std::vector<float> x1(static_cast<std::size_t>(n));
  std::vector<float> x2(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    float acc = iv(i);
    for (std::int64_t j = 0; j < n; ++j) acc += iv(i * n + j) * iv(j);
    x1[static_cast<std::size_t>(i)] = acc;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    float acc = iv(j);
    for (std::int64_t i = 0; i < n; ++i) acc += iv(i * n + j) * 1.0f;
    x2[static_cast<std::size_t>(j)] = acc;
  }
  expect_close(res.memory.host("x1"), x1);
  expect_close(res.memory.host("x2"), x2);
}

TEST(ExtendedKernels, Jacobi2dMatchesReference) {
  const std::int64_t n = 32;
  auto res = run(kernels::make_jacobi2d(n));
  ASSERT_TRUE(res.measurement.valid);

  std::vector<float> want(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t t = i * n + j;
      if (i == 0 || i == n - 1 || j == 0 || j == n - 1) {
        want[static_cast<std::size_t>(t)] = iv(t);
      } else {
        want[static_cast<std::size_t>(t)] =
            0.2f * (iv(t) + iv(t - 1) + iv(t + 1) + iv(t - n) + iv(t + n));
      }
    }
  }
  expect_close(res.memory.host("B"), want);
}

TEST(ExtendedKernels, DivergentMatchesReferenceAndSerializesWarps) {
  const std::int64_t n = 1024;
  auto res = run(kernels::make_divergent(n), 128, 8);
  ASSERT_TRUE(res.measurement.valid);

  std::vector<float> want(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    const int flops = t % 4 == 0   ? 2
                      : t % 4 == 1 ? 6
                      : t % 4 == 2 ? 12
                                   : 24;
    float v = iv(t);
    for (int k = 0; k < flops; ++k)
      v += v * (0.5f + 0.125f * static_cast<float>(k));
    want[static_cast<std::size_t>(t)] = v;
  }
  expect_close(res.memory.host("y"), want, 1e-4);

  // Adjacent lanes take different arms: warps must diverge heavily.
  const auto& counts = res.measurement.counts;
  EXPECT_GT(counts.divergent_branches, 0.0);
  EXPECT_GT(counts.divergence_ratio(), 0.3);
}

TEST(ExtendedKernels, JacobiDivergesLessThanTheStressor) {
  // jacobi2d diverges only in warps straddling a grid edge (those warps
  // then run the interior arm partial-masked, so the ratio is sizable
  // but bounded); the synthetic stressor splits EVERY warp four ways.
  auto jacobi = run(kernels::make_jacobi2d(64), 64, 24);
  auto stress = run(kernels::make_divergent(4096), 64, 24);
  ASSERT_TRUE(jacobi.measurement.valid);
  ASSERT_TRUE(stress.measurement.valid);
  const double jr = jacobi.measurement.counts.divergence_ratio();
  const double sr = stress.measurement.counts.divergence_ratio();
  EXPECT_GT(jacobi.measurement.counts.divergent_branches, 0.0);
  EXPECT_LT(jr, 0.7);
  EXPECT_GT(sr, jr);
}

TEST(ExtendedKernels, GemverRunsFourStages) {
  const auto wl = kernels::make_gemver(32);
  EXPECT_EQ(wl.stages.size(), 4u);
  EXPECT_EQ(wl.stages[0].domain, 32 * 32);  // rank-1 update on N^2
  EXPECT_EQ(wl.stages[1].domain, 32);
}

TEST(ExtendedKernels, RegistryIsConsistent) {
  const auto ext = kernels::extended_kernels();
  ASSERT_EQ(ext.size(), 5u);
  for (const auto& info : ext) {
    EXPECT_FALSE(info.input_sizes.empty());
    const auto wl =
        kernels::make_workload(info.name, info.input_sizes.front());
    EXPECT_EQ(wl.name, info.name);
    EXPECT_FALSE(wl.stages.empty());
    EXPECT_FALSE(wl.arrays.empty());
  }
  // Paper registry unchanged by the extension.
  EXPECT_EQ(kernels::all_kernels().size(), 4u);
}
