#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/classify.hpp"
#include "ml/forest.hpp"

using namespace gpustatic;  // NOLINT
using ml::Dataset;
using ml::ForestOptions;
using ml::RandomForest;

namespace {

/// Noisy two-moon-ish problem: informative x0/x1 plus noise features —
/// the setting where bagging pays.
Dataset noisy(std::uint64_t seed, int n = 200) {
  Rng rng(seed);
  Dataset d;
  d.feature_names = {"x0", "x1", "n0", "n1", "n2"};
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform() * 2 - 1;
    const double x1 = rng.uniform() * 2 - 1;
    const int label =
        (std::sin(3 * x0) + 0.5 * x1 + 0.2 * (rng.uniform() - 0.5)) > 0
            ? 1
            : 0;
    d.add({x0, x1, rng.uniform(), rng.uniform(), rng.uniform()}, label);
  }
  return d;
}

}  // namespace

TEST(RandomForest, FitsAndPredictsReasonably) {
  const Dataset d = noisy(3);
  RandomForest f;
  f.fit(d);
  EXPECT_EQ(f.size(), 15u);
  EXPECT_GE(ml::accuracy(f.predict_all(d.rows), d.labels), 0.85);
}

TEST(RandomForest, ProbabilitiesAverageToOne) {
  const Dataset d = noisy(5);
  RandomForest f;
  f.fit(d);
  for (int i = 0; i < 10; ++i) {
    const auto p = f.predict_proba(d.rows[static_cast<std::size_t>(i)]);
    double sum = 0;
    for (const double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RandomForest, DeterministicPerSeed) {
  const Dataset d = noisy(7);
  RandomForest a;
  RandomForest b;
  ForestOptions opts;
  a.fit(d, opts);
  b.fit(d, opts);
  EXPECT_EQ(a.predict_all(d.rows), b.predict_all(d.rows));

  ForestOptions other = opts;
  other.seed = 99;
  RandomForest c;
  c.fit(d, other);
  // Different bootstrap draws: at least the tree shapes should differ.
  bool any_diff = false;
  for (std::size_t t = 0; t < a.size(); ++t)
    if (a.tree(t).node_count() != c.tree(t).node_count()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, FeatureSubsetRestrictsSplits) {
  const Dataset d = noisy(11);
  ml::TreeOptions topts;
  topts.feature_subset = {2, 3, 4};  // noise only
  ml::DecisionTree t;
  t.fit(d, topts);
  // The informative features are forbidden, so importance lands on the
  // noise columns exclusively.
  EXPECT_DOUBLE_EQ(t.feature_importance()[0], 0.0);
  EXPECT_DOUBLE_EQ(t.feature_importance()[1], 0.0);
}

TEST(RandomForest, CrossValidatesAtLeastAsWellAsASingleShallowTree) {
  const Dataset d = noisy(13);
  ml::TreeOptions shallow;
  shallow.max_depth = 2;
  ForestOptions fopts;
  fopts.tree = shallow;
  fopts.trees = 25;
  const auto cv_tree =
      ml::cross_validate(d, ml::tree_builder(shallow), 5, 17);
  const auto cv_forest =
      ml::cross_validate(d, ml::forest_builder(fopts), 5, 17);
  EXPECT_GE(cv_forest.mean_accuracy, cv_tree.mean_accuracy - 0.02);
  EXPECT_GT(cv_forest.mean_accuracy, cv_forest.baseline);
}

TEST(RandomForest, RejectsDegenerateOptions) {
  const Dataset d = noisy(1, 20);
  RandomForest f;
  ForestOptions opts;
  opts.trees = 0;
  EXPECT_THROW(f.fit(d, opts), Error);
  opts.trees = 3;
  opts.sample_fraction = 0.0;
  EXPECT_THROW(f.fit(d, opts), Error);
  EXPECT_THROW((void)f.predict({0, 0, 0, 0, 0}), Error);
  Dataset empty;
  EXPECT_THROW(f.fit(empty), Error);
}
