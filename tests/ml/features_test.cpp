#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "codegen/cache.hpp"
#include "codegen/compiler.hpp"
#include "kernels/kernels.hpp"
#include "ml/features.hpp"

using namespace gpustatic;  // NOLINT

namespace {

codegen::LoweredWorkload compile(const dsl::WorkloadDesc& wl,
                                 const arch::GpuSpec& gpu,
                                 const codegen::TuningParams& params) {
  return codegen::Compiler(gpu, params).compile(wl);
}

}  // namespace

// ---- schema ---------------------------------------------------------------

TEST(Features, NamesAndCountAndVectorLengthAgree) {
  const auto& names = ml::feature_names();
  EXPECT_EQ(names.size(), ml::feature_count());
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  const auto lw = compile(wl, gpu, {});
  EXPECT_EQ(ml::extract_features(lw, gpu).size(), names.size());
  EXPECT_EQ(ml::extract_features(lw, gpu, lw.params).size(), names.size());
}

// ---- determinism (the learned corpus depends on this bit-for-bit) ---------

TEST(Features, ExtractionIsBitIdenticalAcrossCalls) {
  const auto wl = kernels::make_bicg(128);
  const auto& gpu = arch::gpu("P100");
  codegen::TuningParams params;
  params.threads_per_block = 256;
  params.unroll = 3;
  const auto lw = compile(wl, gpu, params);
  const std::vector<double> a = ml::extract_features(lw, gpu);
  const std::vector<double> b = ml::extract_features(lw, gpu);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "feature " << ml::feature_names()[i]
                          << " not bit-identical";
}

TEST(Features, RecompilationYieldsBitIdenticalFeatures) {
  // Two independent compiles of the same variant must extract the same
  // vector — training corpora are rebuilt from scratch every run.
  const auto& gpu = arch::gpu("K20");
  codegen::TuningParams params;
  params.threads_per_block = 192;
  params.fast_math = true;
  const auto a = ml::extract_features(
      compile(kernels::make_ex14fj(64), gpu, params), gpu);
  const auto b = ml::extract_features(
      compile(kernels::make_ex14fj(64), gpu, params), gpu);
  EXPECT_EQ(a, b);
}

// ---- finiteness across the paper suite ------------------------------------

TEST(Features, FiniteAcrossPaperKernelsAndGpus) {
  for (const kernels::KernelInfo& k : kernels::all_kernels()) {
    const auto wl = kernels::make_workload(k.name, 64);
    for (const char* gpu_name : {"M2050", "K20", "M40", "P100"}) {
      const auto& gpu = arch::gpu(gpu_name);
      const auto lw = compile(wl, gpu, {});
      const auto features = ml::extract_features(lw, gpu);
      for (std::size_t i = 0; i < features.size(); ++i)
        EXPECT_TRUE(std::isfinite(features[i]))
            << k.name << " on " << gpu_name << ": feature "
            << ml::feature_names()[i] << " = " << features[i];
    }
  }
}

// ---- the params-override overload (cached-lowering join) ------------------

TEST(Features, ParamsOverloadWithOwnParamsMatchesTwoArgForm) {
  const auto wl = kernels::make_matvec2d(64);
  const auto& gpu = arch::gpu("K20");
  codegen::TuningParams params;
  params.threads_per_block = 96;
  params.block_count = 72;
  const auto lw = compile(wl, gpu, params);
  EXPECT_EQ(ml::extract_features(lw, gpu),
            ml::extract_features(lw, gpu, lw.params));
}

TEST(Features, ParamsOverrideChangesLaunchShapeFeaturesOnCachedLowering) {
  // A CompilationCache canonicalizes the lowering per codegen key: two
  // launch shapes of the same key share one lowering. The 3-arg
  // overload must score each point's own shape, not the first-seen one.
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  codegen::CompilationCache cache(wl, gpu);

  codegen::TuningParams first;
  first.threads_per_block = 64;
  codegen::TuningParams second = first;  // same CodegenKey
  second.threads_per_block = 512;

  const auto lowering = cache.lower(first);
  ASSERT_EQ(cache.lower(second).get(), lowering.get());  // canonicalized

  const auto a = ml::extract_features(*lowering, gpu, first);
  const auto b = ml::extract_features(*lowering, gpu, second);
  EXPECT_NE(a, b);
  // And the override agrees with a fresh, uncached compile of `second`.
  const auto fresh = compile(wl, gpu, second);
  EXPECT_EQ(b, ml::extract_features(fresh, gpu, second));
}
