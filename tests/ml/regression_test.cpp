#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "ml/regression.hpp"

using namespace gpustatic;  // NOLINT
using ml::RegressionForest;
using ml::RegressionForestOptions;
using ml::RegressionTree;
using ml::RegressionTreeOptions;

namespace {

/// A deterministic nonlinear target over a 2-feature grid.
void make_grid(std::vector<std::vector<double>>* rows,
               std::vector<double>* targets) {
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) {
      rows->push_back({i / 15.0, j / 15.0});
      targets->push_back(std::abs(i - 8.0) + 0.25 * j);
    }
}

double mean_of(const std::vector<double>& v) {
  double sum = 0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

// ---- tree -----------------------------------------------------------------

TEST(RegressionTree, BeatsTheMeanPredictorOnANonlinearTarget) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  make_grid(&rows, &targets);
  RegressionTree tree;
  tree.fit(rows, targets, {});
  ASSERT_TRUE(tree.fitted());

  const double mean = mean_of(targets);
  double sse_tree = 0, sse_mean = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double p = tree.predict(rows[i]);
    sse_tree += (p - targets[i]) * (p - targets[i]);
    sse_mean += (mean - targets[i]) * (mean - targets[i]);
  }
  EXPECT_LT(sse_tree, 0.2 * sse_mean);
}

TEST(RegressionTree, ConstantTargetYieldsASingleLeaf) {
  RegressionTree tree;
  tree.fit({{0.0}, {1.0}, {2.0}, {3.0}}, {5.0, 5.0, 5.0, 5.0}, {});
  ASSERT_EQ(tree.nodes().size(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({9.0}), 5.0);
}

TEST(RegressionTree, ZeroVarianceFeatureIsNeverSplitOnAndNeverNaN) {
  // A constant column must not poison the split sweep (satellite: the
  // Dataset degenerate-column class of bug, pinned at the tree level).
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 32; ++i) {
    rows.push_back({7.0, static_cast<double>(i)});
    targets.push_back(static_cast<double>(i % 2 == 0 ? i : -i));
  }
  RegressionTree tree;
  tree.fit(rows, targets, {});
  for (const RegressionTree::Node& n : tree.nodes()) {
    EXPECT_TRUE(std::isfinite(n.value));
    if (n.feature >= 0) {
      EXPECT_EQ(n.feature, 1);  // never the constant column
    }
  }
  EXPECT_TRUE(std::isfinite(tree.predict({7.0, 3.0})));
}

TEST(RegressionTree, FitIsDeterministic) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  make_grid(&rows, &targets);
  RegressionTree a, b;
  a.fit(rows, targets, {});
  b.fit(rows, targets, {});
  EXPECT_EQ(a.nodes(), b.nodes());
}

TEST(RegressionTree, RejectsBadInput) {
  RegressionTree tree;
  EXPECT_THROW(tree.fit({}, {}, {}), Error);
  EXPECT_THROW(tree.fit({{1.0}}, {1.0, 2.0}, {}), Error);
  EXPECT_THROW(tree.fit({{1.0, 2.0}, {1.0}}, {1.0, 2.0}, {}), Error);
  EXPECT_THROW(
      tree.fit({{std::numeric_limits<double>::quiet_NaN()}}, {1.0}, {}),
      Error);
  EXPECT_THROW(
      tree.fit({{1.0}}, {std::numeric_limits<double>::infinity()}, {}),
      Error);
}

TEST(RegressionTree, PredictBeforeFitThrows) {
  const RegressionTree tree;
  EXPECT_THROW((void)tree.predict({1.0}), Error);
}

TEST(RegressionTree, FromNodesValidatesChildIndexes) {
  RegressionTree::Node leaf;
  leaf.value = 1.0;
  EXPECT_NO_THROW((void)RegressionTree::from_nodes({leaf}));

  RegressionTree::Node bad;
  bad.feature = 0;
  bad.threshold = 0.5;
  bad.left = 5;  // out of range
  bad.right = 0;
  EXPECT_THROW((void)RegressionTree::from_nodes({bad, leaf}), Error);

  bad.left = 0;  // self-referencing internal node
  EXPECT_THROW((void)RegressionTree::from_nodes({bad, leaf}), Error);
}

// ---- forest ---------------------------------------------------------------

TEST(RegressionForest, PredictsTheTargetAndReportsFiniteVariance) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  make_grid(&rows, &targets);
  RegressionForest forest;
  forest.fit(rows, targets, {});
  ASSERT_TRUE(forest.fitted());

  const double mean = mean_of(targets);
  double sse_forest = 0, sse_mean = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto p = forest.predict(rows[i]);
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_GE(p.variance, 0.0);
    sse_forest += (p.mean - targets[i]) * (p.mean - targets[i]);
    sse_mean += (mean - targets[i]) * (mean - targets[i]);
  }
  EXPECT_LT(sse_forest, 0.5 * sse_mean);
}

TEST(RegressionForest, DeterministicPerSeedAndSensitiveToSeed) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  make_grid(&rows, &targets);
  RegressionForestOptions opts;
  opts.trees = 8;
  RegressionForest a, b, c;
  a.fit(rows, targets, opts);
  b.fit(rows, targets, opts);
  opts.seed += 1;
  c.fit(rows, targets, opts);

  const std::vector<double> probe = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(a.predict(probe).mean, b.predict(probe).mean);
  EXPECT_DOUBLE_EQ(a.predict(probe).variance, b.predict(probe).variance);
  ASSERT_EQ(a.trees().size(), b.trees().size());
  for (std::size_t i = 0; i < a.trees().size(); ++i)
    EXPECT_EQ(a.trees()[i].nodes(), b.trees()[i].nodes());
  EXPECT_NE(a.predict(probe).mean, c.predict(probe).mean);
}

TEST(RegressionForest, ConstantTargetHasZeroVariance) {
  RegressionForest forest;
  forest.fit({{0.0}, {1.0}, {2.0}, {3.0}}, {2.0, 2.0, 2.0, 2.0}, {});
  const auto p = forest.predict({1.5});
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_DOUBLE_EQ(p.variance, 0.0);
}

TEST(RegressionForest, FromTreesRejectsEmpty) {
  EXPECT_THROW((void)RegressionForest::from_trees({}), Error);
}
