#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/tree.hpp"

using namespace gpustatic;  // NOLINT
using ml::Dataset;
using ml::DecisionTree;
using ml::TreeOptions;

// ---- Gini impurity ---------------------------------------------------------

TEST(Gini, PureSetIsZero) {
  EXPECT_DOUBLE_EQ(ml::gini_impurity({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ml::gini_impurity({0, 7}), 0.0);
  EXPECT_DOUBLE_EQ(ml::gini_impurity({}), 0.0);
}

TEST(Gini, EvenBinarySplitIsHalf) {
  EXPECT_DOUBLE_EQ(ml::gini_impurity({5, 5}), 0.5);
}

TEST(Gini, UniformThreeClasses) {
  EXPECT_NEAR(ml::gini_impurity({3, 3, 3}), 2.0 / 3.0, 1e-12);
}

// ---- fitting behaviour ------------------------------------------------------

namespace {

Dataset threshold_data() {
  // One informative feature (x0 <= 0.5 -> class 0), one noise feature.
  Dataset d;
  d.feature_names = {"x0", "noise"};
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform();
    d.add({x, rng.uniform()}, x <= 0.5 ? 0 : 1);
  }
  return d;
}

Dataset xor_data() {
  Dataset d;
  d.feature_names = {"a", "b"};
  for (const double a : {0.0, 1.0})
    for (const double b : {0.0, 1.0})
      for (int rep = 0; rep < 5; ++rep)
        d.add({a, b}, (a != b) ? 1 : 0);
  return d;
}

}  // namespace

TEST(DecisionTree, LearnsSingleThreshold) {
  const Dataset d = threshold_data();
  DecisionTree t;
  t.fit(d);
  EXPECT_EQ(ml::accuracy(t.predict_all(d.rows), d.labels), 1.0);
  // The split must be on the informative feature, near 0.5.
  EXPECT_GT(t.feature_importance()[0], t.feature_importance()[1]);
}

TEST(DecisionTree, SolvesXorAtDepthTwo) {
  const Dataset d = xor_data();
  DecisionTree t;
  TreeOptions opts;
  opts.max_depth = 2;
  opts.min_samples_split = 2;
  opts.min_samples_leaf = 1;
  t.fit(d, opts);
  EXPECT_EQ(ml::accuracy(t.predict_all(d.rows), d.labels), 1.0);
  EXPECT_EQ(t.depth(), 3u);  // root + two split levels of nodes
}

TEST(DecisionTree, DepthOneCannotSolveXor) {
  const Dataset d = xor_data();
  DecisionTree t;
  TreeOptions opts;
  opts.max_depth = 1;
  opts.min_samples_split = 2;
  opts.min_samples_leaf = 1;
  t.fit(d, opts);
  EXPECT_LT(ml::accuracy(t.predict_all(d.rows), d.labels), 1.0);
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  Dataset d;
  d.feature_names = {"x"};
  // 9 zeros and 1 one: separating the singleton needs a 1-sample leaf,
  // which min_samples_leaf = 3 forbids. Splits that keep >= 3 samples per
  // side are still legal, but none of them can isolate the '1'.
  for (int i = 0; i < 9; ++i) d.add({static_cast<double>(i)}, 0);
  d.add({100.0}, 1);
  DecisionTree t;
  TreeOptions opts;
  opts.min_samples_leaf = 3;
  t.fit(d, opts);
  EXPECT_EQ(t.predict({100.0}), 0);
  const std::string rendered = t.to_string(d.feature_names);
  EXPECT_EQ(rendered.find("(1 samples)"), std::string::npos);
  EXPECT_EQ(rendered.find("(2 samples)"), std::string::npos);
}

TEST(DecisionTree, DeterministicAcrossRefits) {
  const Dataset d = threshold_data();
  DecisionTree a;
  DecisionTree b;
  a.fit(d);
  b.fit(d);
  EXPECT_EQ(a.to_string(d.feature_names), b.to_string(d.feature_names));
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  const Dataset d = threshold_data();
  DecisionTree t;
  t.fit(d);
  for (const auto& row : d.rows) {
    const auto p = t.predict_proba(row);
    double sum = 0;
    for (const double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(DecisionTree, HandlesThreeClasses) {
  Dataset d;
  d.feature_names = {"x"};
  for (int i = 0; i < 10; ++i) {
    d.add({0.0 + i * 0.01}, 0);
    d.add({1.0 + i * 0.01}, 1);
    d.add({2.0 + i * 0.01}, 2);
  }
  DecisionTree t;
  t.fit(d);
  EXPECT_EQ(t.num_classes(), 3);
  EXPECT_EQ(t.predict({0.05}), 0);
  EXPECT_EQ(t.predict({1.05}), 1);
  EXPECT_EQ(t.predict({2.05}), 2);
}

TEST(DecisionTree, ConstantFeaturesYieldSingleLeaf) {
  Dataset d;
  d.feature_names = {"x"};
  for (int i = 0; i < 6; ++i) d.add({1.0}, i % 2);
  DecisionTree t;
  t.fit(d);
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  const DecisionTree t;
  EXPECT_THROW((void)t.predict({1.0}), Error);
}

TEST(DecisionTree, EmptyTrainingSetThrows) {
  Dataset d;
  DecisionTree t;
  EXPECT_THROW(t.fit(d), Error);
}

TEST(DecisionTree, MaxDepthBoundsTreeDepth) {
  Rng rng(5);
  Dataset d;
  d.feature_names = {"x", "y"};
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    // Nonlinear boundary needs depth; cap must still hold.
    d.add({x, y}, (std::sin(7 * x) > y) ? 1 : 0);
  }
  for (const std::size_t cap : {1u, 2u, 3u, 4u}) {
    DecisionTree t;
    TreeOptions opts;
    opts.max_depth = cap;
    t.fit(d, opts);
    EXPECT_LE(t.depth(), cap + 1);  // cap split levels + leaf level
  }
}
