#include <gtest/gtest.h>

#include <algorithm>

#include "arch/gpu_spec.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "ml/classify.hpp"
#include "ml/features.hpp"
#include "ml/logistic.hpp"

using namespace gpustatic;  // NOLINT

// ---- logistic regression ---------------------------------------------------

namespace {

ml::Dataset separable(std::uint64_t seed, int n = 60) {
  Rng rng(seed);
  ml::Dataset d;
  d.feature_names = {"x0", "x1"};
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.uniform() * 2 - 1;
    const double x1 = rng.uniform() * 2 - 1;
    d.add({x0, x1}, x0 + x1 > 0 ? 1 : 0);
  }
  return d;
}

}  // namespace

TEST(Logistic, FitsLinearlySeparableData) {
  const auto d = separable(3);
  ml::LogisticRegression m;
  m.fit(d);
  EXPECT_GE(ml::accuracy(m.predict_all(d.rows), d.labels), 0.95);
  // Both features push toward class 1: positive weights.
  EXPECT_GT(m.weights()[0], 0.0);
  EXPECT_GT(m.weights()[1], 0.0);
}

TEST(Logistic, MoreIterationsReduceLogLoss) {
  const auto d = separable(9);
  ml::LogisticRegression coarse;
  ml::LogisticRegression fine;
  ml::LogisticOptions few;
  few.iterations = 5;
  ml::LogisticOptions many;
  many.iterations = 500;
  coarse.fit(d, few);
  fine.fit(d, many);
  EXPECT_LT(fine.log_loss(d), coarse.log_loss(d));
}

TEST(Logistic, RejectsNonBinaryLabels) {
  ml::Dataset d;
  d.add({0.0}, 2);
  ml::LogisticRegression m;
  EXPECT_THROW(m.fit(d), Error);
}

TEST(Logistic, PredictBeforeFitThrows) {
  const ml::LogisticRegression m;
  EXPECT_THROW((void)m.predict_proba({0.0}), Error);
}

// ---- static feature extraction ----------------------------------------------

TEST(Features, SchemaAndVectorAgree) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  codegen::TuningParams p;
  p.threads_per_block = 256;
  const codegen::Compiler c(gpu, p);
  const auto f = ml::extract_features(c.compile(wl), gpu);
  EXPECT_EQ(f.size(), ml::feature_count());
  EXPECT_EQ(ml::feature_names().size(), ml::feature_count());
  for (const double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, ReflectTuningParameters) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  auto features_at = [&](int tc, bool fm) {
    codegen::TuningParams p;
    p.threads_per_block = tc;
    p.fast_math = fm;
    const codegen::Compiler c(gpu, p);
    return ml::extract_features(c.compile(wl), gpu);
  };
  const auto lo = features_at(64, false);
  const auto hi = features_at(1024, true);
  const auto& names = ml::feature_names();
  const auto at = [&](const auto& f, const char* name) {
    const auto it = std::find(names.begin(), names.end(), name);
    EXPECT_NE(it, names.end()) << name;
    return f[static_cast<std::size_t>(it - names.begin())];
  };
  EXPECT_DOUBLE_EQ(at(lo, "tc_frac"), 64.0 / 1024.0);
  EXPECT_DOUBLE_EQ(at(hi, "tc_frac"), 1.0);
  EXPECT_DOUBLE_EQ(at(lo, "fast_math"), 0.0);
  EXPECT_DOUBLE_EQ(at(hi, "fast_math"), 1.0);
}

TEST(Features, IntensityFeatureSeparatesRuleClasses) {
  // The 4.0-threshold property the rule heuristic relies on (Sec. III-C):
  // atax/bicg sit below the threshold, matVec2D/ex14FJ above. The feature
  // is log1p(intensity), so the threshold maps to log1p(4).
  const auto& gpu = arch::gpu("K20");
  const auto at = [&](const dsl::WorkloadDesc& wl) {
    const codegen::Compiler c(gpu, codegen::TuningParams{});
    const auto f = ml::extract_features(c.compile(wl), gpu);
    const auto& names = ml::feature_names();
    const auto it =
        std::find(names.begin(), names.end(), "intensity_log");
    return f[static_cast<std::size_t>(it - names.begin())];
  };
  const double threshold = std::log1p(4.0);
  EXPECT_LT(at(kernels::make_bicg(256)), threshold);
  EXPECT_LE(at(kernels::make_atax(256)), threshold);
  EXPECT_GT(at(kernels::make_matvec2d(256)), threshold);
  EXPECT_GT(at(kernels::make_ex14fj(32)), threshold);
  EXPECT_LT(at(kernels::make_bicg(256)), at(kernels::make_atax(256)));
}

// ---- corpus building & end-to-end prediction --------------------------------

namespace {

/// Small but real corpus: one kernel, one GPU, heavily strided sweep.
ml::Dataset small_corpus(std::vector<std::string>* tags = nullptr) {
  ml::CorpusOptions opts;
  opts.stride = 64;  // 5120 / 64 = 80 variants
  std::vector<ml::CorpusEntry> corpus;
  corpus.push_back({kernels::make_atax(64), &arch::gpu("K20")});
  return ml::build_rank_dataset(corpus, opts, tags);
}

}  // namespace

TEST(RankDataset, HasBothLabelsAndProvenance) {
  std::vector<std::string> tags;
  const auto d = small_corpus(&tags);
  ASSERT_GT(d.size(), 20u);
  EXPECT_EQ(d.width(), ml::feature_count());
  EXPECT_EQ(tags.size(), d.size());
  EXPECT_EQ(tags.front(), "atax@K20");

  const auto ones = static_cast<std::size_t>(
      std::count(d.labels.begin(), d.labels.end(), ml::kRank1Label));
  const auto zeros = d.size() - ones;
  // The rank split is a median split: balanced to within one element.
  EXPECT_LE(ones > zeros ? ones - zeros : zeros - ones, 1u);
  EXPECT_NO_THROW(d.validate());
}

TEST(RankDataset, MissingGpuThrows) {
  std::vector<ml::CorpusEntry> corpus;
  corpus.push_back({kernels::make_atax(32), nullptr});
  EXPECT_THROW(ml::build_rank_dataset(corpus), Error);
}

TEST(CrossValidate, TreeBeatsMajorityBaselineOnRankCorpus) {
  const auto d = small_corpus();
  const auto cv = ml::cross_validate(d, ml::tree_builder(), 4, 17);
  ASSERT_EQ(cv.fold_accuracy.size(), 4u);
  // Rank labels are a median split, so baseline is ~0.5; the static
  // features must carry real signal.
  EXPECT_GT(cv.mean_accuracy, cv.baseline + 0.1);
}

TEST(CrossValidate, LogisticRunsOnRankCorpus) {
  const auto d = small_corpus();
  const auto cv = ml::cross_validate(d, ml::logistic_builder(), 4, 17);
  EXPECT_GT(cv.mean_accuracy, 0.5);
}

TEST(BlockSizePredictor, PredictsAValidThreadCount) {
  const auto d = small_corpus();
  ml::BlockSizePredictor pred;
  pred.fit(d);
  const auto tc = pred.predict_block_size(kernels::make_atax(64),
                                          arch::gpu("K20"));
  EXPECT_GE(tc, 32u);
  EXPECT_LE(tc, 1024u);
  EXPECT_EQ(tc % 32, 0u);
}

TEST(BlockSizePredictor, HonorsCandidateRestriction) {
  const auto d = small_corpus();
  ml::BlockSizePredictor pred;
  pred.fit(d);
  const std::vector<std::uint32_t> candidates = {128, 256};
  const auto tc = pred.predict_block_size(kernels::make_atax(64),
                                          arch::gpu("K20"), candidates);
  EXPECT_TRUE(tc == 128 || tc == 256);
}

TEST(BlockSizePredictor, PredictBeforeFitThrows) {
  const ml::BlockSizePredictor pred;
  EXPECT_THROW((void)pred.predict_block_size(kernels::make_atax(32),
                                             arch::gpu("K20")),
               Error);
}

TEST(BlockSizePredictor, RankProbabilityIsAProbability) {
  const auto d = small_corpus();
  ml::BlockSizePredictor pred;
  pred.fit(d);
  codegen::TuningParams p;
  p.threads_per_block = 256;
  const double prob =
      pred.rank1_probability(kernels::make_atax(64), arch::gpu("K20"), p);
  EXPECT_GE(prob, 0.0);
  EXPECT_LE(prob, 1.0);
}
