#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "ml/dataset.hpp"

using namespace gpustatic;  // NOLINT
using ml::Dataset;
using ml::Scaler;

// ---- k-fold splitting ----------------------------------------------------

class KFoldTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(KFoldTest, FoldsPartitionTheIndexSet) {
  const auto [n, k] = GetParam();
  const auto folds = ml::kfold_indices(n, k, 42);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& f : folds) {
    for (const std::size_t i : f) {
      EXPECT_LT(i, n);
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
    total += f.size();
  }
  EXPECT_EQ(total, n);

  // Sizes balanced to within one element.
  std::size_t lo = n, hi = 0;
  for (const auto& f : folds) {
    lo = std::min(lo, f.size());
    hi = std::max(hi, f.size());
  }
  if (n >= k) {
    EXPECT_LE(hi - lo, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KFoldTest,
    ::testing::Values(std::tuple<std::size_t, std::size_t>{10, 5},
                      std::tuple<std::size_t, std::size_t>{97, 4},
                      std::tuple<std::size_t, std::size_t>{3, 10},
                      std::tuple<std::size_t, std::size_t>{256, 8},
                      std::tuple<std::size_t, std::size_t>{1, 2}));

TEST(KFold, DeterministicPerSeedAndSensitiveToSeed) {
  const auto a = ml::kfold_indices(64, 4, 7);
  const auto b = ml::kfold_indices(64, 4, 7);
  const auto c = ml::kfold_indices(64, 4, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KFold, ZeroKThrows) {
  EXPECT_THROW(ml::kfold_indices(10, 0, 1), Error);
}

TEST(KFold, ComplementIsExactlyTheRest) {
  const auto folds = ml::kfold_indices(20, 4, 3);
  const auto rest = ml::fold_complement(20, folds[0]);
  EXPECT_EQ(rest.size(), 20 - folds[0].size());
  for (const std::size_t i : rest)
    EXPECT_TRUE(std::find(folds[0].begin(), folds[0].end(), i) ==
                folds[0].end());
  EXPECT_TRUE(std::is_sorted(rest.begin(), rest.end()));
}

// ---- scaler ---------------------------------------------------------------

TEST(Scaler, StandardizesToZeroMeanUnitVariance) {
  Scaler s;
  const std::vector<std::vector<double>> rows = {
      {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}, {4.0, 40.0}};
  s.fit(rows);
  const auto t = s.transform_all(rows);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0, var = 0;
    for (const auto& r : t) mean += r[j];
    mean /= 4.0;
    for (const auto& r : t) var += (r[j] - mean) * (r[j] - mean);
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Scaler s;
  s.fit({{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}});
  const auto t = s.transform({5.0, 2.0});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

TEST(Scaler, DegenerateColumnNeverProducesNaN) {
  // A zero-variance column divides by its zero std unless guarded; the
  // guard must hold even for off-center probes of the constant column.
  Scaler s;
  s.fit({{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}});
  for (const double probe : {5.0, 0.0, -7.5, 1e9}) {
    const auto t = s.transform({probe, 2.0});
    EXPECT_TRUE(std::isfinite(t[0])) << "probe " << probe;
    EXPECT_DOUBLE_EQ(t[0], 0.0);
    EXPECT_TRUE(std::isfinite(t[1]));
  }
}

TEST(Scaler, EmptyFitThrows) {
  Scaler s;
  EXPECT_THROW(s.fit({}), Error);
}

TEST(Scaler, RaggedFitRowsThrow) {
  Scaler s;
  EXPECT_THROW(s.fit({{1.0, 2.0}, {1.0}}), Error);
}

TEST(Scaler, TransformWidthMismatchThrows) {
  // Silently zipping a wider row against the fitted statistics would
  // read past them; the schema mismatch must be loud.
  Scaler s;
  s.fit({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_THROW((void)s.transform({1.0}), Error);
  EXPECT_THROW((void)s.transform({1.0, 2.0, 3.0}), Error);
  EXPECT_NO_THROW((void)s.transform({1.0, 2.0}));
}

// ---- dataset & metrics -----------------------------------------------------

TEST(DatasetValidate, DetectsRaggedRows) {
  Dataset d;
  d.feature_names = {"a", "b"};
  d.add({1.0, 2.0}, 0);
  d.add({1.0}, 1);
  EXPECT_THROW(d.validate(), Error);
}

TEST(DatasetValidate, DetectsNonFiniteFeatures) {
  Dataset d;
  d.add({1.0, std::numeric_limits<double>::infinity()}, 0);
  EXPECT_THROW(d.validate(), Error);
}

TEST(DatasetValidate, DetectsNegativeLabels) {
  Dataset d;
  d.add({1.0}, -1);
  EXPECT_THROW(d.validate(), Error);
}

TEST(DatasetSelect, CopiesRequestedRows) {
  Dataset d;
  d.add({1.0}, 0);
  d.add({2.0}, 1);
  d.add({3.0}, 0);
  const Dataset s = d.select({2, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.rows[0][0], 3.0);
  EXPECT_EQ(s.labels[1], 0);
}

TEST(Metrics, AccuracyAndMajorityBaseline) {
  EXPECT_DOUBLE_EQ(ml::accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(ml::majority_baseline({0, 0, 1, 0}), 0.75);
  EXPECT_DOUBLE_EQ(ml::majority_baseline({}), 0.0);
  EXPECT_THROW((void)ml::accuracy({1}, {1, 0}), Error);
}

TEST(Metrics, ConfusionMatrixCountsByLabelThenPrediction) {
  const auto m = ml::confusion_matrix({0, 1, 1, 0}, {0, 1, 0, 1}, 2);
  EXPECT_EQ(m[0][0], 1u);  // label 0 predicted 0
  EXPECT_EQ(m[0][1], 1u);  // label 0 predicted 1
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[1][1], 1u);
}

TEST(Dataset, NumClassesIsMaxLabelPlusOne) {
  Dataset d;
  d.add({0.0}, 0);
  d.add({0.0}, 4);
  EXPECT_EQ(d.num_classes(), 5);
}
