#include <gtest/gtest.h>

#include "common/error.hpp"
#include "frontend/lexer.hpp"

using namespace gpustatic;           // NOLINT
using namespace gpustatic::frontend;  // NOLINT

TEST(Lexer, TokenizesAllCategories) {
  const auto toks = tokenize(
      "workload foo(N = 8); array A[2]; stage s(t : N) { float x = 1.5; "
      "x += 2e3; }");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks.front().kind, Tok::KwWorkload);
  EXPECT_EQ(toks.back().kind, Tok::End);

  std::size_t idents = 0;
  std::size_t floats = 0;
  for (const auto& t : toks) {
    if (t.kind == Tok::Ident) ++idents;
    if (t.kind == Tok::FloatLit) ++floats;
  }
  EXPECT_EQ(idents, 8u);  // foo N A s t N x x
  EXPECT_EQ(floats, 2u);  // 1.5 2e3
}

TEST(Lexer, DistinguishesCompoundOperators) {
  const auto toks = tokenize("+= -= *= /= ++ <= >= == != && || < > ! =");
  const std::vector<Tok> expect = {
      Tok::PlusAssign, Tok::MinusAssign, Tok::StarAssign, Tok::SlashAssign,
      Tok::PlusPlus,   Tok::Le,          Tok::Ge,         Tok::EqEq,
      Tok::NotEq,      Tok::AndAnd,      Tok::OrOr,       Tok::Lt,
      Tok::Gt,         Tok::Not,         Tok::Assign,     Tok::End};
  ASSERT_EQ(toks.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(toks[i].kind, expect[i]) << "token " << i;
}

TEST(Lexer, SkipsLineAndBlockComments) {
  const auto toks = tokenize(
      "// leading comment\n"
      "array /* inline */ A\n"
      "/* multi\n   line */ ;");
  ASSERT_EQ(toks.size(), 4u);  // array A ; End
  EXPECT_EQ(toks[0].kind, Tok::KwArray);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[2].kind, Tok::Semicolon);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].line, 4u);
}

TEST(Lexer, ParsesNumericLiterals) {
  const auto toks = tokenize("42 3.25 1e3 2E-2");
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.25);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.02);
}

TEST(Lexer, RejectsMalformedInput) {
  EXPECT_THROW((void)tokenize("a @ b"), ParseError);
  EXPECT_THROW((void)tokenize("/* never closed"), ParseError);
  EXPECT_THROW((void)tokenize("1e"), ParseError);
  EXPECT_THROW((void)tokenize("12abc"), ParseError);
}

TEST(Lexer, ReportsErrorLine) {
  try {
    (void)tokenize("ok tokens\nhere\n$");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}
