// Frontend robustness: a seeded generator emits random *valid* kernel
// sources; every one of them must parse, compile on every GPU, execute
// on the warp engine, and produce finite outputs. This catches parser
// edge cases and codegen/simulator interactions no hand-written kernel
// exercises (deep nesting, redundant parentheses, unused accumulators,
// chained conditions).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/compiler.hpp"
#include "common/rng.hpp"
#include "frontend/parser.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

/// Emits one random but well-formed kernel source.
class SourceGenerator {
 public:
  explicit SourceGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    os_ << "workload fuzz(N = " << (8 << rng_.below(3)) << ");\n";
    const int arrays = 1 + static_cast<int>(rng_.below(3));
    for (int a = 0; a < arrays; ++a) {
      arrays_.push_back("arr" + std::to_string(a));
      os_ << "array " << arrays_.back() << "[N*N] init "
          << (rng_.below(2) != 0u ? "ramp" : "ones") << ";\n";
    }
    arrays_.push_back("out");
    os_ << "array out[N*N] init zero;\n";

    os_ << "stage main_stage(t : N*N) {\n";
    scalars_.push_back("acc");
    os_ << "  float acc = " << flit() << ";\n";
    const int stmts = 1 + static_cast<int>(rng_.below(3));
    for (int s = 0; s < stmts; ++s) emit_stmt(1);
    os_ << "  out[t] = acc;\n";
    os_ << "}\n";
    return os_.str();
  }

 private:
  std::string flit() {
    return std::to_string(0.25 * static_cast<double>(1 + rng_.below(8)));
  }

  std::string iexpr(int depth) {
    if (depth == 0 || rng_.below(3) == 0) {
      switch (rng_.below(3)) {
        case 0: return "t";
        case 1: return std::to_string(rng_.below(16));
        default: return "t % (N*N)";
      }
    }
    const std::string a = iexpr(depth - 1);
    const std::string b = iexpr(depth - 1);
    switch (rng_.below(4)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "min(" + a + ", " + b + ") % (N*N)";
      case 2: return "(" + a + " * 2) % (N*N)";
      default: return "max(" + a + ", 0) % (N*N)";
    }
  }

  std::string fexpr(int depth) {
    if (depth == 0 || rng_.below(3) == 0) {
      switch (rng_.below(3)) {
        case 0: return flit();
        case 1: return scalars_[rng_.below(scalars_.size())];
        default:
          return arrays_[rng_.below(arrays_.size() - 1)] + "[" +
                 iexpr(1) + " % (N*N)]";
      }
    }
    const std::string a = fexpr(depth - 1);
    const std::string b = fexpr(depth - 1);
    switch (rng_.below(5)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " * " + b + ")";
      case 2: return "fmin(" + a + ", " + b + ")";
      case 3: return "abs(" + a + ")";
      default: return "(" + a + " - " + b + ")";
    }
  }

  void emit_stmt(int depth) {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (rng_.below(4)) {
      case 0: {  // accumulator update
        os_ << pad << scalars_[rng_.below(scalars_.size())]
            << " += " << fexpr(2) << ";\n";
        return;
      }
      case 1: {  // bounded loop, possibly unrollable
        const std::string var = "i" + std::to_string(loops_++);
        os_ << pad << (rng_.below(2) != 0u ? "unroll " : "") << "for ("
            << var << " = 0; " << var << " < "
            << (2 + rng_.below(6)) << "; " << var << "++) {\n";
        const std::size_t mark = scalars_.size();
        emit_stmt(depth + 1);
        scalars_.resize(mark);  // block scope: inner scalars expire
        os_ << pad << "}\n";
        return;
      }
      case 2: {  // data-dependent branch
        os_ << pad << "if (" << iexpr(1) << " < " << iexpr(1)
            << ") prob(0." << (1 + rng_.below(8)) << ") {\n";
        const std::size_t mark = scalars_.size();
        emit_stmt(depth + 1);
        scalars_.resize(mark);
        os_ << pad << "} else {\n";
        emit_stmt(depth + 1);
        scalars_.resize(mark);
        os_ << pad << "}\n";
        return;
      }
      default: {  // fresh scalar
        const std::string name = "s" + std::to_string(scalars_.size());
        os_ << pad << "float " << name << " = " << fexpr(1) << ";\n";
        scalars_.push_back(name);
        return;
      }
    }
  }

  Rng rng_;
  std::ostringstream os_;
  std::vector<std::string> arrays_;
  std::vector<std::string> scalars_;
  int loops_ = 0;
};

}  // namespace

class FrontendFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontendFuzz, GeneratedSourcesParseCompileAndRun) {
  SourceGenerator gen(GetParam());
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  const auto wl = frontend::parse_workload(source);
  ASSERT_EQ(wl.name, "fuzz");

  for (const char* gpu_name : {"M2050", "P100"}) {
    const auto& gpu = arch::gpu(gpu_name);
    codegen::TuningParams p;
    p.threads_per_block = 64;
    p.block_count = 24;
    p.unroll = 1 + static_cast<int>(GetParam() % 3);
    const codegen::Compiler c(gpu, p);
    const auto lw = c.compile(wl);
    EXPECT_GT(lw.instruction_count(), 0u);

    const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
    const auto res = sim::run_workload_collect(lw, wl, machine);
    ASSERT_TRUE(res.measurement.valid) << gpu_name;
    for (const float v : res.memory.host("out"))
      ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));
