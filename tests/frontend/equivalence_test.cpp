// The decisive frontend test: the four Table IV kernels written in the
// source language must behave exactly like the hand-built DSL versions —
// same compiled footprint where the ASTs are shape-identical, and the
// same simulated outputs everywhere.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "frontend/parser.hpp"
#include "frontend/sources.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;           // NOLINT
using namespace gpustatic::frontend;  // NOLINT

namespace {

sim::DeviceMemory run(const dsl::WorkloadDesc& wl,
                      const codegen::TuningParams& p) {
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  auto res = sim::run_workload_collect(lw, wl, machine);
  EXPECT_TRUE(res.measurement.valid);
  return std::move(res.memory);
}

void expect_array_eq(sim::DeviceMemory& a, sim::DeviceMemory& b,
                     const std::string& name, double tol = 0.0) {
  const auto& va = a.host(name);
  const auto& vb = b.host(name);
  ASSERT_EQ(va.size(), vb.size()) << name;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (tol == 0.0) {
      ASSERT_EQ(va[i], vb[i]) << name << "[" << i << "]";
    } else {
      const double denom = std::abs(vb[i]) + 1e-9;
      ASSERT_LE(std::abs(va[i] - vb[i]) / denom, tol)
          << name << "[" << i << "]";
    }
  }
}

}  // namespace

struct EquivCase {
  const char* kernel;
  std::int64_t n;
  const char* output;
  double tol;  ///< 0 = bit-exact expected
};

class SourceEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(SourceEquivalence, SimulatedOutputsMatchHandBuiltDsl) {
  const EquivCase& c = GetParam();
  const auto parsed =
      parse_workload(sources::by_name(c.kernel), c.n);
  const auto built = kernels::make_workload(c.kernel, c.n);

  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.block_count = 24;
  auto mem_parsed = run(parsed, p);
  auto mem_built = run(built, p);
  expect_array_eq(mem_parsed, mem_built, c.output, c.tol);
}

INSTANTIATE_TEST_SUITE_P(
    PaperKernels, SourceEquivalence,
    ::testing::Values(
        EquivCase{"atax", 48, "y", 0.0},
        EquivCase{"atax", 64, "tmp", 0.0},
        EquivCase{"bicg", 48, "q", 0.0},
        EquivCase{"bicg", 48, "s", 0.0},
        EquivCase{"ex14fj", 8, "F", 0.0},
        EquivCase{"ex14fj", 16, "F", 0.0},
        // matvec2d's source form spells the chunk constants as
        // min()/max() expressions, so its instruction stream differs and
        // atomic update order with it: tolerance instead of bit-equality.
        EquivCase{"matvec2d", 64, "y", 1e-5},
        EquivCase{"matvec2d", 128, "y", 1e-5}));

TEST(SourceEquivalence, AtaxCompilesToIdenticalFootprint) {
  // atax's source form is AST-shape-identical to the hand-built kernel,
  // so the virtual toolchain must report the same binary footprint.
  const auto parsed = parse_workload(sources::kAtax, 64);
  const auto built = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, codegen::TuningParams{});
  const auto lw_parsed = c.compile(parsed);
  const auto lw_built = c.compile(built);
  EXPECT_EQ(lw_parsed.regs_per_thread(), lw_built.regs_per_thread());
  EXPECT_EQ(lw_parsed.smem_per_block(), lw_built.smem_per_block());
  EXPECT_EQ(lw_parsed.instruction_count(), lw_built.instruction_count());
}

TEST(SourceEquivalence, EverySourceKernelParses) {
  for (const char* name : {"atax", "bicg", "ex14fj", "matvec2d"}) {
    const auto src = sources::by_name(name);
    ASSERT_FALSE(src.empty()) << name;
    const auto wl = parse_workload(src);
    EXPECT_EQ(wl.name, name);
    EXPECT_FALSE(wl.stages.empty()) << name;
  }
  EXPECT_TRUE(sources::by_name("nope").empty());
}
