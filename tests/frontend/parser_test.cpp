#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "frontend/parser.hpp"

using namespace gpustatic;           // NOLINT
using namespace gpustatic::frontend;  // NOLINT

namespace {

constexpr std::string_view kMinimal = R"(
workload demo(N = 8);
array A[N*N];
array y[N] init zero;
stage scale(t : N) {
  float acc = 0.0;
  unroll for (j = 0; j < N; j++) {
    acc += A[t*N + j];
  }
  y[t] = acc;
}
)";

}  // namespace

TEST(Parser, BuildsWorkloadSkeleton) {
  const auto wl = parse_workload(kMinimal);
  EXPECT_EQ(wl.name, "demo");
  EXPECT_EQ(wl.problem_size, 8);
  ASSERT_EQ(wl.arrays.size(), 2u);
  EXPECT_EQ(wl.arrays[0].name, "A");
  EXPECT_EQ(wl.arrays[0].length, 64);  // N*N folded
  EXPECT_EQ(wl.arrays[0].init, dsl::ArrayInit::Ramp);  // default
  EXPECT_EQ(wl.arrays[1].init, dsl::ArrayInit::Zero);
  ASSERT_EQ(wl.stages.size(), 1u);
  EXPECT_EQ(wl.stages[0].name, "scale");
  EXPECT_EQ(wl.stages[0].domain, 8);
  EXPECT_EQ(wl.stages[0].work_item_var, "t");
}

TEST(Parser, SizeOverrideRescalesEverything) {
  const auto wl = parse_workload(kMinimal, 32);
  EXPECT_EQ(wl.problem_size, 32);
  EXPECT_EQ(wl.arrays[0].length, 32 * 32);
  EXPECT_EQ(wl.stages[0].domain, 32);
}

TEST(Parser, ForLoopCarriesUnrollFlag) {
  const auto wl = parse_workload(kMinimal);
  // body = Seq{LetFloat, For, Store}
  const auto& body = wl.stages[0].body;
  ASSERT_EQ(body->kind, dsl::Stmt::Kind::Seq);
  ASSERT_EQ(body->children.size(), 3u);
  const auto& loop = body->children[1];
  ASSERT_EQ(loop->kind, dsl::Stmt::Kind::For);
  EXPECT_TRUE(loop->unrollable);
  EXPECT_EQ(loop->lo, 0);
  EXPECT_EQ(loop->hi, 8);
}

TEST(Parser, PlainForIsNotUnrollable) {
  const auto wl = parse_workload(R"(
workload w(N = 4);
array y[N] init zero;
stage s(t : N) {
  float acc = 0.0;
  for (j = 0; j < N; j++) { acc += 1.0; }
  y[t] = acc;
}
)");
  const auto& loop = wl.stages[0].body->children[1];
  EXPECT_FALSE(loop->unrollable);
}

TEST(Parser, IfElseWithProbability) {
  const auto wl = parse_workload(R"(
workload w(N = 4);
array y[N] init zero;
stage s(t : N) {
  if (t == 0 || t == N-1) prob(0.25) {
    y[t] = 1.0;
  } else {
    y[t] = 2.0;
  }
}
)");
  const auto& stmt = wl.stages[0].body->children[0];
  ASSERT_EQ(stmt->kind, dsl::Stmt::Kind::If);
  EXPECT_DOUBLE_EQ(stmt->then_prob, 0.25);
  EXPECT_NE(stmt->then_branch, nullptr);
  EXPECT_NE(stmt->else_branch, nullptr);
  ASSERT_NE(stmt->cond, nullptr);
  EXPECT_EQ(stmt->cond->kind, dsl::Cond::Kind::Or);
}

TEST(Parser, AtomicUpdateAndCompoundOps) {
  const auto wl = parse_workload(R"(
workload w(N = 4);
array y[N] init zero;
stage s(t : N) {
  float a = 1.0;
  a += 2.0;
  a -= 0.5;
  a *= 3.0;
  a /= 2.0;
  atomic y[t] += a;
}
)");
  const auto& body = wl.stages[0].body;
  ASSERT_EQ(body->children.size(), 6u);
  EXPECT_EQ(body->children[1]->accum_op, dsl::FloatBinOp::Add);
  EXPECT_EQ(body->children[2]->accum_op, dsl::FloatBinOp::Sub);
  EXPECT_EQ(body->children[3]->accum_op, dsl::FloatBinOp::Mul);
  EXPECT_EQ(body->children[4]->accum_op, dsl::FloatBinOp::Div);
  EXPECT_EQ(body->children[5]->kind, dsl::Stmt::Kind::AtomicAdd);
}

TEST(Parser, NamesAreReusableAfterScopeExit) {
  // The same loop variable in two sibling loops must parse.
  EXPECT_NO_THROW((void)parse_workload(R"(
workload w(N = 4);
array y[N] init zero;
stage s(t : N) {
  float a = 0.0;
  for (j = 0; j < N; j++) { a += 1.0; }
  for (j = 0; j < N; j++) { a += 2.0; }
  y[t] = a;
}
)"));
}

TEST(Parser, ToFloatFoldsParameterExpressions) {
  const auto wl = parse_workload(R"(
workload w(N = 4);
array y[N] init zero;
stage s(t : N) {
  y[t] = tofloat((N+1)*(N+1));
}
)");
  const auto& st = wl.stages[0].body->children[0];
  ASSERT_EQ(st->kind, dsl::Stmt::Kind::Store);
  ASSERT_EQ(st->float_expr->kind, dsl::FloatExpr::Kind::Const);
  EXPECT_DOUBLE_EQ(st->float_expr->value, 25.0);
}

// ---- failure injection -----------------------------------------------------

struct BadSource {
  const char* description;
  const char* source;
  const char* message_fragment;
};

class ParserRejects : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserRejects, WithHelpfulMessage) {
  const BadSource& bad = GetParam();
  try {
    (void)parse_workload(bad.source);
    FAIL() << "expected ParseError for: " << bad.description;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(bad.message_fragment),
              std::string::npos)
        << bad.description << "\nactual message: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SemanticErrors, ParserRejects,
    ::testing::Values(
        BadSource{"missing workload header", "array A[4];",
                  "'workload'"},
        BadSource{"non-positive parameter", "workload w(N = 0);",
                  "must be positive"},
        BadSource{"duplicate array",
                  "workload w(N = 4); array A[N]; array A[N];",
                  "duplicate declaration"},
        BadSource{"no stages", "workload w(N = 4); array A[N];",
                  "no stages"},
        BadSource{"unknown name in body",
                  "workload w(N=4); array y[N]; stage s(t : N) { y[t] = "
                  "ghost; }",
                  "unknown name 'ghost'"},
        BadSource{"plain assign on scalar",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; a = 1.0; y[t] = a; }",
                  "plain '='"},
        BadSource{"int in float context",
                  "workload w(N=4); array y[N]; stage s(t : N) { y[t] = "
                  "t; }",
                  "implicit int->float"},
        BadSource{"float in int context",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; y[a] = 1.0; }",
                  "float"},
        BadSource{"runtime loop bound",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; for (j = 0; j < t; j++) { a += 1.0; } y[t] = "
                  "a; }",
                  "compile-time constant"},
        BadSource{"non-const divisor",
                  "workload w(N=4); array y[N]; stage s(t : N) { int k = "
                  "t / t; y[k] = 1.0; }",
                  "constant divisor"},
        BadSource{"division by zero",
                  "workload w(N=4); array y[N]; stage s(t : N) { int k = "
                  "t / (N - 4); y[k] = 1.0; }",
                  "division by zero"},
        BadSource{"bad init mode",
                  "workload w(N=4); array y[N] init rainbow; stage s(t : "
                  "N) { y[t] = 1.0; }",
                  "unknown init mode"},
        BadSource{"zero domain",
                  "workload w(N=4); array y[N]; stage s(t : N - 4) { "
                  "y[t] = 1.0; }",
                  "positive"},
        BadSource{"loop variable mismatch",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; for (j = 0; k < N; j++) { a += 1.0; } y[t] = "
                  "a; }",
                  "loop condition"},
        BadSource{"probability out of range",
                  "workload w(N=4); array y[N]; stage s(t : N) { if (t "
                  "== 0) prob(1.5) { y[t] = 1.0; } }",
                  "within [0, 1]"},
        BadSource{"atomic to scalar",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; atomic a[t] += 1.0; y[t] = a; }",
                  "not a declared array"},
        BadSource{"parameter shadowing",
                  "workload w(N=4); array N[4]; stage s(t : 4) { N[t] = "
                  "1.0; }",
                  "shadows the workload parameter"},
        BadSource{"array as integer",
                  "workload w(N=4); array A[N]; array y[N]; stage s(t : "
                  "N) { y[A] = 1.0; }",
                  "used as an integer"},
        BadSource{"unterminated block",
                  "workload w(N=4); array y[N]; stage s(t : N) { y[t] = "
                  "1.0;",
                  "unterminated block"},
        BadSource{"inverted loop bounds",
                  "workload w(N=4); array y[N]; stage s(t : N) { float a "
                  "= 0.0; for (j = N; j < 0; j++) { a += 1.0; } y[t] = "
                  "a; }",
                  "inverted"},
        BadSource{"non-constant tofloat",
                  "workload w(N=4); array y[N]; stage s(t : N) { y[t] = "
                  "tofloat(t); }",
                  "compile-time constant"},
        BadSource{"unroll without for",
                  "workload w(N=4); array y[N]; stage s(t : N) { unroll "
                  "y[t] = 1.0; }",
                  "'for'"}));

TEST(ParserErrors, ReportLineNumbers) {
  try {
    (void)parse_workload("workload w(N = 4);\narray A[N];\narray A[N];\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}
