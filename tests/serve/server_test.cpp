// The serve daemon behind the transports: admission policy, request
// dispatch, error isolation (a bad line never kills the session), the
// warm-path promise over the wire, and clean TCP shutdown via the
// async-signal-safe stop().

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace gpustatic;  // NOLINT
using serve::Admission;
using serve::JsonObject;
using serve::ServeOptions;
using serve::Server;

namespace {

/// A cheap tune request line (atax at n=16 resolves in well under a
/// second on the warp engine).
const char* kTuneLine = R"({"op":"tune","kernel":"atax","n":16})";

ServeOptions in_memory_options() {
  ServeOptions opts;
  opts.store_path.clear();  // in-memory store
  return opts;
}

}  // namespace

// ---- admission policy -----------------------------------------------

TEST(Admission, AdmitsUpToMaxInflightImmediately) {
  Admission adm(2, 0);
  EXPECT_TRUE(adm.acquire());
  EXPECT_TRUE(adm.acquire());
  EXPECT_EQ(adm.active(), 2u);
  // Slots full, queue empty: the third request sheds.
  EXPECT_FALSE(adm.acquire());
  adm.release();
  EXPECT_TRUE(adm.acquire());
  adm.release();
  adm.release();
  EXPECT_EQ(adm.active(), 0u);
}

TEST(Admission, QueuedRequestWaitsForAReleasedSlot) {
  Admission adm(1, 1);
  ASSERT_TRUE(adm.acquire());
  std::thread waiter([&] {
    EXPECT_TRUE(adm.acquire());  // blocks until the release below
    adm.release();
  });
  while (adm.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // One waiter queued; the queue is full, so the next request sheds
  // instead of building a backlog.
  EXPECT_FALSE(adm.acquire());
  adm.release();
  waiter.join();
  EXPECT_EQ(adm.active(), 0u);
  EXPECT_EQ(adm.waiting(), 0u);
}

TEST(Admission, StopShedsWaitersAndFutureRequests) {
  Admission adm(1, 4);
  ASSERT_TRUE(adm.acquire());
  std::thread waiter([&] { EXPECT_FALSE(adm.acquire()); });
  while (adm.waiting() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  adm.stop();
  waiter.join();
  EXPECT_FALSE(adm.acquire());
}

// ---- request dispatch -----------------------------------------------

TEST(Server, AnswersPingAndStats) {
  Server server(in_memory_options());
  const JsonObject ping = serve::parse_json_object(
      server.handle_line(R"({"op":"ping","id":1})"));
  EXPECT_EQ(ping.at("status").string, "ok");
  EXPECT_DOUBLE_EQ(ping.at("id").number, 1);

  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("status").string, "ok");
  EXPECT_DOUBLE_EQ(stats.at("requests").number, 2);  // ping + stats
  EXPECT_DOUBLE_EQ(stats.at("searches").number, 0);
}

TEST(Server, MalformedLinesErrorWithoutKillingTheSession) {
  Server server(in_memory_options());
  const JsonObject bad =
      serve::parse_json_object(server.handle_line("not json at all"));
  EXPECT_EQ(bad.at("status").string, "error");
  const JsonObject unknown = serve::parse_json_object(
      server.handle_line(R"({"op":"tune","kernel":"atax","bogus":1})"));
  EXPECT_EQ(unknown.at("status").string, "error");
  // The session is still serving.
  const JsonObject ok =
      serve::parse_json_object(server.handle_line(R"({"op":"ping"})"));
  EXPECT_EQ(ok.at("status").string, "ok");
  EXPECT_EQ(server.counters().errors, 2u);
  EXPECT_EQ(server.counters().requests, 3u);
}

TEST(Server, FailedTunesReportErrorsInBand) {
  Server server(in_memory_options());
  const JsonObject resp = serve::parse_json_object(
      server.handle_line(R"({"op":"tune","kernel":"nosuchkernel"})"));
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_NE(resp.at("error").string.find("nosuchkernel"),
            std::string::npos);
  EXPECT_EQ(server.counters().errors, 1u);
}

TEST(Server, ClampsPerRequestBudgetsToTheAdmissionCaps) {
  ServeOptions opts = in_memory_options();
  opts.max_budget = 2;
  opts.max_search_budget = 10;
  Server server(opts);
  const JsonObject resp = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":16,"budget":1000,)"
      R"("search_budget":100000})"));
  ASSERT_EQ(resp.at("status").string, "ok") << resp.at("error").string;
  EXPECT_TRUE(resp.at("budget_capped").boolean);
  // An in-cap request is not flagged.
  const JsonObject small = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":16,"budget":1,"search_budget":5})"));
  ASSERT_EQ(small.at("status").string, "ok");
  EXPECT_FALSE(small.at("budget_capped").boolean);
}

TEST(Server, ShedsTuneRequestsWhenAtCapacity) {
  ServeOptions opts = in_memory_options();
  opts.max_inflight = 1;
  opts.max_queue = 0;
  Server server(opts);
  // Occupy the only slot directly — deterministic, no racing searches.
  ASSERT_TRUE(server.admission().acquire());
  const JsonObject shed =
      serve::parse_json_object(server.handle_line(kTuneLine));
  EXPECT_EQ(shed.at("status").string, "shed");
  EXPECT_TRUE(shed.at("retry").boolean);
  EXPECT_EQ(server.counters().shed, 1u);
  // Pings bypass admission: the daemon stays observable under load.
  EXPECT_EQ(serve::parse_json_object(
                server.handle_line(R"({"op":"ping"})"))
                .at("status")
                .string,
            "ok");
  server.admission().release();
  const JsonObject ok =
      serve::parse_json_object(server.handle_line(kTuneLine));
  EXPECT_EQ(ok.at("status").string, "ok") << ok.at("error").string;
}

TEST(Server, StatsAlwaysCarriesTheModelFields) {
  // No model configured: the fields still render (false/0/0) so
  // clients never branch on field existence.
  Server server(in_memory_options());
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  ASSERT_EQ(stats.count("model_loaded"), 1u);
  ASSERT_EQ(stats.count("model_version"), 1u);
  ASSERT_EQ(stats.count("model_records"), 1u);
  EXPECT_FALSE(stats.at("model_loaded").boolean);
  EXPECT_DOUBLE_EQ(stats.at("model_version").number, 0);
  EXPECT_DOUBLE_EQ(stats.at("model_records").number, 0);
}

TEST(Server, RetrainOnAnEmptyStoreFailsInBandAndKeepsServing) {
  Server server(in_memory_options());
  const JsonObject resp = serve::parse_json_object(
      server.handle_line(R"({"op":"retrain","id":6})"));
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_DOUBLE_EQ(resp.at("id").number, 6);
  EXPECT_NE(resp.at("error").string.find("not enough training data"),
            std::string::npos)
      << resp.at("error").string;
  EXPECT_EQ(server.counters().errors, 1u);
  // Stats still reports no model after the failed retrain.
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_FALSE(stats.at("model_loaded").boolean);
}

TEST(Server, RetrainGoesThroughAdmissionLikeTune) {
  // Training is as expensive as a search; it must not bypass the
  // inflight cap.
  ServeOptions opts = in_memory_options();
  opts.max_inflight = 1;
  opts.max_queue = 0;
  Server server(opts);
  ASSERT_TRUE(server.admission().acquire());
  const JsonObject shed = serve::parse_json_object(
      server.handle_line(R"({"op":"retrain"})"));
  EXPECT_EQ(shed.at("status").string, "shed");
  EXPECT_TRUE(shed.at("retry").boolean);
  server.admission().release();
}

// ---- the warm-path promise over the wire ----------------------------

TEST(Server, UnknownAnalyticModeErrorsInBand) {
  Server server(in_memory_options());
  const JsonObject resp = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":16,"analytic":"quantum"})"));
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_NE(resp.at("error").string.find("quantum"), std::string::npos);
  EXPECT_NE(resp.at("error").string.find("classic"), std::string::npos);
  EXPECT_NE(resp.at("error").string.find("wave"), std::string::npos);
  // The session is still serving.
  const JsonObject ok =
      serve::parse_json_object(server.handle_line(R"({"op":"ping"})"));
  EXPECT_EQ(ok.at("status").string, "ok");
}

TEST(Server, InvalidDefaultAnalyticModeFailsConstruction) {
  ServeOptions opts = in_memory_options();
  opts.analytic_mode = "quantum";
  EXPECT_THROW(Server{opts}, gpustatic::Error);
}

TEST(Server, StatsReportAnalyticModeAndPerModeSearchCounts) {
  Server server(in_memory_options());
  JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("analytic_mode").string, "classic");
  EXPECT_DOUBLE_EQ(stats.at("classic_searches").number, 0);
  EXPECT_DOUBLE_EQ(stats.at("wave_searches").number, 0);

  // One explicit wave tune, one defaulted (classic) tune.
  const JsonObject wave = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":16,"analytic":"wave"})"));
  ASSERT_EQ(wave.at("status").string, "ok") << wave.at("error").string;
  EXPECT_EQ(wave.at("analytic").string, "wave");
  const JsonObject classic =
      serve::parse_json_object(server.handle_line(kTuneLine));
  ASSERT_EQ(classic.at("status").string, "ok");
  EXPECT_EQ(classic.at("analytic").string, "classic");

  stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_DOUBLE_EQ(stats.at("wave_searches").number, 1);
  EXPECT_DOUBLE_EQ(stats.at("classic_searches").number, 1);
}

TEST(Server, DefaultAnalyticModeSubstitutesIntoBareRequests) {
  ServeOptions opts = in_memory_options();
  opts.analytic_mode = "wave";
  Server server(opts);
  // No "analytic" field: the server's default applies and is echoed.
  const JsonObject resp =
      serve::parse_json_object(server.handle_line(kTuneLine));
  ASSERT_EQ(resp.at("status").string, "ok") << resp.at("error").string;
  EXPECT_EQ(resp.at("analytic").string, "wave");
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("analytic_mode").string, "wave");
  EXPECT_DOUBLE_EQ(stats.at("wave_searches").number, 1);
  EXPECT_DOUBLE_EQ(stats.at("classic_searches").number, 0);
}

TEST(Server, WarmRepeatOverThePipeRunsNothingFresh) {
  Server server(in_memory_options());
  std::istringstream in(std::string(kTuneLine) + "\n" + kTuneLine +
                        "\n" + R"({"op":"query","kernel":"atax","n":16})" +
                        "\n");
  std::ostringstream out;
  EXPECT_EQ(server.run_pipe(in, out), 0);

  std::istringstream lines(out.str());
  std::string cold_line, warm_line, query_line;
  ASSERT_TRUE(std::getline(lines, cold_line));
  ASSERT_TRUE(std::getline(lines, warm_line));
  ASSERT_TRUE(std::getline(lines, query_line));

  const JsonObject cold = serve::parse_json_object(cold_line);
  ASSERT_EQ(cold.at("status").string, "ok") << cold.at("error").string;
  EXPECT_GT(cold.at("fresh").number, 0);
  EXPECT_GT(cold.at("compiles").number, 0);

  const JsonObject warm = serve::parse_json_object(warm_line);
  ASSERT_EQ(warm.at("status").string, "ok");
  EXPECT_DOUBLE_EQ(warm.at("fresh").number, 0);
  EXPECT_DOUBLE_EQ(warm.at("compiles").number, 0);
  EXPECT_EQ(warm.at("best").string, cold.at("best").string);

  const JsonObject query = serve::parse_json_object(query_line);
  EXPECT_EQ(query.at("status").string, "ok");
  EXPECT_TRUE(query.at("found").boolean);
  EXPECT_EQ(query.at("best").string, cold.at("best").string);
}

TEST(Server, PipeSkipsBlankLinesAndSurvivesGarbage) {
  Server server(in_memory_options());
  std::istringstream in("\n\nnot json\n{\"op\":\"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.run_pipe(in, out), 0);
  std::istringstream lines(out.str());
  std::string first, second, extra;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(std::getline(lines, extra));  // blanks produce no output
  EXPECT_EQ(serve::parse_json_object(first).at("status").string, "error");
  EXPECT_EQ(serve::parse_json_object(second).at("status").string, "ok");
}

// ---- TCP transport --------------------------------------------------

namespace {

/// Connect to the test server, send `lines`, read one response line
/// each, then close.
std::vector<std::string> tcp_exchange(int port,
                                      const std::vector<std::string>& lines) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr),
            0);
  std::vector<std::string> responses;
  std::string buffer;
  char chunk[4096];
  for (const std::string& line : lines) {
    const std::string out = line + "\n";
    EXPECT_EQ(send(fd, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    while (buffer.find('\n') == std::string::npos) {
      const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(got));
    }
    const std::size_t nl = buffer.find('\n');
    if (nl == std::string::npos) break;
    responses.push_back(buffer.substr(0, nl));
    buffer.erase(0, nl + 1);
  }
  close(fd);
  return responses;
}

}  // namespace

TEST(Server, TcpDropsClientsThatStreamWithoutNewline) {
  ServeOptions opts = in_memory_options();
  opts.port = 0;
  opts.max_line_bytes = 128;
  Server server(opts);
  std::ostringstream log;
  std::thread daemon([&] { EXPECT_EQ(server.run_tcp(log), 0); });
  while (server.bound_port() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.bound_port()));
  ASSERT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr),
            0);
  // Far past the cap, never a newline: the server must answer once with
  // status:"error" and close, not buffer indefinitely.
  const std::string flood(4096, 'x');
  ASSERT_EQ(send(fd, flood.data(), flood.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(flood.size()));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;  // server closed the connection
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  close(fd);

  const std::size_t nl = buffer.find('\n');
  ASSERT_NE(nl, std::string::npos) << buffer;
  const JsonObject response = serve::parse_json_object(buffer.substr(0, nl));
  EXPECT_EQ(response.at("status").string, "error");
  EXPECT_NE(response.at("error").string.find("exceeds"),
            std::string::npos);

  server.stop();
  daemon.join();
  EXPECT_GE(server.counters().errors, 1u);
}

TEST(Server, TcpServesConcurrentClientsAndStopsCleanly) {
  ServeOptions opts = in_memory_options();
  opts.port = 0;  // ephemeral
  Server server(opts);
  std::ostringstream log;
  std::thread daemon([&] { EXPECT_EQ(server.run_tcp(log), 0); });
  while (server.bound_port() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const int port = server.bound_port();

  std::vector<std::vector<std::string>> replies(3);
  std::vector<std::thread> clients;
  clients.reserve(replies.size());
  for (std::size_t i = 0; i < replies.size(); ++i)
    clients.emplace_back([&, i] {
      replies[i] = tcp_exchange(
          port, {R"({"op":"ping"})", kTuneLine, R"({"op":"stats"})"});
    });
  for (std::thread& t : clients) t.join();

  for (const std::vector<std::string>& lines : replies) {
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(serve::parse_json_object(lines[0]).at("status").string,
              "ok");
    const JsonObject tune = serve::parse_json_object(lines[1]);
    EXPECT_EQ(tune.at("status").string, "ok") << lines[1];
  }

  // stop() is the SIGTERM path: drain, persist, exit 0.
  server.stop();
  daemon.join();
  EXPECT_NE(log.str().find("listening on 127.0.0.1:"), std::string::npos);
  EXPECT_NE(log.str().find("shut down cleanly"), std::string::npos);
  // The three concurrent identical tunes cost at most... exactly the
  // searches the single-flight let through; all clients got answers.
  EXPECT_GE(server.service().stats().requests, 3u);
}

TEST(Server, StatsCarryPerBackendCompileCacheCounters) {
  Server server(in_memory_options());
  // Before any tune: every registered backend reports zeroed counters
  // (the stable-field-set contract).
  JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  ASSERT_EQ(stats.count("cache_ptx_hits"), 1u);
  ASSERT_EQ(stats.count("cache_ptx_misses"), 1u);
  ASSERT_EQ(stats.count("cache_cref_hits"), 1u);
  ASSERT_EQ(stats.count("cache_cref_misses"), 1u);
  EXPECT_DOUBLE_EQ(stats.at("cache_ptx_misses").number, 0);

  // One tune compiles through the ptx backend; the counters move.
  const JsonObject tune = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":64,"method":"rule"})"));
  ASSERT_EQ(tune.at("status").string, "ok");
  stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_GT(stats.at("cache_ptx_misses").number, 0);
  EXPECT_DOUBLE_EQ(stats.at("cache_cref_misses").number, 0);
}

TEST(Server, UnknownBackendFieldAnswersInBandError) {
  Server server(in_memory_options());
  const JsonObject resp = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","backend":"nvvm"})"));
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_NE(resp.at("error").string.find("nvvm"), std::string::npos);
  EXPECT_NE(resp.at("error").string.find("ptx"), std::string::npos);
  EXPECT_NE(resp.at("error").string.find("cref"), std::string::npos);
  // Still serving afterwards.
  const JsonObject ping = serve::parse_json_object(
      server.handle_line(R"({"op":"ping","id":3})"));
  EXPECT_EQ(ping.at("status").string, "ok");
}

// ---- deadlines and robustness counters ------------------------------

TEST(Admission, DeadlineBoundedWaitTimesOutDistinctFromShed) {
  Admission adm(1, 2);
  ASSERT_TRUE(adm.acquire());
  // Queued, then the deadline expires: TimedOut, not Shed — the caller
  // must report timed_out instead of inviting a retry.
  EXPECT_EQ(adm.acquire(common::Deadline::after_ms(30)),
            Admission::Admit::TimedOut);
  EXPECT_EQ(adm.waiting(), 0u);  // the waiter fully unregistered
  adm.release();
  // With a free slot the same deadline admits immediately.
  EXPECT_EQ(adm.acquire(common::Deadline::after_ms(30)),
            Admission::Admit::Admitted);
  adm.release();
  // A full queue sheds immediately — the deadline never starts ticking.
  Admission full(1, 0);
  ASSERT_TRUE(full.acquire());
  EXPECT_EQ(full.acquire(common::Deadline::after_ms(30)),
            Admission::Admit::Shed);
  full.release();
}

TEST(Server, DeadlineSpentInTheAdmissionQueueTimesOutInBand) {
  ServeOptions opts = in_memory_options();
  opts.max_inflight = 1;
  opts.max_queue = 4;
  Server server(opts);
  ASSERT_TRUE(server.admission().acquire());  // occupy the only slot
  const auto start = std::chrono::steady_clock::now();
  const JsonObject resp = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":16,"deadline_ms":50})"));
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_TRUE(resp.at("timed_out").boolean);
  EXPECT_LT(elapsed.count(), 2000);  // bounded, generous for CI load
  EXPECT_EQ(server.counters().timed_out, 1u);
  EXPECT_EQ(server.counters().shed, 0u);  // a timeout is not a shed
  server.admission().release();
  // The slot freed up: the same request without a deadline succeeds.
  const JsonObject ok =
      serve::parse_json_object(server.handle_line(kTuneLine));
  EXPECT_EQ(ok.at("status").string, "ok") << ok.at("error").string;
}

TEST(Server, MidSearchDeadlineAnswersTimedOutWithPartialAccounting) {
  Server server(in_memory_options());
  const JsonObject resp = serve::parse_json_object(server.handle_line(
      R"({"op":"tune","kernel":"atax","n":64,"method":"random",)"
      R"("search_budget":2000,"deadline_ms":1})"));
  EXPECT_EQ(resp.at("status").string, "error");
  EXPECT_TRUE(resp.at("timed_out").boolean);
  // Partial accounting rides the error response.
  ASSERT_EQ(resp.count("evaluations"), 1u);
  ASSERT_EQ(resp.count("fresh"), 1u);
  EXPECT_EQ(server.counters().timed_out, 1u);
  EXPECT_EQ(server.service().stats().timed_out, 1u);
}

TEST(Server, StatsCarryRobustnessAndDegradationFields) {
  Server server(in_memory_options());
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  // The chaos dashboard renders a stable field set from day one.
  ASSERT_EQ(stats.count("timed_out"), 1u);
  ASSERT_EQ(stats.count("failpoint_trips"), 1u);
  ASSERT_EQ(stats.count("store_save_retries"), 1u);
  ASSERT_EQ(stats.count("store_save_failures"), 1u);
  ASSERT_EQ(stats.count("model_load_error"), 1u);
  EXPECT_DOUBLE_EQ(stats.at("timed_out").number, 0);
  EXPECT_DOUBLE_EQ(stats.at("store_save_retries").number, 0);
  EXPECT_EQ(stats.at("model_load_error").string, "");
}

TEST(Server, CorruptModelFileSurfacesInStatsNotAtStartup) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "chaos_corrupt.model")
          .string();
  {
    std::ofstream f(path);
    f << "this is not a cost model\n";
  }
  ServeOptions opts = in_memory_options();
  opts.model_path = path;
  // Lenient load: a corrupt model degrades (analytic ranking), never
  // fails the daemon's start.
  Server server(opts);
  const JsonObject stats =
      serve::parse_json_object(server.handle_line(R"({"op":"stats"})"));
  EXPECT_FALSE(stats.at("model_loaded").boolean);
  EXPECT_NE(stats.at("model_load_error").string.find("chaos_corrupt.model"),
            std::string::npos)
      << stats.at("model_load_error").string;
  std::filesystem::remove(path);
}

// ---- shutdown races -------------------------------------------------

TEST(Server, StopRacingQueuedTuneAndRetrainWaitersDrainsInBand) {
  ServeOptions opts = in_memory_options();
  opts.max_inflight = 1;
  opts.max_queue = 8;
  Server server(opts);
  ASSERT_TRUE(server.admission().acquire());  // force every op to queue
  std::vector<std::string> responses(4);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < responses.size(); ++i)
    clients.emplace_back([&server, &responses, i] {
      responses[i] = server.handle_line(
          i % 2 == 0 ? kTuneLine : R"({"op":"retrain"})");
    });
  while (server.admission().waiting() < responses.size())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.admission().stop();  // shutdown races the queue waiters
  for (std::thread& t : clients) t.join();
  for (const std::string& line : responses) {
    // Every waiter drains with an in-band shed — never a hang, never a
    // torn response.
    const JsonObject resp = serve::parse_json_object(line);
    EXPECT_EQ(resp.at("status").string, "shed") << line;
  }
  server.admission().release();
}

TEST(Server, TcpStopRacingAnInFlightTuneNeverHangs) {
  ServeOptions opts = in_memory_options();
  opts.port = 0;
  Server server(opts);
  std::ostringstream log;
  std::thread daemon([&] { EXPECT_EQ(server.run_tcp(log), 0); });
  while (server.bound_port() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.bound_port()));
  ASSERT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr),
            0);
  const std::string line = std::string(kTuneLine) + "\n";
  ASSERT_EQ(send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  // Let the handler pick the request up, then race shutdown against it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  // The client sees either a complete response line or a clean close —
  // and the daemon joins either way (the no-hang gate: the test's ctest
  // timeout is the enforcement).
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  close(fd);
  const std::size_t nl = buffer.find('\n');
  if (nl != std::string::npos) {
    const JsonObject resp = serve::parse_json_object(buffer.substr(0, nl));
    EXPECT_TRUE(resp.at("status").string == "ok" ||
                resp.at("status").string == "error" ||
                resp.at("status").string == "shed")
        << buffer;
  }
  daemon.join();
  EXPECT_NE(log.str().find("shut down cleanly"), std::string::npos);
}
