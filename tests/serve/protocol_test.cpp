// The serve wire protocol: flat line-delimited JSON in both directions.
// These tests pin the grammar (what parses, what is rejected and how),
// the request mapping onto core::TuneRequest, and the render/parse
// round trip clients rely on.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/error.hpp"
#include "serve/protocol.hpp"

using namespace gpustatic;  // NOLINT
using serve::JsonObject;
using serve::JsonValue;
using serve::JsonWriter;
using serve::WireRequest;

// ---- the JSON layer -------------------------------------------------

TEST(WireJson, ParsesFlatObjects) {
  const JsonObject obj = serve::parse_json_object(
      R"(  {"s" : "hi" , "i": 42, "f": -2.5, "t": true, "x": null}  )");
  ASSERT_EQ(obj.size(), 5u);
  EXPECT_EQ(obj.at("s").kind, JsonValue::Kind::String);
  EXPECT_EQ(obj.at("s").string, "hi");
  EXPECT_EQ(obj.at("i").kind, JsonValue::Kind::Number);
  EXPECT_DOUBLE_EQ(obj.at("i").number, 42);
  EXPECT_DOUBLE_EQ(obj.at("f").number, -2.5);
  EXPECT_EQ(obj.at("t").kind, JsonValue::Kind::Bool);
  EXPECT_TRUE(obj.at("t").boolean);
  EXPECT_EQ(obj.at("x").kind, JsonValue::Kind::Null);
  EXPECT_TRUE(serve::parse_json_object("{}").empty());
}

TEST(WireJson, DecodesStringEscapes) {
  const JsonObject obj = serve::parse_json_object(
      R"({"k":"a\"b\\c\nd\teA"})");
  EXPECT_EQ(obj.at("k").string, "a\"b\\c\nd\teA");
}

TEST(WireJson, RejectsMalformedInput) {
  // Each rejected shape, one line of rationale in the parser.
  EXPECT_THROW((void)serve::parse_json_object(""), ParseError);
  EXPECT_THROW((void)serve::parse_json_object("not json"), ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":1)"), ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a" 1})"), ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":})"), ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":"x)"), ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":1} extra)"),
               ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":1,"a":2})"),
               ParseError);  // duplicate key
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":{"b":1}})"),
               ParseError);  // nested object: protocol is flat
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":[1,2]})"),
               ParseError);  // nested array
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":truthy})"),
               ParseError);
  EXPECT_THROW((void)serve::parse_json_object(R"({"a":1.2.3})"),
               ParseError);
}

TEST(WireJson, WriterEscapesAndOrdersFields) {
  JsonWriter w;
  w.field("status", "ok");
  w.field("text", "a\"b\\c\nd");
  w.field("count", std::uint64_t{7});
  w.field("n", std::int64_t{-3});
  w.field("flag", true);
  EXPECT_EQ(w.str(),
            "{\"status\":\"ok\",\"text\":\"a\\\"b\\\\c\\nd\","
            "\"count\":7,\"n\":-3,\"flag\":true}");
}

TEST(WireJson, WriterRendersNonFiniteNumbersAsNull) {
  JsonWriter w;
  w.number_field("bad", std::numeric_limits<double>::quiet_NaN());
  w.number_field("good", 0.5);
  EXPECT_EQ(w.str(), "{\"bad\":null,\"good\":0.5}");
}

TEST(WireJson, WriterOutputReparsesExactly) {
  JsonWriter w;
  w.field("s", "tab\there").field("u", std::uint64_t{9}).field("b", false);
  const JsonObject back = serve::parse_json_object(w.str());
  EXPECT_EQ(back.at("s").string, "tab\there");
  EXPECT_DOUBLE_EQ(back.at("u").number, 9);
  EXPECT_FALSE(back.at("b").boolean);
}

// ---- request parsing ------------------------------------------------

TEST(WireRequestParse, MapsEveryTuneFieldOntoTheServiceRequest) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","gpu":"P100","n":64,)"
      R"("method":"random","seed":99,"budget":8,"search_budget":50,)"
      R"("engine":"analytic","store_read":false,"store_write":false,)"
      R"("id":12})");
  EXPECT_EQ(req.op, "tune");
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 12u);
  EXPECT_EQ(req.tune.kernel, "atax");
  EXPECT_EQ(req.tune.gpu, "P100");
  EXPECT_EQ(req.tune.n, 64);
  EXPECT_EQ(req.tune.method, "random");
  EXPECT_EQ(req.tune.search.seed, 99u);
  EXPECT_EQ(req.tune.hybrid.empirical_budget, 8u);
  EXPECT_EQ(req.tune.search.budget, 50u);
  EXPECT_EQ(req.tune.run.engine, sim::Engine::Analytic);
  EXPECT_FALSE(req.tune.store.read);
  EXPECT_FALSE(req.tune.store.write);
}

TEST(WireRequestParse, DefaultsMatchTheCli) {
  const WireRequest req =
      serve::parse_request(R"({"op":"tune","kernel":"bicg"})");
  EXPECT_FALSE(req.has_id);
  EXPECT_EQ(req.tune.gpu, "K20");
  EXPECT_EQ(req.tune.n, 0);  // 0 = per-kernel default, like the CLI
  EXPECT_EQ(req.tune.method, "rule");
  EXPECT_TRUE(req.tune.store.read);
  EXPECT_TRUE(req.tune.store.write);
}

TEST(WireRequestParse, RejectsUnknownAndMistypedFields) {
  // A typoed knob must not silently tune the wrong thing.
  EXPECT_THROW(
      (void)serve::parse_request(R"({"op":"tune","kernel":"atax","bugdet":4})"),
      ParseError);
  EXPECT_THROW((void)serve::parse_request(R"({"kernel":"atax"})"),
               ParseError);  // missing op
  EXPECT_THROW((void)serve::parse_request(R"({"op":"dance"})"),
               ParseError);  // unknown op
  EXPECT_THROW((void)serve::parse_request(R"({"op":"tune"})"),
               ParseError);  // tune needs a kernel
  EXPECT_THROW((void)serve::parse_request(R"({"op":"query"})"),
               ParseError);  // query needs a kernel
  EXPECT_THROW(
      (void)serve::parse_request(R"({"op":"tune","kernel":42})"),
      ParseError);  // kernel must be a string
  EXPECT_THROW(
      (void)serve::parse_request(R"({"op":"tune","kernel":"atax","n":1.5})"),
      ParseError);  // n must be an integer
  EXPECT_THROW(
      (void)serve::parse_request(
          R"({"op":"tune","kernel":"atax","engine":"cuda"})"),
      ParseError);  // unknown engine
  EXPECT_THROW(
      (void)serve::parse_request(
          R"({"op":"tune","kernel":"atax","id":-1})"),
      ParseError);  // negative id
  EXPECT_THROW(
      (void)serve::parse_request(
          R"({"op":"tune","kernel":"atax","store_read":1})"),
      ParseError);  // booleans are not numbers
}

TEST(WireRequestParse, OpsWithoutAKernelParse) {
  EXPECT_EQ(serve::parse_request(R"({"op":"ping"})").op, "ping");
  EXPECT_EQ(serve::parse_request(R"({"op":"stats","id":3})").op, "stats");
  EXPECT_EQ(serve::parse_request(R"({"op":"retrain","id":4})").op,
            "retrain");
}

TEST(WireRequestParse, UnknownOpErrorNamesEveryOp) {
  // The error is the client's only documentation over the wire.
  try {
    (void)serve::parse_request(R"({"op":"dance"})");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    for (const char* op : {"tune", "query", "stats", "ping", "retrain"})
      EXPECT_NE(what.find(op), std::string::npos) << what;
  }
}

// ---- render/parse round trip ----------------------------------------

TEST(WireRequestRoundTrip, RenderedRequestsReparseIdentically) {
  WireRequest req;
  req.op = "tune";
  req.id = 41;
  req.has_id = true;
  req.tune.kernel = "matvec2d";
  req.tune.gpu = "M40";
  req.tune.n = 128;
  req.tune.method = "hybrid";
  req.tune.search.seed = 7;
  req.tune.hybrid.empirical_budget = 6;
  req.tune.run.engine = sim::Engine::Analytic;
  req.tune.store.write = false;

  const WireRequest back = serve::parse_request(serve::render_request(req));
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.tune.kernel, req.tune.kernel);
  EXPECT_EQ(back.tune.gpu, req.tune.gpu);
  EXPECT_EQ(back.tune.n, req.tune.n);
  EXPECT_EQ(back.tune.method, req.tune.method);
  EXPECT_EQ(back.tune.search.seed, req.tune.search.seed);
  EXPECT_EQ(back.tune.hybrid.empirical_budget,
            req.tune.hybrid.empirical_budget);
  EXPECT_EQ(back.tune.run.engine, req.tune.run.engine);
  EXPECT_TRUE(back.tune.store.read);
  EXPECT_FALSE(back.tune.store.write);
}

// ---- response rendering ---------------------------------------------

TEST(WireResponse, TuneResponseCarriesTheWarmPathAccounting) {
  WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","id":5})");
  core::TuneResponse response;
  response.kernel = "atax";
  response.gpu = "K20";
  response.n = 32;
  response.method = "rule";
  response.fresh_evaluations = 0;
  response.warm_hits = 320;
  response.compiles = 0;
  response.deduplicated = true;
  const std::string line =
      serve::render_tune_response(req, response, /*budget_capped=*/true);
  const serve::JsonObject obj = serve::parse_json_object(line);
  EXPECT_EQ(obj.at("status").string, "ok");
  EXPECT_DOUBLE_EQ(obj.at("id").number, 5);
  EXPECT_DOUBLE_EQ(obj.at("fresh").number, 0);
  EXPECT_DOUBLE_EQ(obj.at("warm").number, 320);
  EXPECT_DOUBLE_EQ(obj.at("compiles").number, 0);
  EXPECT_TRUE(obj.at("deduplicated").boolean);
  EXPECT_TRUE(obj.at("budget_capped").boolean);
  // Always present, so clients never branch on field existence.
  ASSERT_EQ(obj.count("learned_ranker"), 1u);
  EXPECT_FALSE(obj.at("learned_ranker").boolean);
}

TEST(WireResponse, RetrainResponseCarriesTheTrainingSummary) {
  const WireRequest req =
      serve::parse_request(R"({"op":"retrain","id":9})");
  core::TuningService::RetrainResult result;
  result.store_records = 4500;
  result.trained_rows = 3375;
  result.validation_rows = 1125;
  result.mean_spearman = 0.92;
  result.generation = 3;
  const serve::JsonObject obj = serve::parse_json_object(
      serve::render_retrain_response(req, result));
  EXPECT_EQ(obj.at("status").string, "ok");
  EXPECT_EQ(obj.at("op").string, "retrain");
  EXPECT_DOUBLE_EQ(obj.at("id").number, 9);
  EXPECT_DOUBLE_EQ(obj.at("store_records").number, 4500);
  EXPECT_DOUBLE_EQ(obj.at("trained").number, 3375);
  EXPECT_DOUBLE_EQ(obj.at("validation").number, 1125);
  EXPECT_DOUBLE_EQ(obj.at("mean_spearman").number, 0.92);
  EXPECT_DOUBLE_EQ(obj.at("model_generation").number, 3);
}

TEST(WireResponse, FailedRetrainRendersAsError) {
  const WireRequest req =
      serve::parse_request(R"({"op":"retrain","id":10})");
  core::TuningService::RetrainResult result;
  result.error = "not enough training data";
  const serve::JsonObject obj = serve::parse_json_object(
      serve::render_retrain_response(req, result));
  EXPECT_EQ(obj.at("status").string, "error");
  EXPECT_DOUBLE_EQ(obj.at("id").number, 10);
  EXPECT_EQ(obj.at("error").string, "not enough training data");
}

TEST(WireResponse, FailedTuneRendersAsError) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","id":8})");
  core::TuneResponse response;
  response.error = "no such GPU";
  const serve::JsonObject obj = serve::parse_json_object(
      serve::render_tune_response(req, response, false));
  EXPECT_EQ(obj.at("status").string, "error");
  EXPECT_DOUBLE_EQ(obj.at("id").number, 8);
  EXPECT_EQ(obj.at("error").string, "no such GPU");
}

TEST(WireResponse, ShedAndErrorResponsesEchoTheRequestId) {
  const WireRequest req =
      serve::parse_request(R"({"op":"tune","kernel":"atax","id":2})");
  const serve::JsonObject shed =
      serve::parse_json_object(serve::render_shed_response(req, "full"));
  EXPECT_EQ(shed.at("status").string, "shed");
  EXPECT_TRUE(shed.at("retry").boolean);
  EXPECT_DOUBLE_EQ(shed.at("id").number, 2);

  const serve::JsonObject err = serve::parse_json_object(
      serve::render_error_response(nullptr, "bad line"));
  EXPECT_EQ(err.at("status").string, "error");
  EXPECT_EQ(err.count("id"), 0u);  // no id when the line never parsed
}

TEST(WireRequestParse, BackendFieldSelectsTheCodegenBackend) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","backend":"cref"})");
  EXPECT_EQ(req.tune.run.backend, "cref");
  // Unset means the default backend, same as the CLI.
  const WireRequest plain =
      serve::parse_request(R"({"op":"tune","kernel":"atax"})");
  EXPECT_EQ(plain.tune.run.backend, "ptx");
}

TEST(WireRequestParse, UnknownBackendErrorNamesRegisteredBackends) {
  try {
    (void)serve::parse_request(
        R"({"op":"tune","kernel":"atax","backend":"nvvm"})");
    FAIL() << "expected ParseError";
  } catch (const gpustatic::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nvvm"), std::string::npos);
    EXPECT_NE(what.find("ptx"), std::string::npos);
    EXPECT_NE(what.find("cref"), std::string::npos);
  }
}

TEST(WireRequestRoundTrip, BackendSurvivesRenderAndReparse) {
  WireRequest req;
  req.op = "tune";
  req.tune.kernel = "atax";
  req.tune.run.backend = "cref";
  const WireRequest back = serve::parse_request(serve::render_request(req));
  EXPECT_EQ(back.tune.run.backend, "cref");
}

TEST(WireRequestParse, AnalyticFieldSelectsTheAnalyticMode) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","analytic":"wave"})");
  EXPECT_EQ(req.tune.run.analytic.mode, sim::AnalyticMode::Wave);
  EXPECT_TRUE(req.has_analytic);
  // Unset leaves the classic default and records that the client did
  // not choose, so the server can substitute its own default.
  const WireRequest plain =
      serve::parse_request(R"({"op":"tune","kernel":"atax"})");
  EXPECT_EQ(plain.tune.run.analytic.mode, sim::AnalyticMode::Classic);
  EXPECT_FALSE(plain.has_analytic);
}

TEST(WireRequestParse, UnknownAnalyticModeErrorEnumeratesModes) {
  try {
    (void)serve::parse_request(
        R"({"op":"tune","kernel":"atax","analytic":"quantum"})");
    FAIL() << "expected ParseError";
  } catch (const gpustatic::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos);
    EXPECT_NE(what.find("classic"), std::string::npos);
    EXPECT_NE(what.find("wave"), std::string::npos);
  }
}

TEST(WireRequestRoundTrip, AnalyticModeSurvivesRenderAndReparse) {
  WireRequest req;
  req.op = "tune";
  req.tune.kernel = "atax";
  req.tune.run.analytic.mode = sim::AnalyticMode::Wave;
  const WireRequest back = serve::parse_request(serve::render_request(req));
  EXPECT_EQ(back.tune.run.analytic.mode, sim::AnalyticMode::Wave);
  EXPECT_TRUE(back.has_analytic);
}

TEST(WireRequestParse, DeadlineMsFieldParsesAndValidates) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","deadline_ms":250})");
  EXPECT_EQ(req.deadline_ms, 250);
  // Absent = no deadline.
  EXPECT_EQ(serve::parse_request(R"({"op":"tune","kernel":"atax"})")
                .deadline_ms,
            0);
  // A non-positive deadline is a client bug, rejected loudly.
  EXPECT_THROW((void)serve::parse_request(
                   R"({"op":"tune","kernel":"atax","deadline_ms":0})"),
               gpustatic::ParseError);
  EXPECT_THROW((void)serve::parse_request(
                   R"({"op":"tune","kernel":"atax","deadline_ms":-5})"),
               gpustatic::ParseError);
}

TEST(WireRequestRoundTrip, DeadlineSurvivesRenderAndReparse) {
  WireRequest req =
      serve::parse_request(R"({"op":"tune","kernel":"atax"})");
  req.deadline_ms = 750;
  const WireRequest back =
      serve::parse_request(serve::render_request(req));
  EXPECT_EQ(back.deadline_ms, 750);
}

TEST(WireResponse, TimedOutTuneCarriesPartialAccounting) {
  const WireRequest req = serve::parse_request(
      R"({"op":"tune","kernel":"atax","id":4,"deadline_ms":100})");
  core::TuneResponse response;
  response.error = "deadline exceeded";
  response.timed_out = true;
  response.fresh_evaluations = 7;
  response.warm_hits = 2;
  response.outcome.search.distinct_evaluations = 9;
  response.outcome.search.best_time = 0.5;
  response.outcome.search.best_params.threads_per_block = 96;
  const serve::JsonObject obj = serve::parse_json_object(
      serve::render_tune_response(req, response, false));
  EXPECT_EQ(obj.at("status").string, "error");
  EXPECT_DOUBLE_EQ(obj.at("id").number, 4);
  EXPECT_TRUE(obj.at("timed_out").boolean);
  EXPECT_DOUBLE_EQ(obj.at("evaluations").number, 9);
  EXPECT_DOUBLE_EQ(obj.at("fresh").number, 7);
  EXPECT_DOUBLE_EQ(obj.at("warm").number, 2);
  // Best-so-far rides along when the cut search had one.
  EXPECT_DOUBLE_EQ(obj.at("time_ms").number, 0.5);
  EXPECT_NE(obj.at("best").string.find("96"), std::string::npos);
}

TEST(WireResponse, PlainFailureCarriesNoTimedOutAccounting) {
  const WireRequest req =
      serve::parse_request(R"({"op":"tune","kernel":"atax"})");
  core::TuneResponse response;
  response.error = "no such GPU";
  const serve::JsonObject obj = serve::parse_json_object(
      serve::render_tune_response(req, response, false));
  EXPECT_EQ(obj.at("status").string, "error");
  EXPECT_EQ(obj.count("timed_out"), 0u);
  EXPECT_EQ(obj.count("evaluations"), 0u);
}
