#include "sim/context.hpp"

#include <gtest/gtest.h>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"
#include "tuner/space.hpp"

namespace arch = gpustatic::arch;
namespace codegen = gpustatic::codegen;
namespace dsl = gpustatic::dsl;
namespace kernels = gpustatic::kernels;
namespace sim = gpustatic::sim;
namespace tuner = gpustatic::tuner;

namespace {

/// The pre-cache world: compile the point from scratch and run it. This
/// is exactly what SimEvaluator::evaluate did before SimContext; the
/// context must reproduce every field of it bit for bit.
sim::Measurement fresh_measure(const dsl::WorkloadDesc& wl,
                               const arch::GpuSpec& gpu,
                               const codegen::TuningParams& p,
                               const sim::RunOptions& opts) {
  const codegen::Compiler compiler(gpu, p);
  const codegen::LoweredWorkload lw = compiler.compile(wl);
  const sim::MachineModel machine =
      sim::MachineModel::from(gpu, p.l1_pref_kb);
  return sim::run_workload(lw, wl, machine, opts);
}

void expect_identical(const sim::Measurement& a, const sim::Measurement& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.base_time_ms, b.base_time_ms);  // bitwise, not NEAR
  EXPECT_EQ(a.trial_time_ms, b.trial_time_ms);
  EXPECT_EQ(a.repetitions, b.repetitions);
  EXPECT_EQ(a.occupancy, b.occupancy);
  EXPECT_EQ(a.regs_per_thread, b.regs_per_thread);
  EXPECT_EQ(a.counts.per_category, b.counts.per_category);
  EXPECT_EQ(a.counts.reg_traffic, b.counts.reg_traffic);
  EXPECT_EQ(a.counts.branches, b.counts.branches);
  EXPECT_EQ(a.counts.divergent_branches, b.counts.divergent_branches);
  EXPECT_EQ(a.counts.partial_issues, b.counts.partial_issues);
  EXPECT_EQ(a.counts.total_issues, b.counts.total_issues);
  EXPECT_EQ(a.counts.mem_transactions, b.counts.mem_transactions);
  EXPECT_EQ(a.counts.dram_transactions, b.counts.dram_transactions);
  ASSERT_EQ(a.stage_timings.size(), b.stage_timings.size());
  for (std::size_t i = 0; i < a.stage_timings.size(); ++i) {
    EXPECT_EQ(a.stage_timings[i].cycles, b.stage_timings[i].cycles);
    EXPECT_EQ(a.stage_timings[i].time_ms, b.stage_timings[i].time_ms);
  }
}

std::vector<codegen::TuningParams> sample_points(std::size_t stride) {
  const tuner::ParamSpace space = tuner::paper_space();
  std::vector<codegen::TuningParams> pts;
  for (std::size_t flat = 0; flat < space.size(); flat += stride)
    pts.push_back(space.to_params(space.point_at(flat)));
  return pts;
}

}  // namespace

TEST(SimContext, AnalyticMeasurementsMatchFreshCompilePath) {
  const auto wl = kernels::make_workload("atax", 128);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  const sim::RunOptions opts;  // analytic engine
  sim::SimContext ctx(wl, gpu, opts);

  // Strided sweep: many launch shapes per codegen key, evaluated through
  // warm (dirty) scratch — every field must still match a fresh compile.
  for (const codegen::TuningParams& p : sample_points(97))
    expect_identical(ctx.measure(p), fresh_measure(wl, gpu, p, opts));
  EXPECT_GT(ctx.compilation_cache().stats().hits, 0u);
}

TEST(SimContext, WarpMeasurementsMatchFreshCompilePath) {
  const auto wl = kernels::make_workload("bicg", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  sim::RunOptions opts;
  opts.engine = sim::Engine::Warp;
  sim::SimContext ctx(wl, gpu, opts);

  // Includes repeats (dirty device memory + warp arenas) and key-mates
  // with different launch shapes.
  std::vector<codegen::TuningParams> pts;
  for (const int tc : {32, 128, 256}) {
    for (const int uif : {1, 2}) {
      codegen::TuningParams p;
      p.threads_per_block = tc;
      p.unroll = uif;
      pts.push_back(p);
    }
  }
  pts.push_back(pts.front());  // revisit after the scratch went dirty
  for (const codegen::TuningParams& p : pts)
    expect_identical(ctx.measure(p), fresh_measure(wl, gpu, p, opts));
}

TEST(SimContext, DivergentKernelMatchesThroughReusedScratch) {
  // The divergence stressor exercises the SIMT stack + coalescing
  // scratch paths hardest; run it twice through one context.
  const auto wl = kernels::make_workload("divergent", 64);
  const arch::GpuSpec& gpu = arch::gpu("M2050");
  sim::RunOptions opts;
  opts.engine = sim::Engine::Warp;
  sim::SimContext ctx(wl, gpu, opts);
  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.l1_pref_kb = 48;  // 48KB/128B = 384 slots: non-power-of-two mod path
  const sim::Measurement first = ctx.measure(p);
  const sim::Measurement second = ctx.measure(p);
  expect_identical(first, second);
  expect_identical(first, fresh_measure(wl, gpu, p, opts));
}

TEST(SimContext, InvalidConfigurationsMatchFreshPath) {
  const auto wl = kernels::make_workload("atax", 64);
  const arch::GpuSpec& gpu = arch::gpu("M2050");
  sim::RunOptions opts;
  opts.engine = sim::Engine::Warp;
  sim::SimContext ctx(wl, gpu, opts);

  // Unlaunchable on Fermi (register footprint): invalid, not a throw.
  codegen::TuningParams heavy;
  heavy.threads_per_block = 1024;
  heavy.unroll = 6;
  heavy.fast_math = true;
  const sim::Measurement cached = ctx.measure(heavy);
  const sim::Measurement fresh = fresh_measure(wl, gpu, heavy, opts);
  EXPECT_EQ(cached.valid, fresh.valid);
  EXPECT_EQ(cached.error, fresh.error);
  EXPECT_EQ(cached.trial_time_ms, fresh.trial_time_ms);

  // Out-of-range params throw ConfigError exactly like Compiler's ctor.
  codegen::TuningParams bad;
  bad.threads_per_block = 4096;
  EXPECT_THROW((void)ctx.measure(bad), gpustatic::ConfigError);
}

TEST(SimContext, MachineModelsMemoizedPerL1Preference) {
  const auto wl = kernels::make_workload("atax", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  sim::SimContext ctx(wl, gpu, {});
  codegen::TuningParams p16, p48;
  p16.l1_pref_kb = 16;
  p48.l1_pref_kb = 48;
  // PL selects a different L1 geometry on Kepler; both must flow through
  // (and only lowering is shared — zero extra compiles for the PL flip).
  (void)ctx.measure(p48);
  const auto before = ctx.compilation_cache().stats();
  (void)ctx.measure(p16);
  const auto after = ctx.compilation_cache().stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(SimContext, NonDefaultBackendMatchesFreshCompilePath) {
  // The cref backend shares the PTX mid-level lowering by design, so a
  // context bound to it must measure bit-identically to a fresh
  // Compiler run — the seam itself adds nothing to the numbers.
  const auto wl = kernels::make_workload("bicg", 128);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  sim::RunOptions opts;
  opts.backend = "cref";
  sim::SimContext ctx(wl, gpu, opts);
  for (const codegen::TuningParams& p : sample_points(23))
    expect_identical(ctx.measure(p), fresh_measure(wl, gpu, p, opts));
}

TEST(SimContext, LaunchShapeSweepsNeverRecompilePerBackend) {
  const auto wl = kernels::make_workload("atax", 128);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  sim::RunOptions opts;
  opts.backend = "cref";
  sim::SimContext ctx(wl, gpu, opts);

  codegen::TuningParams p;
  std::size_t lookups = 0;
  for (const int tc : {32, 96, 128, 256})
    for (const int bc : {14, 56, 112}) {
      p.threads_per_block = tc;
      p.block_count = bc;
      (void)ctx.measure(p);
      ++lookups;
    }
  const auto stats = ctx.compilation_cache().stats_by_backend();
  ASSERT_TRUE(stats.contains("cref"));
  EXPECT_EQ(stats.at("cref").misses, 1u);
  EXPECT_EQ(stats.at("cref").hits, lookups - 1);
  // Nothing leaked into other backends' entries.
  for (const auto& [name, s] : stats)
    if (name != "cref") EXPECT_EQ(s.misses, 0u);
}

TEST(SimContext, UnknownBackendFailsAtConstruction) {
  sim::RunOptions opts;
  opts.backend = "no-such-backend";
  EXPECT_THROW(sim::SimContext(kernels::make_workload("atax", 64),
                               arch::gpu("K20"), opts),
               gpustatic::Error);
}

TEST(SimContext, SharedCacheBackendMismatchThrows) {
  const auto wl = kernels::make_workload("atax", 64);
  const arch::GpuSpec& gpu = arch::gpu("K20");
  auto cache = std::make_shared<codegen::CompilationCache>(wl, gpu, "ptx");
  sim::RunOptions opts;
  opts.backend = "cref";
  EXPECT_THROW(sim::SimContext(cache, opts), gpustatic::Error);
  opts.backend = "ptx";
  EXPECT_NO_THROW(sim::SimContext(cache, opts));
}
