#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

float iv(std::int64_t i) { return static_cast<float>(i % 97) / 97.0f; }

double max_rel_err(const std::vector<float>& got,
                   const std::vector<float>& want) {
  double m = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    const double d =
        std::abs(got[i] - want[i]) / (std::abs(want[i]) + 1e-9);
    m = std::max(m, d);
  }
  return m;
}

sim::CollectResult run(const dsl::WorkloadDesc& wl,
                       const codegen::TuningParams& p,
                       const std::string& gpu_name = "K20") {
  const auto& gpu = arch::gpu(gpu_name);
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  return sim::run_workload_collect(lw, wl, machine);
}

std::vector<float> ref_atax(std::int64_t n) {
  std::vector<float> tmp(n, 0), y(n, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    float acc = 0;
    for (std::int64_t j = 0; j < n; ++j)
      acc = std::fmaf(iv(i * n + j), iv(j), acc);
    tmp[i] = acc;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    float acc = 0;
    for (std::int64_t i = 0; i < n; ++i)
      acc = std::fmaf(iv(i * n + j), tmp[i], acc);
    y[j] = acc;
  }
  return y;
}

}  // namespace

// ---- functional correctness vs CPU references --------------------------

TEST(WarpSimFunctional, AtaxMatchesReferenceExactly) {
  const auto wl = kernels::make_atax(64);
  const auto res = run(wl, {});
  EXPECT_EQ(max_rel_err(res.memory.host("y"), ref_atax(64)), 0.0);
}

TEST(WarpSimFunctional, BicgMatchesReference) {
  const std::int64_t n = 32;
  const auto wl = kernels::make_bicg(n);
  const auto res = run(wl, {});
  std::vector<float> q(n, 0), s(n, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    float acc = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const float aij = iv(i * n + j);
      acc = std::fmaf(aij, iv(j), acc);
      s[j] += aij * iv(i);
    }
    q[i] = acc;
  }
  EXPECT_EQ(max_rel_err(res.memory.host("q"), q), 0.0);
  // Atomic accumulation order differs from the reference loop order:
  // allow float rounding noise.
  EXPECT_LT(max_rel_err(res.memory.host("s"), s), 1e-4);
}

TEST(WarpSimFunctional, MatvecMatchesReference) {
  const std::int64_t n = 128;
  const auto wl = kernels::make_matvec2d(n);
  const auto res = run(wl, {});
  std::vector<float> y(n, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    // Chunked accumulation like the kernel (chunks of 64).
    float row = 0;
    for (std::int64_t c = 0; c < n / 64; ++c) {
      float acc = 0;
      for (std::int64_t k = 0; k < 64; ++k) {
        const std::int64_t col = (c * 64 + k) % n;
        acc = std::fmaf(iv(i * n + col), iv(col), acc);
      }
      row += acc;
    }
    y[i] = row;
  }
  EXPECT_LT(max_rel_err(res.memory.host("y"), y), 1e-4);
}

TEST(WarpSimFunctional, Ex14fjBoundaryAndInterior) {
  const std::int64_t n = 8;
  const auto wl = kernels::make_ex14fj(n);
  const auto res = run(wl, {});
  const auto& F = res.memory.host("F");
  const auto& u = res.memory.host("u");
  // Boundary cells: residual equals u.
  EXPECT_EQ(F[0], u[0]);
  EXPECT_EQ(F[7], u[7]);
  // An interior cell must reflect the stencil (different from u).
  const std::int64_t t = 3 * 64 + 3 * 8 + 3;
  EXPECT_NE(F[t], u[t]);
  // Spot-check the interior formula.
  auto U = [&](std::int64_t idx) { return u[idx]; };
  const float uc = U(t);
  auto kappa = [](float v) { return 1.0f + v * v; };
  float flux = 0;
  for (const std::int64_t off : {-1l, 1l, -8l, 8l, -64l, 64l}) {
    const float nb = U(t + off);
    flux += 0.5f * (kappa(uc) + kappa(nb)) * (uc - nb);
  }
  const float expected =
      flux * 81.0f - 6.0f * std::exp(uc);
  EXPECT_NEAR(F[t], expected, std::abs(expected) * 1e-3 + 1e-4);
}

// ---- functional invariance across tuning parameters --------------------

struct VariantCase {
  int tc, bc, uif, sc;
  bool fast_math;
};

class VariantInvariance : public ::testing::TestWithParam<VariantCase> {};

TEST_P(VariantInvariance, AtaxResultIndependentOfVariant) {
  const auto& v = GetParam();
  codegen::TuningParams p;
  p.threads_per_block = v.tc;
  p.block_count = v.bc;
  p.unroll = v.uif;
  p.stream_chunk = v.sc;
  p.fast_math = v.fast_math;
  const auto wl = kernels::make_atax(64);
  const auto res = run(wl, p);
  ASSERT_TRUE(res.measurement.valid);
  // fast-math reassociates; allow small relative drift.
  EXPECT_LT(max_rel_err(res.memory.host("y"), ref_atax(64)),
            v.fast_math ? 1e-4 : 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VariantInvariance,
    ::testing::Values(VariantCase{32, 24, 1, 1, false},
                      VariantCase{96, 24, 3, 1, false},
                      VariantCase{256, 48, 5, 1, false},
                      VariantCase{1024, 192, 6, 1, false},
                      VariantCase{128, 24, 2, 3, false},
                      VariantCase{64, 48, 4, 1, true},
                      VariantCase{512, 96, 6, 2, true}));

// ---- timing model properties -------------------------------------------

TEST(WarpSimTiming, MoreWorkTakesLonger) {
  const auto small = run(kernels::make_atax(32), {});
  const auto big = run(kernels::make_atax(128), {});
  EXPECT_GT(big.measurement.base_time_ms, small.measurement.base_time_ms);
}

TEST(WarpSimTiming, DeterministicAcrossRuns) {
  const auto a = run(kernels::make_bicg(32), {});
  const auto b = run(kernels::make_bicg(32), {});
  EXPECT_EQ(a.measurement.base_time_ms, b.measurement.base_time_ms);
  EXPECT_EQ(a.measurement.counts.total_issues,
            b.measurement.counts.total_issues);
}

TEST(WarpSimTiming, DivergentBranchesCounted) {
  const auto res = run(kernels::make_ex14fj(8), {});
  EXPECT_GT(res.measurement.counts.divergent_branches, 0.0);
  EXPECT_GT(res.measurement.counts.partial_issues, 0.0);
}

TEST(WarpSimTiming, UniformKernelHasNoDivergence) {
  // atax at TC=32 with N=64: every warp's lanes follow the same loop trip
  // count (the entry guard may diverge only in the tail warp).
  const auto res = run(kernels::make_atax(64), {});
  const auto& c = res.measurement.counts;
  EXPECT_LT(c.divergent_branches / std::max(1.0, c.branches), 0.05);
}

TEST(WarpSimTiming, InvalidConfigReportsInvalid) {
  // 16KB smem would be fine; force an impossible variant instead by
  // exceeding the register file via a huge unroll at max threads on
  // Fermi (63-register cap is easy to blow with unroll 6 on bicg).
  codegen::TuningParams p;
  p.threads_per_block = 1024;
  p.block_count = 24;
  p.unroll = 6;
  p.fast_math = true;
  const auto wl = kernels::make_bicg(64);
  const auto& gpu = arch::gpu("M2050");
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, 48);
  const auto m = sim::run_workload(lw, wl, machine);
  // Either it fits (valid) or the runner flags it; never throws.
  if (!m.valid) {
    EXPECT_FALSE(m.error.empty());
  }
}

// ---- measurement protocol ----------------------------------------------

TEST(Protocol, TenRepsFifthTrial) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, {});
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, 48);
  const auto m = sim::run_workload(lw, wl, machine);
  ASSERT_EQ(m.repetitions.size(), 10u);
  std::vector<double> sorted = m.repetitions;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(m.trial_time_ms, sorted[4]);
  // Noise is bounded (~1.5% sigma; clamp at half the base).
  for (const double r : m.repetitions)
    EXPECT_NEAR(r, m.base_time_ms, m.base_time_ms * 0.2);
}

TEST(Protocol, NoiseIsSeededPerVariant) {
  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  codegen::TuningParams p1, p2;
  p2.unroll = 2;
  const auto machine = sim::MachineModel::from(gpu, 48);
  const auto m1 = sim::run_workload(
      codegen::Compiler(gpu, p1).compile(wl), wl, machine);
  const auto m1b = sim::run_workload(
      codegen::Compiler(gpu, p1).compile(wl), wl, machine);
  const auto m2 = sim::run_workload(
      codegen::Compiler(gpu, p2).compile(wl), wl, machine);
  EXPECT_EQ(m1.repetitions, m1b.repetitions);  // reproducible
  EXPECT_NE(m1.repetitions, m2.repetitions);   // variant-salted
}

// ---- analytic engine ----------------------------------------------------

TEST(Analytic, CountsMatchWarpSimExactly) {
  // For kernels without data-dependent control flow, the static
  // frequency model must reproduce the executed counts exactly.
  for (const char* name : {"atax", "matvec2d"}) {
    const auto wl = kernels::make_workload(name, 64);
    const auto& gpu = arch::gpu("K20");
    const codegen::Compiler c(gpu, {});
    const auto lw = c.compile(wl);
    const auto machine = sim::MachineModel::from(gpu, 48);
    sim::RunOptions w, a;
    w.engine = sim::Engine::Warp;
    a.engine = sim::Engine::Analytic;
    const auto mw = sim::run_workload(lw, wl, machine, w);
    const auto ma = sim::run_workload(lw, wl, machine, a);
    EXPECT_NEAR(ma.counts.by_class(arch::OpClass::FLOPS),
                mw.counts.by_class(arch::OpClass::FLOPS),
                mw.counts.by_class(arch::OpClass::FLOPS) * 0.01 + 1)
        << name;
    EXPECT_NEAR(ma.counts.by_class(arch::OpClass::MEM),
                mw.counts.by_class(arch::OpClass::MEM),
                mw.counts.by_class(arch::OpClass::MEM) * 0.01 + 1)
        << name;
    EXPECT_NEAR(ma.counts.reg_traffic, mw.counts.reg_traffic,
                mw.counts.reg_traffic * 0.01 + 1)
        << name;
  }
}

TEST(Analytic, TimesWithinBandOfWarpSim) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  const codegen::Compiler c(gpu, {});
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, 48);
  sim::RunOptions w, a;
  w.engine = sim::Engine::Warp;
  a.engine = sim::Engine::Analytic;
  const auto mw = sim::run_workload(lw, wl, machine, w);
  const auto ma = sim::run_workload(lw, wl, machine, a);
  EXPECT_GT(ma.base_time_ms, mw.base_time_ms * 0.3);
  EXPECT_LT(ma.base_time_ms, mw.base_time_ms * 3.0);
}

// ---- device memory -------------------------------------------------------

TEST(DeviceMemory, BoundsChecking) {
  dsl::WorkloadDesc wl;
  wl.name = "w";
  wl.arrays = {{"a", 16, dsl::ArrayInit::Zero}};
  sim::DeviceMemory mem(wl);
  const std::uint64_t base = mem.base("a");
  mem.store(base + 15 * 4, 1.0f);
  EXPECT_EQ(mem.load(base + 15 * 4), 1.0f);
  EXPECT_THROW((void)mem.load(base + 16 * 4), Error);  // past end
  EXPECT_THROW((void)mem.load(base + 2), Error);       // misaligned
  EXPECT_THROW((void)mem.load(12345), Error);          // wild
  EXPECT_THROW((void)mem.base("zz"), LookupError);
}

TEST(DeviceMemory, InitPatternsAndReset) {
  dsl::WorkloadDesc wl;
  wl.name = "w";
  wl.arrays = {{"r", 200, dsl::ArrayInit::Ramp},
               {"o", 4, dsl::ArrayInit::Ones},
               {"z", 4, dsl::ArrayInit::Zero}};
  sim::DeviceMemory mem(wl);
  EXPECT_EQ(mem.host("r")[97], 0.0f);  // ramp wraps at 97
  EXPECT_EQ(mem.host("r")[1], 1.0f / 97.0f);
  EXPECT_EQ(mem.host("o")[3], 1.0f);
  EXPECT_EQ(mem.host("z")[0], 0.0f);
  mem.host("z")[0] = 5.0f;
  mem.reset();
  EXPECT_EQ(mem.host("z")[0], 0.0f);
}
