// Wave/tail decomposition and the two analytic modes on deliberately
// ragged grids: non-multiple-of-SM block counts and 1-block tails, the
// shapes the classic full-wave assumption scores wrong. Shapes follow
// the low-TC recipe from bench/wave_model.cpp so the warp-simulator
// cross-checks stay fast (residency is block-limited at TC=32, so
// oversubscription starts at a few thousand threads).

#include <gtest/gtest.h>

#include <cmath>

#include "codegen/compiler.hpp"
#include "kernels/kernels.hpp"
#include "occupancy/occupancy.hpp"
#include "sim/analytic.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

// Lower `kernel` at (tc, bc) for `gpu_name` and return the measurement
// under the requested engine/mode.
sim::Measurement run(const std::string& kernel, std::int64_t n, int tc,
                     int bc, const std::string& gpu_name,
                     sim::Engine engine,
                     sim::AnalyticMode mode = sim::AnalyticMode::Classic) {
  const auto wl = kernels::make_workload(kernel, n);
  const auto& gpu = arch::gpu(gpu_name);
  codegen::TuningParams p;
  p.threads_per_block = tc;
  p.block_count = bc;
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  sim::RunOptions opts;
  opts.engine = engine;
  opts.analytic.mode = mode;
  return sim::run_workload(lw, wl, machine, opts);
}

sim::WaveGeometry geometry(const std::string& gpu_name, int tc, int bc,
                           std::int64_t domain) {
  const auto& gpu = arch::gpu(gpu_name);
  const auto occ = occupancy::calculate(
      gpu, occupancy::KernelParams{static_cast<std::uint32_t>(tc), 20, 0});
  codegen::LaunchConfig launch;
  launch.grid_blocks = static_cast<std::uint32_t>(bc);
  launch.block_threads = static_cast<std::uint32_t>(tc);
  launch.domain = domain;
  return sim::decompose_waves(gpu, occ, launch, /*coarsen=*/1);
}

}  // namespace

// ---- decompose_waves geometry ------------------------------------------

TEST(DecomposeWaves, AlignedLaunchHasNoTail) {
  // M2050: 14 SMs, 8 blocks/SM at TC=32 -> 112 blocks is exactly one
  // resident wave on every SM.
  const auto g = geometry("M2050", 32, 112, 1 << 20);
  EXPECT_DOUBLE_EQ(g.busy_blocks, 112.0);
  EXPECT_DOUBLE_EQ(g.busy_sms, 14.0);
  EXPECT_DOUBLE_EQ(g.blocks_per_sm, 8.0);
  EXPECT_DOUBLE_EQ(g.resident_blocks, 8.0);
  EXPECT_DOUBLE_EQ(g.waves, 1.0);
  EXPECT_DOUBLE_EQ(g.full_waves, 1.0);
  EXPECT_DOUBLE_EQ(g.tail_blocks, 0.0);
  EXPECT_DOUBLE_EQ(g.tail_sm_fraction, 1.0);
}

TEST(DecomposeWaves, OneBlockTailIsFractionalWave) {
  // 126 blocks on 14 SMs = 9 slots against 8 resident: a 1-block tail
  // on every SM, an eighth of a wave.
  const auto g = geometry("M2050", 32, 126, 1 << 20);
  EXPECT_DOUBLE_EQ(g.blocks_per_sm, 9.0);
  EXPECT_DOUBLE_EQ(g.resident_blocks, 8.0);
  EXPECT_DOUBLE_EQ(g.full_waves, 1.0);
  EXPECT_DOUBLE_EQ(g.tail_blocks, 1.0);
  EXPECT_DOUBLE_EQ(g.waves, 1.0 + 1.0 / 8.0);
  // 126 = 112 + 14: the last grid-wide wave lands on every busy SM.
  EXPECT_DOUBLE_EQ(g.tail_sm_fraction, 1.0);
}

TEST(DecomposeWaves, PartialLastWaveReportsSmFraction) {
  // 121 blocks = 112 + 9: nine of the fourteen SMs get a tail block.
  const auto g = geometry("M2050", 32, 121, 1 << 20);
  EXPECT_DOUBLE_EQ(g.blocks_per_sm, 9.0);
  EXPECT_DOUBLE_EQ(g.tail_blocks, 1.0);
  EXPECT_NEAR(g.tail_sm_fraction, 9.0 / 14.0, 1e-12);
}

TEST(DecomposeWaves, SmallLaunchIsSingleWave) {
  // Fewer blocks than SMs: every block is resident, one (partial) wave.
  const auto g = geometry("M2050", 32, 7, 1 << 20);
  EXPECT_DOUBLE_EQ(g.busy_sms, 7.0);
  EXPECT_DOUBLE_EQ(g.blocks_per_sm, 1.0);
  EXPECT_DOUBLE_EQ(g.waves, 1.0);
  EXPECT_DOUBLE_EQ(g.tail_blocks, 0.0);
  EXPECT_DOUBLE_EQ(g.tail_sm_fraction, 1.0);
}

TEST(DecomposeWaves, DomainCapsBusyBlocks) {
  // A grid larger than the domain needs: busy blocks come from the
  // domain, not the launch, so empty blocks cannot fabricate waves.
  const auto g = geometry("M2050", 32, 1000, /*domain=*/4064);
  EXPECT_DOUBLE_EQ(g.busy_blocks, 127.0);  // ceil(4064/32)
  EXPECT_DOUBLE_EQ(g.blocks_per_sm, 10.0);
  EXPECT_DOUBLE_EQ(g.tail_blocks, 2.0);
}

// ---- mode names --------------------------------------------------------

TEST(AnalyticMode, NamesRoundTrip) {
  for (const std::string& name : sim::analytic_mode_names()) {
    const auto mode = sim::parse_analytic_mode(name);
    ASSERT_TRUE(mode.has_value()) << name;
    EXPECT_EQ(sim::analytic_mode_name(*mode), name);
  }
  EXPECT_FALSE(sim::parse_analytic_mode("bogus").has_value());
  EXPECT_FALSE(sim::parse_analytic_mode("").has_value());
}

// ---- classic/wave agreement and divergence -----------------------------

TEST(AnalyticWave, DefaultOptionsAreClassic) {
  EXPECT_EQ(sim::AnalyticOptions{}.mode, sim::AnalyticMode::Classic);
  const auto def = run("ex14fj", 32, 32, 126, "M2050",
                       sim::Engine::Analytic);
  const auto classic = run("ex14fj", 32, 32, 126, "M2050",
                           sim::Engine::Analytic,
                           sim::AnalyticMode::Classic);
  EXPECT_EQ(def.trial_time_ms, classic.trial_time_ms);
}

TEST(AnalyticWave, ModesAgreeExactlyOnAlignedLaunches) {
  // One full wave (112) and two full waves (224): no tail, so the wave
  // path must reproduce classic bit-for-bit.
  for (const int bc : {14, 56, 112, 224}) {
    const auto classic = run("ex14fj", 32, 32, bc, "M2050",
                             sim::Engine::Analytic,
                             sim::AnalyticMode::Classic);
    const auto wave = run("ex14fj", 32, 32, bc, "M2050",
                          sim::Engine::Analytic, sim::AnalyticMode::Wave);
    EXPECT_EQ(classic.trial_time_ms, wave.trial_time_ms) << "bc=" << bc;
    EXPECT_EQ(classic.waves, wave.waves);
  }
}

TEST(AnalyticWave, TailChargesMoreThanClassicInterpolation) {
  // Ragged launch with a latency-bound tail: classic interpolates the
  // tail linearly, wave mode charges the exposed chain, so it must
  // predict strictly more time.
  const auto classic = run("ex14fj", 32, 32, 126, "M2050",
                           sim::Engine::Analytic,
                           sim::AnalyticMode::Classic);
  const auto wave = run("ex14fj", 32, 32, 126, "M2050",
                        sim::Engine::Analytic, sim::AnalyticMode::Wave);
  EXPECT_GT(wave.trial_time_ms, classic.trial_time_ms);
}

TEST(AnalyticWave, MeasurementExposesWaveGeometry) {
  const auto m = run("ex14fj", 32, 32, 121, "M2050",
                     sim::Engine::Analytic);
  EXPECT_NEAR(m.waves, 1.0 + 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(m.tail_sm_fraction, 9.0 / 14.0, 1e-12);
  // The warp simulator reports the same geometry: it is launch
  // arithmetic, not engine behavior.
  const auto w = run("ex14fj", 32, 32, 121, "M2050", sim::Engine::Warp);
  EXPECT_EQ(m.waves, w.waves);
  EXPECT_EQ(m.tail_sm_fraction, w.tail_sm_fraction);
}

// ---- agreement with the warp simulator on ragged grids -----------------

TEST(AnalyticWave, CloserThanClassicToWarpSimOnRaggedGrid) {
  // The bench gate in miniature, on the cheapest tail-heavy shape: a
  // 1-block (1-warp) tail on 9 of M2050's 14 SMs.
  const auto measured = run("ex14fj", 32, 32, 121, "M2050",
                            sim::Engine::Warp);
  ASSERT_TRUE(measured.valid);
  const auto classic = run("ex14fj", 32, 32, 121, "M2050",
                           sim::Engine::Analytic,
                           sim::AnalyticMode::Classic);
  const auto wave = run("ex14fj", 32, 32, 121, "M2050",
                        sim::Engine::Analytic, sim::AnalyticMode::Wave);
  const double err_classic =
      std::abs(classic.trial_time_ms - measured.trial_time_ms);
  const double err_wave =
      std::abs(wave.trial_time_ms - measured.trial_time_ms);
  EXPECT_LT(err_wave, err_classic);
}

TEST(AnalyticWave, NoWorseThanClassicOnThroughputBoundTail) {
  // TC=1024 on K20: the tail wave still runs 32 warps, so it is
  // throughput-bound and classic's linear interpolation is already
  // right — wave mode must not regress it.
  const auto measured = run("ex14fj", 64, 1024, 39, "K20",
                            sim::Engine::Warp);
  ASSERT_TRUE(measured.valid);
  const auto classic = run("ex14fj", 64, 1024, 39, "K20",
                           sim::Engine::Analytic,
                           sim::AnalyticMode::Classic);
  const auto wave = run("ex14fj", 64, 1024, 39, "K20",
                        sim::Engine::Analytic, sim::AnalyticMode::Wave);
  const double err_classic =
      std::abs(classic.trial_time_ms - measured.trial_time_ms);
  const double err_wave =
      std::abs(wave.trial_time_ms - measured.trial_time_ms);
  EXPECT_LE(err_wave, err_classic + 1e-9);
}

// ---- per-wave breakdown arithmetic -------------------------------------

TEST(AnalyticWave, BreakdownDecomposesSmCycles) {
  const auto wl = kernels::make_workload("ex14fj", 32);
  const auto& gpu = arch::gpu("M2050");
  codegen::TuningParams p;
  p.threads_per_block = 32;
  p.block_count = 126;
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);

  const sim::AnalyticModel classic(machine, {sim::AnalyticMode::Classic});
  const sim::AnalyticModel wave(machine, {sim::AnalyticMode::Wave});
  const auto rc = classic.run_stage(lw.stages[0]);
  const auto rw = wave.run_stage(lw.stages[0]);

  // Geometry is mode-independent.
  EXPECT_EQ(rc.breakdown.waves, rw.breakdown.waves);
  EXPECT_EQ(rc.breakdown.full_waves, rw.breakdown.full_waves);
  EXPECT_EQ(rc.breakdown.tail_blocks, rw.breakdown.tail_blocks);
  EXPECT_DOUBLE_EQ(rw.breakdown.full_waves, 1.0);
  EXPECT_DOUBLE_EQ(rw.breakdown.tail_blocks, 1.0);
  // Only wave mode prices the tail wave.
  EXPECT_EQ(rc.breakdown.tail_wave_cycles, 0.0);
  EXPECT_GT(rw.breakdown.tail_wave_cycles, 0.0);
  EXPECT_DOUBLE_EQ(rw.breakdown.tail_active_warps, 1.0);

  // Classic scores `waves` full waves; recover one wave's cycles from
  // it and check the wave-mode sum: full waves + tail + dispatch.
  const double blocks_per_sm =
      rc.breakdown.full_waves * rc.breakdown.resident_blocks +
      rc.breakdown.tail_blocks;
  const double dispatch_cycles =
      blocks_per_sm * machine.block_dispatch_overhead;
  const double wave_cycles =
      (rc.breakdown.sm_cycles - dispatch_cycles) / rc.breakdown.waves;
  EXPECT_NEAR(rw.breakdown.sm_cycles,
              rw.breakdown.full_waves * wave_cycles +
                  rw.breakdown.tail_wave_cycles + dispatch_cycles,
              1e-6 * rw.breakdown.sm_cycles);
  // The modeled tail wave costs more than classic's linear share but
  // never more than a full wave.
  EXPECT_GT(rw.breakdown.tail_wave_cycles,
            (rw.breakdown.waves - rw.breakdown.full_waves) * wave_cycles);
  EXPECT_LE(rw.breakdown.tail_wave_cycles, wave_cycles);
}
