// Opcode-level semantics tests for the warp simulator's interpreter:
// each case assembles a tiny kernel from text, runs it on one warp, and
// checks the value stored to out[tid]. This pins down the functional
// contract of every ISA operation independently of the code generator.

#include <gtest/gtest.h>

#include <cmath>

#include "codegen/compiler.hpp"
#include "ptx/parser.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

/// Assemble `body` into a kernel storing %f9 to out[tid], run one block
/// of 32 threads, and return the 32 lane results.
std::vector<float> run_lanes(const std::string& body) {
  const std::string text = R"(.kernel t (.param .ptr.f32 out, .param .ptr.f32 in, .param .s32 n_items)
.smem 0
{
entry:
  ld.param.s64 %rd0, [out];
  ld.param.s32 %r63, [n_items];
  mov.s32 %r0, %tid.x;
)" + body + R"(
  cvt.s64.s32 %rd1, %r0;
  mad.s64 %rd2, %rd1, 4, %rd0;
  st.global.f32 [%rd2+0], %f9;  // stride=4
  exit;
}
)";
  ptx::Kernel k = ptx::parse_kernel(text);

  dsl::WorkloadDesc wl;
  wl.name = "t";
  wl.arrays = {{"out", 32, dsl::ArrayInit::Zero},
               {"in", 64, dsl::ArrayInit::Ramp}};

  codegen::LoweredStage stage;
  stage.kernel = std::move(k);
  stage.launch = {1, 32, 0, 32};
  stage.block_freq.assign(stage.kernel.blocks.size(), 1.0);
  stage.demand = ptx::analyze_register_demand(stage.kernel);

  sim::DeviceMemory mem(wl);
  const auto machine = sim::MachineModel::from(arch::gpu("K20"), 48);
  sim::WarpSimulator simulator(machine);
  (void)simulator.run_stage(stage, mem);
  return mem.host("out");
}

}  // namespace

TEST(Interpreter, MovAndCvt) {
  const auto out = run_lanes("  cvt.f32.s32 %f9, %r0;");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], static_cast<float>(lane));
}

TEST(Interpreter, IntegerArithmetic) {
  // f9 = (tid*3 + 7 - 2) via mad and sub.
  const auto out = run_lanes(R"(  mad.s32 %r1, %r0, 3, 7;
  sub.s32 %r2, %r1, 2;
  cvt.f32.s32 %f9, %r2;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], static_cast<float>(lane * 3 + 5));
}

TEST(Interpreter, ShiftAndMask) {
  // f9 = (tid >> 2) * 100 + (tid & 3)
  const auto out = run_lanes(R"(  shr.s32 %r1, %r0, 2;
  and.s32 %r2, %r0, 3;
  mad.s32 %r3, %r1, 100, %r2;
  cvt.f32.s32 %f9, %r3;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], static_cast<float>((lane >> 2) * 100 + (lane & 3)));
}

TEST(Interpreter, MinMaxLogic) {
  const auto out = run_lanes(R"(  min.s32 %r1, %r0, 10;
  max.s32 %r2, %r1, 3;
  xor.s32 %r3, %r2, 1;
  cvt.f32.s32 %f9, %r3;)");
  for (int lane = 0; lane < 32; ++lane) {
    const int expect = (std::clamp(lane, 3, 10)) ^ 1;
    EXPECT_EQ(out[lane], static_cast<float>(expect));
  }
}

TEST(Interpreter, FloatArithmeticAndFma) {
  // f9 = fma(tid, 0.5, 1.25) * 2 - 0.5
  const auto out = run_lanes(R"(  cvt.f32.s32 %f0, %r0;
  fma.f32 %f1, %f0, 0D3FE0000000000000, 0D3FF4000000000000;
  fmul.f32 %f2, %f1, 0D4000000000000000;
  fsub.f32 %f9, %f2, 0D3FE0000000000000;)");
  for (int lane = 0; lane < 32; ++lane) {
    const float expect =
        std::fmaf(static_cast<float>(lane), 0.5f, 1.25f) * 2.0f - 0.5f;
    EXPECT_FLOAT_EQ(out[lane], expect);
  }
}

TEST(Interpreter, SpecialFunctions) {
  // f9 = ex2(lg2(tid+2)) == tid+2 (within float rounding).
  const auto out = run_lanes(R"(  add.s32 %r1, %r0, 2;
  cvt.f32.s32 %f0, %r1;
  lg2.f32 %f1, %f0;
  ex2.f32 %f9, %f1;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_NEAR(out[lane], static_cast<float>(lane + 2),
                1e-4 * (lane + 2));
}

TEST(Interpreter, RcpRsqrtSqrt) {
  const auto out = run_lanes(R"(  add.s32 %r1, %r0, 1;
  cvt.f32.s32 %f0, %r1;
  sqrt.f32 %f1, %f0;
  rcp.f32 %f2, %f1;
  rsqrt.f32 %f3, %f0;
  fsub.f32 %f9, %f2, %f3;)");
  // 1/sqrt(x) - rsqrt(x) == 0.
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_NEAR(out[lane], 0.0f, 1e-6);
}

TEST(Interpreter, SinCos) {
  const auto out = run_lanes(R"(  cvt.f32.s32 %f0, %r0;
  sin.f32 %f1, %f0;
  fmul.f32 %f2, %f1, %f1;
  cos.f32 %f3, %f0;
  fma.f32 %f9, %f3, %f3, %f2;)");
  // sin^2 + cos^2 == 1.
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_NEAR(out[lane], 1.0f, 1e-5);
}

TEST(Interpreter, SelpAndPredicateLogic) {
  // f9 = (tid in [8, 16)) ? 1 : 0 via predicate AND + selp.
  const auto out = run_lanes(R"(  setp.ge.s32 %p0, %r0, 8;
  setp.lt.s32 %p1, %r0, 16;
  and.pred %p2, %p0, %p1;
  selp.f32 %f9, 0D3FF0000000000000, 0D0000000000000000, %p2;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], (lane >= 8 && lane < 16) ? 1.0f : 0.0f);
}

TEST(Interpreter, GuardedExecutionMasksLanes) {
  // Only even lanes overwrite f9.
  const auto out = run_lanes(R"(  mov.f32 %f9, 0D4008000000000000;
  and.s32 %r1, %r0, 1;
  setp.eq.s32 %p0, %r1, 0;
  @%p0 mov.f32 %f9, 0D3FF0000000000000;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], lane % 2 == 0 ? 1.0f : 3.0f);
}

TEST(Interpreter, DivergentBranchBothPathsExecute) {
  // Lanes < 16 take one path, others the else path; all reconverge.
  const auto out = run_lanes(R"(  setp.lt.s32 %p0, %r0, 16;
  @!%p0 bra elsewhere;
then_path:
  mov.f32 %f9, 0D4000000000000000;
  bra joined;
elsewhere:
  mov.f32 %f9, 0D4010000000000000;
joined:
  fadd.f32 %f9, %f9, 0D3FF0000000000000;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], lane < 16 ? 3.0f : 5.0f);
}

TEST(Interpreter, NestedDivergenceReconverges) {
  const auto out = run_lanes(R"(  setp.lt.s32 %p0, %r0, 16;
  @!%p0 bra outer_else;
outer_then:
  setp.lt.s32 %p1, %r0, 8;
  @!%p1 bra inner_else;
inner_then:
  mov.f32 %f9, 0D3FF0000000000000;
  bra inner_join;
inner_else:
  mov.f32 %f9, 0D4000000000000000;
inner_join:
  bra outer_join;
outer_else:
  mov.f32 %f9, 0D4008000000000000;
outer_join:
  fadd.f32 %f9, %f9, 0D0000000000000000;)");
  for (int lane = 0; lane < 32; ++lane) {
    const float expect = lane < 8 ? 1.0f : lane < 16 ? 2.0f : 3.0f;
    EXPECT_EQ(out[lane], expect) << lane;
  }
}

TEST(Interpreter, LoopComputesIteratedSum) {
  // f9 = sum of 0..tid (loop trip count varies per lane -> divergent
  // latch handled by the reconvergence stack).
  const auto out = run_lanes(R"(  mov.f32 %f9, 0D0000000000000000;
  mov.s32 %r1, 0;
loop:
  cvt.f32.s32 %f0, %r1;
  fadd.f32 %f9, %f9, %f0;
  add.s32 %r1, %r1, 1;
  setp.le.s32 %p0, %r1, %r0;
  @%p0 bra loop;
after_loop:)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], static_cast<float>(lane * (lane + 1) / 2));
}

TEST(Interpreter, GlobalLoadRoundTrip) {
  // f9 = in[tid] + in[tid+16] using the ramp init (i%97/97).
  const auto out = run_lanes(R"(  ld.param.s64 %rd10, [in];
  cvt.s64.s32 %rd11, %r0;
  mad.s64 %rd12, %rd11, 4, %rd10;
  ld.global.f32 %f0, [%rd12+0];  // stride=4
  ld.global.f32 %f1, [%rd12+64];  // stride=4
  fadd.f32 %f9, %f0, %f1;)");
  for (int lane = 0; lane < 32; ++lane) {
    const float expect = static_cast<float>(lane % 97) / 97.0f +
                         static_cast<float>((lane + 16) % 97) / 97.0f;
    EXPECT_FLOAT_EQ(out[lane], expect);
  }
}

TEST(Interpreter, MulHi) {
  // mul.hi of tid<<16 by 1<<17 = tid<<33 >> 32 = tid*2.
  const auto out = run_lanes(R"(  shl.s32 %r1, %r0, 16;
  mov.s32 %r2, 131072;
  mul.hi.s32 %r3, %r1, %r2;
  cvt.f32.s32 %f9, %r3;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], static_cast<float>(lane * 2));
}

TEST(Interpreter, NotOnPredicate) {
  const auto out = run_lanes(R"(  setp.lt.s32 %p0, %r0, 5;
  not.pred %p1, %p0;
  selp.f32 %f9, 0D3FF0000000000000, 0D0000000000000000, %p1;)");
  for (int lane = 0; lane < 32; ++lane)
    EXPECT_EQ(out[lane], lane < 5 ? 0.0f : 1.0f);
}

TEST(Interpreter, BarSyncExecutesAsNoOp) {
  // BAR participates in the CTRL mix but is a timing no-op in this
  // simulator (our kernels never emit it; documented in warp_sim.hpp).
  const auto out = run_lanes(R"(  mov.f32 %f9, 0D3FF0000000000000;
  bar.sync 0;
  fadd.f32 %f9, %f9, 0D3FF0000000000000;)");
  for (int lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 2.0f);
}
