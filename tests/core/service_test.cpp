// TuningService: the one tuning entrypoint behind the CLI, the fleet
// bench, and the serve daemon. These tests pin the service's three
// contracts: warm repeats are free (zero fresh simulator runs, zero
// recompiles), identical concurrent requests single-flight into one
// search, and the store survives instances via merge-and-save
// persistence.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/service.hpp"

using namespace gpustatic;  // NOLINT
using core::TuneRequest;
using core::TuneResponse;
using core::TuningService;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TuneRequest small_request(const char* method = "rule") {
  TuneRequest r;
  r.kernel = "atax";
  r.n = 16;
  r.method = method;
  r.hybrid.empirical_budget = 4;
  return r;
}

}  // namespace

// ---- request resolution ---------------------------------------------

TEST(ServiceWorkload, ResolvesRegistryNamesAndDefaultSizes) {
  const dsl::WorkloadDesc wl = core::load_workload("atax", 0);
  EXPECT_EQ(wl.name, "atax");
  EXPECT_THROW((void)core::load_workload("nosuchkernel", 0), Error);
  // A path-looking kernel goes to the file loader, which must fail
  // loudly on a missing file instead of falling through to the registry.
  EXPECT_THROW((void)core::load_workload("/no/such/kernel.gk", 16), Error);
}

TEST(ServiceRequestKey, CoversEveryOutcomeChangingField) {
  const TuneRequest base = small_request();
  const std::string key = TuningService::request_key(base);
  EXPECT_EQ(TuningService::request_key(base), key);  // deterministic

  TuneRequest changed = base;
  changed.method = "random";
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.n = 32;
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.gpu = "P100";
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.search.seed += 1;
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.hybrid.empirical_budget += 1;
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.run.engine = base.run.engine == sim::Engine::Warp
                           ? sim::Engine::Analytic
                           : sim::Engine::Warp;
  EXPECT_NE(TuningService::request_key(changed), key);
  changed = base;
  changed.store.read = false;
  EXPECT_NE(TuningService::request_key(changed), key);
}

// ---- the warm-path promise ------------------------------------------

TEST(TuningService, WarmRepeatRunsZeroFreshAndZeroCompiles) {
  TuningService service;
  const TuneRequest request = small_request();

  const TuneResponse cold = service.tune(request);
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_GT(cold.fresh_evaluations, 0u);
  EXPECT_GT(cold.compiles, 0u);

  const TuneResponse warm = service.tune(request);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.fresh_evaluations, 0u);
  EXPECT_EQ(warm.compiles, 0u);
  EXPECT_EQ(warm.warm_hits, cold.fresh_evaluations + cold.warm_hits);
  // Same answer, store-served.
  EXPECT_EQ(warm.outcome.search.best_params.to_string(),
            cold.outcome.search.best_params.to_string());
  EXPECT_DOUBLE_EQ(warm.outcome.search.best_time,
                   cold.outcome.search.best_time);
  // Sequential repeats are two searches (the flight ended) — warm, not
  // deduplicated.
  EXPECT_FALSE(warm.deduplicated);
  EXPECT_EQ(service.stats().searches, 2u);
}

TEST(TuningService, StorePolicyGatesReadsAndWrites) {
  TuningService service;
  TuneRequest request = small_request();
  request.store.write = false;
  const TuneResponse first = service.tune(request);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(service.store_records(), 0u);  // nothing harvested

  request.store.write = true;
  const TuneResponse second = service.tune(request);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(service.store_records(), 0u);

  // read=false ignores the warm store: the repeat pays fresh runs again
  // (the compile cache still applies — contexts are shared regardless).
  TuneRequest no_read = small_request();
  no_read.store.read = false;
  const TuneResponse fresh = service.tune(no_read);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.fresh_evaluations, 0u);
}

TEST(TuningService, FailuresLandInTheResponseNotAsThrows) {
  TuningService service;
  TuneRequest request = small_request();
  request.kernel = "nosuchkernel";
  const TuneResponse response = service.tune(request);
  EXPECT_FALSE(response.ok());
  EXPECT_NE(response.error.find("nosuchkernel"), std::string::npos);
  // A failed request contributes no store records.
  EXPECT_EQ(service.store_records(), 0u);
}

// ---- single-flight dedup --------------------------------------------

TEST(TuningService, ConcurrentIdenticalRequestsCostOneSearch) {
  constexpr std::size_t kClients = 4;
  std::atomic<std::size_t> searches_started{0};
  TuningService* service_ptr = nullptr;

  TuningService::Config config;
  // Gate the leader inside its search until every follower has joined
  // the flight, making the dedup count deterministic, not timing-luck.
  config.before_search = [&](const TuneRequest&) {
    searches_started.fetch_add(1);
    while (service_ptr->stats().deduplicated < kClients - 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  TuningService service(config);
  service_ptr = &service;

  const TuneRequest request = small_request();
  std::vector<TuneResponse> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i)
    clients.emplace_back(
        [&, i] { responses[i] = service.tune(request); });
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(searches_started.load(), 1u);
  std::size_t deduplicated = 0;
  for (const TuneResponse& r : responses) {
    ASSERT_TRUE(r.ok()) << r.error;
    if (r.deduplicated) ++deduplicated;
    // Followers receive the leader's exact result.
    EXPECT_EQ(r.outcome.search.best_params.to_string(),
              responses[0].outcome.search.best_params.to_string());
  }
  EXPECT_EQ(deduplicated, kClients - 1);

  const TuningService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.searches, 1u);
  EXPECT_EQ(stats.deduplicated, kClients - 1);
}

TEST(TuningService, DifferentRequestsDoNotDeduplicate) {
  TuningService service;
  const TuneResponse a = service.tune(small_request("rule"));
  const TuneResponse b = service.tune(small_request("static"));
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(service.stats().searches, 2u);
  EXPECT_EQ(service.stats().deduplicated, 0u);
}

TEST(TuningService, LeaderAbnormalExitStillCompletesTheFlight) {
  // A throw that run_search's std::exception handler cannot catch must
  // still erase the flight and publish a response, or followers block
  // forever on a flight nobody owns.
  TuningService* service_ptr = nullptr;
  TuningService::Config config;
  config.before_search = [&](const TuneRequest&) {
    while (service_ptr->stats().deduplicated < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    throw 42;  // not a std::exception
  };
  TuningService service(config);
  service_ptr = &service;

  const TuneRequest request = small_request();
  std::vector<TuneResponse> responses(2);
  std::atomic<std::size_t> threw{0};
  auto call = [&](std::size_t i) {
    try {
      responses[i] = service.tune(request);
    } catch (int) {
      threw.fetch_add(1);
    }
  };
  std::thread a(call, 0);
  std::thread b(call, 1);
  a.join();
  b.join();

  // Exactly one caller was the leader and saw the raw throw; the other
  // was the follower and received the sentinel response.
  ASSERT_EQ(threw.load(), 1u);
  const TuneResponse& follower =
      responses[0].kernel.empty() ? responses[1] : responses[0];
  EXPECT_FALSE(follower.ok());
  EXPECT_NE(follower.error.find("terminated abnormally"),
            std::string::npos);
  EXPECT_TRUE(follower.deduplicated);

  // The flight is gone: a retry becomes a fresh leader (and reaches the
  // throwing hook again) instead of being answered by a stale flight.
  bool retried_as_leader = false;
  try {
    (void)service.tune(request);
  } catch (int) {
    retried_as_leader = true;
  }
  EXPECT_TRUE(retried_as_leader);
}

// ---- context-cache eviction -----------------------------------------

TEST(TuningService, ContextEvictionKeepsServingDistinctContexts) {
  TuningService::Config config;
  config.max_contexts = 1;  // every new context evicts the cache
  TuningService service(config);

  TuneRequest a = small_request();
  TuneRequest b = small_request();
  b.n = 32;

  const TuneResponse first = service.tune(a);
  ASSERT_TRUE(first.ok()) << first.error;
  const TuneResponse second = service.tune(b);  // evicts a's context
  ASSERT_TRUE(second.ok()) << second.error;
  // The evicted context re-pays its compile, but the store still
  // answers every evaluation and the result is unchanged.
  const TuneResponse warm = service.tune(a);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.fresh_evaluations, 0u);
  EXPECT_EQ(warm.outcome.search.best_params.to_string(),
            first.outcome.search.best_params.to_string());
}

// ---- queries and persistence ----------------------------------------

TEST(TuningService, QueryReadsTheStoreWithoutSearching) {
  TuningService service;
  const TuneRequest request = small_request();
  const TuneResponse tuned = service.tune(request);
  ASSERT_TRUE(tuned.ok()) << tuned.error;
  const std::size_t searches_before = service.stats().searches;

  const TuningService::QueryResult hit =
      service.query("atax", "K20", 16);
  EXPECT_TRUE(hit.found);
  EXPECT_GT(hit.records, 0u);
  EXPECT_EQ(hit.best.params.to_string(),
            tuned.outcome.search.best_params.to_string());

  const TuningService::QueryResult miss =
      service.query("bicg", "K20", 16);
  EXPECT_FALSE(miss.found);
  EXPECT_EQ(miss.records, 0u);
  EXPECT_EQ(service.stats().searches, searches_before);
}

TEST(TuningService, StorePersistsAcrossServiceInstances) {
  const std::string path = temp_path("service_persist.store");
  std::filesystem::remove(path);
  const TuneRequest request = small_request();

  std::size_t cold_records = 0;
  {
    TuningService::Config config;
    config.store_path = path;
    TuningService service(config);
    const TuneResponse cold = service.tune(request);
    ASSERT_TRUE(cold.ok()) << cold.error;
    cold_records = service.store_records();
    EXPECT_GT(cold_records, 0u);
  }  // destructor persists

  TuningService::Config config;
  config.store_path = path;
  TuningService revived(config);
  EXPECT_TRUE(revived.load_warnings().empty());
  EXPECT_EQ(revived.store_records(), cold_records);
  // The warm-path promise holds across a process restart: the reloaded
  // store answers every evaluation. The new instance pays exactly the
  // one compile that building its evaluation context costs — never the
  // per-variant compiles of a cold search.
  const TuneResponse warm = revived.tune(request);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_EQ(warm.fresh_evaluations, 0u);
  EXPECT_LE(warm.compiles, 1u);
  std::filesystem::remove(path);
}

// ---- the learned model lifecycle ------------------------------------

TEST(TuningService, RetrainFitsInstallsAndPersistsTheModel) {
  const std::string path = temp_path("service_model.model");
  std::filesystem::remove(path);
  TuningService::Config config;
  config.model_path = path;
  TuningService service(config);

  TuningService::ModelInfo info = service.model_info();
  EXPECT_FALSE(info.loaded);
  EXPECT_EQ(info.generation, 0u);

  // Seed the store with one real search, then train on it.
  const TuneResponse tuned = service.tune(small_request());
  ASSERT_TRUE(tuned.ok()) << tuned.error;
  learn::TrainOptions topts;
  topts.corpus.min_records = 4;
  topts.forest.trees = 4;
  const TuningService::RetrainResult result = service.retrain(topts);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.store_records, service.store_records());
  EXPECT_GT(result.trained_rows, 0u);
  EXPECT_EQ(result.generation, 1u);

  info = service.model_info();
  EXPECT_TRUE(info.loaded);
  EXPECT_EQ(info.version, 1);
  EXPECT_EQ(info.records, result.trained_rows);
  EXPECT_EQ(info.generation, 1u);

  // The model reached disk, and a retrain bumps the generation.
  EXPECT_NO_THROW((void)learn::CostModel::load(path));
  EXPECT_EQ(service.retrain(topts).generation, 2u);

  // A new service instance cold-loads the persisted model.
  TuningService revived(config);
  EXPECT_TRUE(revived.model_info().loaded);
  EXPECT_EQ(revived.model_info().records,
            service.model_info().records);
  std::filesystem::remove(path);
}

TEST(TuningService, RetrainWithoutDataFailsWithoutInstallingAModel) {
  TuningService service;
  const TuningService::RetrainResult result = service.retrain();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("not enough training data"),
            std::string::npos)
      << result.error;
  EXPECT_FALSE(service.model_info().loaded);
  EXPECT_EQ(service.model_info().generation, 0u);
}

TEST(TuningService, PeriodicSaveBoundsTheCrashWindow) {
  const std::string path = temp_path("service_periodic.store");
  std::filesystem::remove(path);
  TuningService::Config config;
  config.store_path = path;
  config.save_every = 1;  // persist after every store write
  TuningService service(config);
  const TuneResponse tuned = service.tune(small_request());
  ASSERT_TRUE(tuned.ok()) << tuned.error;
  // The file is already on disk — no destructor needed.
  EXPECT_GT(tuner::TuningStore::load(path).size(), 0u);
  std::filesystem::remove(path);
}
