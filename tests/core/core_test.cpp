#include <gtest/gtest.h>

#include "core/session.hpp"
#include "core/static_analyzer.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

TEST(StaticAnalyzer, ReportIsComplete) {
  const core::StaticAnalyzer analyzer(arch::gpu("K20"));
  const auto rep = analyzer.analyze(kernels::make_atax(128));
  EXPECT_EQ(rep.workload, "atax");
  EXPECT_EQ(rep.gpu, "K20");
  EXPECT_GT(rep.regs_per_thread, 0u);
  EXPECT_GT(rep.static_instructions, 0u);
  EXPECT_GT(rep.intensity, 0.0);
  EXPECT_FALSE(rep.suggestion.thread_candidates.empty());
  EXPECT_FALSE(rep.rule_threads.empty());
  EXPECT_GT(rep.predicted_cost, 0.0);
}

TEST(StaticAnalyzer, RuleThreadsAreHalfOfSuggestion) {
  const core::StaticAnalyzer analyzer(arch::gpu("K20"));
  const auto rep = analyzer.analyze(kernels::make_ex14fj(16));
  EXPECT_TRUE(rep.prefers_upper);
  EXPECT_EQ(rep.rule_threads.size(),
            (rep.suggestion.thread_candidates.size() + 1) / 2);
  // Upper half: the last rule thread equals the last suggestion.
  EXPECT_EQ(rep.rule_threads.back(),
            rep.suggestion.thread_candidates.back());
}

TEST(StaticAnalyzer, TextReportMentionsKeyFields) {
  const core::StaticAnalyzer analyzer(arch::gpu("M40"));
  const auto rep = analyzer.analyze(kernels::make_bicg(64));
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("bicg"), std::string::npos);
  EXPECT_NE(text.find("intensity"), std::string::npos);
  EXPECT_NE(text.find("T*="), std::string::npos);
  EXPECT_NE(text.find("lower thread range"), std::string::npos);
}

TEST(TuningSession, StaticReductionMatchesPaperOnKepler) {
  core::TuningSession session(kernels::make_atax(128), arch::gpu("K20"));
  const auto st = session.static_pruned();
  const auto rb = session.rule_based();
  EXPECT_NEAR(st.space_reduction(), 0.875, 1e-9);
  EXPECT_NEAR(rb.space_reduction(), 0.9375, 1e-9);
  EXPECT_LE(rb.search.best_time * 0.999, st.search.best_time * 1.5);
}

TEST(TuningSession, PrunedSearchNearExhaustive) {
  core::TuningSession session(kernels::make_ex14fj(16), arch::gpu("K20"));
  const auto ex = session.exhaustive();
  const auto rb = session.rule_based();
  ASSERT_GT(ex.search.best_time, 0);
  // Compute-bound kernel: upper thread range retains the optimum basin.
  EXPECT_LT(rb.search.best_time, ex.search.best_time * 1.10);
  EXPECT_LT(rb.search.distinct_evaluations,
            ex.search.distinct_evaluations / 10);
}

TEST(TuningSession, BudgetedStrategiesRun) {
  core::TuningSession session(kernels::make_matvec2d(128),
                              arch::gpu("M40"));
  tuner::SearchOptions o;
  o.budget = 60;
  for (const auto& outcome :
       {session.random(o), session.annealing(o), session.genetic(o),
        session.simplex(o)}) {
    EXPECT_LE(outcome.search.distinct_evaluations, 60u);
    EXPECT_TRUE(std::isfinite(outcome.search.best_time));
  }
}

TEST(TuningSession, PruneIsCached) {
  core::TuningSession session(kernels::make_atax(64), arch::gpu("P100"));
  const auto& a = session.prune();
  const auto& b = session.prune();
  EXPECT_EQ(&a, &b);
}
