#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/fleet.hpp"
#include "core/session.hpp"
#include "core/static_analyzer.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

TEST(StaticAnalyzer, ReportIsComplete) {
  const core::StaticAnalyzer analyzer(arch::gpu("K20"));
  const auto rep = analyzer.analyze(kernels::make_atax(128));
  EXPECT_EQ(rep.workload, "atax");
  EXPECT_EQ(rep.gpu, "K20");
  EXPECT_GT(rep.regs_per_thread, 0u);
  EXPECT_GT(rep.static_instructions, 0u);
  EXPECT_GT(rep.intensity, 0.0);
  EXPECT_FALSE(rep.suggestion.thread_candidates.empty());
  EXPECT_FALSE(rep.rule_threads.empty());
  EXPECT_GT(rep.predicted_cost, 0.0);
}

TEST(StaticAnalyzer, RuleThreadsAreHalfOfSuggestion) {
  const core::StaticAnalyzer analyzer(arch::gpu("K20"));
  const auto rep = analyzer.analyze(kernels::make_ex14fj(16));
  EXPECT_TRUE(rep.prefers_upper);
  EXPECT_EQ(rep.rule_threads.size(),
            (rep.suggestion.thread_candidates.size() + 1) / 2);
  // Upper half: the last rule thread equals the last suggestion.
  EXPECT_EQ(rep.rule_threads.back(),
            rep.suggestion.thread_candidates.back());
}

TEST(StaticAnalyzer, TextReportMentionsKeyFields) {
  const core::StaticAnalyzer analyzer(arch::gpu("M40"));
  const auto rep = analyzer.analyze(kernels::make_bicg(64));
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("bicg"), std::string::npos);
  EXPECT_NE(text.find("intensity"), std::string::npos);
  EXPECT_NE(text.find("T*="), std::string::npos);
  EXPECT_NE(text.find("lower thread range"), std::string::npos);
}

TEST(TuningSession, StaticReductionMatchesPaperOnKepler) {
  core::TuningSession session(kernels::make_atax(128), arch::gpu("K20"));
  const auto st = session.tune("static");
  const auto rb = session.tune("rule");
  EXPECT_EQ(st.method, "static");
  EXPECT_EQ(rb.method, "rule");
  EXPECT_NEAR(st.space_reduction(), 0.875, 1e-9);
  EXPECT_NEAR(rb.space_reduction(), 0.9375, 1e-9);
  EXPECT_LE(rb.search.best_time * 0.999, st.search.best_time * 1.5);
}

TEST(TuningSession, PrunedSearchNearExhaustive) {
  core::TuningSession session(kernels::make_ex14fj(16), arch::gpu("K20"));
  const auto ex = session.tune("exhaustive");
  const auto rb = session.tune("rule");
  ASSERT_GT(ex.search.best_time, 0);
  // Compute-bound kernel: upper thread range retains the optimum basin.
  EXPECT_LT(rb.search.best_time, ex.search.best_time * 1.10);
  EXPECT_LT(rb.search.distinct_evaluations,
            ex.search.distinct_evaluations / 10);
}

TEST(TuningSession, BudgetedStrategiesRun) {
  core::TuningSession session(kernels::make_matvec2d(128),
                              arch::gpu("M40"));
  tuner::SearchOptions o;
  o.budget = 60;
  for (const char* method : {"random", "anneal", "genetic", "simplex"}) {
    const auto outcome = session.tune({method, o});
    EXPECT_LE(outcome.search.distinct_evaluations, 60u) << method;
    EXPECT_TRUE(std::isfinite(outcome.search.best_time)) << method;
  }
}

TEST(TuningSession, PruneIsCached) {
  core::TuningSession session(kernels::make_atax(64), arch::gpu("P100"));
  const auto& a = session.prune();
  const auto& b = session.prune();
  EXPECT_EQ(&a, &b);
}

TEST(TuningSession, HybridResolvesThroughRegistry) {
  core::TuningSession session(kernels::make_atax(64), arch::gpu("K20"));
  core::TuningRequest req;
  req.method = "hybrid";
  req.hybrid.empirical_budget = 4;
  const auto outcome = session.tune(req);
  EXPECT_EQ(outcome.method, "hybrid");
  EXPECT_EQ(outcome.search.distinct_evaluations, 4u);
  EXPECT_GT(outcome.hybrid_candidates, 0u);
  EXPECT_TRUE(std::isfinite(outcome.search.best_time));

  req.hybrid.empirical_budget = 0;  // zero-run recommendation
  const auto zero = session.tune(req);
  EXPECT_EQ(zero.search.distinct_evaluations, 0u);
  EXPECT_EQ(zero.search.best_time, tuner::kInvalid);
  EXPECT_GT(zero.search.best_params.threads_per_block, 0);
}

TEST(TuningSession, EvaluationCacheIsSharedAcrossTuneCalls) {
  // The session fronts its simulator with a persistent CachingEvaluator,
  // so a variant measured by one strategy is a cache hit for the next.
  core::TuningSession session(kernels::make_atax(64), arch::gpu("K20"));
  const auto rule = session.tune("rule");
  const auto& cache = session.evaluation_cache();
  const std::size_t distinct_after_rule = cache.distinct_evaluations();
  const std::size_t calls_after_rule = cache.total_calls();
  EXPECT_EQ(distinct_after_rule, rule.search.distinct_evaluations);

  // Hybrid's empirical stage measures top-ranked variants of the same
  // rule-pruned space: every one must hit the session cache — zero
  // fresh simulator runs.
  core::TuningRequest req;
  req.method = "hybrid";
  req.hybrid.empirical_budget = 8;
  const auto hybrid = session.tune(req);
  EXPECT_EQ(hybrid.search.distinct_evaluations, 8u);
  EXPECT_EQ(cache.distinct_evaluations(), distinct_after_rule);
  EXPECT_GT(cache.total_calls(), calls_after_rule);

  // Re-running the same strategy is all hits as well.
  const auto rule_again = session.tune("rule");
  EXPECT_EQ(cache.distinct_evaluations(), distinct_after_rule);
  EXPECT_EQ(rule_again.search.best_params, rule.search.best_params);
  EXPECT_EQ(rule_again.search.best_time, rule.search.best_time);
}

TEST(TuningSession, UnknownMethodThrows) {
  core::TuningSession session(kernels::make_atax(64), arch::gpu("K20"));
  EXPECT_THROW((void)session.tune("magic"), Error);
}

TEST(TuningSession, RequestSelectsEvaluatorBackend) {
  const auto wl = kernels::make_atax(64);
  const auto& gpu = arch::gpu("K20");
  core::TuningSession session(wl, gpu);

  // Counting backend: the session must route every evaluation through
  // the evaluator named in the request, not its built-in one.
  std::size_t calls = 0;
  tuner::FunctionEvaluator counting(
      [&calls](const codegen::TuningParams&) {
        ++calls;
        return 1.0;
      });
  core::TuningRequest req;
  req.method = "rule";
  req.evaluator = &counting;
  const auto outcome = session.tune(req);
  EXPECT_EQ(calls, outcome.search.distinct_evaluations);
  EXPECT_GT(calls, 0u);

  // The zero-run analytic backend is interchangeable with the default.
  tuner::AnalyticEvaluator analytic(wl, gpu);
  req.evaluator = &analytic;
  const auto scored = session.tune(req);
  EXPECT_TRUE(std::isfinite(scored.search.best_time));
  EXPECT_EQ(scored.space_size, outcome.space_size);
}

// ---- FleetSession -----------------------------------------------------------

TEST(FleetSession, PlansTheWholeLibraryAcrossGpus) {
  tuner::TuningStore store;
  core::FleetOptions opts;
  opts.gpus = {"all"};
  const core::FleetSession fleet(store, opts);
  // 9 kernels (4 base + 5 extended) x 4 Table I GPUs, GPU-major.
  ASSERT_EQ(fleet.jobs().size(), 36u);
  EXPECT_EQ(fleet.jobs()[0].kernel, "atax");
  EXPECT_EQ(fleet.jobs()[0].gpu->name, "M2050");
  EXPECT_EQ(fleet.jobs()[9].gpu->name, "K20");
  // Per-kernel default sizes match the single-kernel CLI defaults.
  EXPECT_EQ(fleet.jobs()[0].n, 128);
  for (const tuner::FleetJob& job : fleet.jobs())
    if (job.kernel == "ex14fj") {
      EXPECT_EQ(job.n, 16);
    }
}

TEST(FleetSession, RejectsUnknownNamesBeforeTuning) {
  tuner::TuningStore store;
  core::FleetOptions bad_kernel;
  bad_kernel.kernels = {"atax", "nope"};
  EXPECT_THROW((void)core::FleetSession(store, bad_kernel), LookupError);
  core::FleetOptions bad_gpu;
  bad_gpu.gpus = {"GTX9000"};
  EXPECT_THROW((void)core::FleetSession(store, bad_gpu), LookupError);
}

TEST(FleetSession, RunAggregatesAndWarmRerunIsFree) {
  tuner::TuningStore store;
  core::FleetOptions opts;
  opts.kernels = {"atax", "mvt"};
  opts.n = 32;
  opts.space = tuner::ParamSpace({{"TC", {64, 128}}, {"UIF", {1, 2}}});
  opts.method = "exhaustive";
  core::FleetSession fleet(store, opts);

  const core::FleetReport cold = fleet.run();
  ASSERT_EQ(cold.rows.size(), 2u);
  EXPECT_EQ(cold.failed, 0u);
  EXPECT_EQ(cold.fresh_evaluations, 8u);
  EXPECT_EQ(cold.store_records, 8u);

  const core::FleetReport warm = fleet.run();
  EXPECT_EQ(warm.fresh_evaluations, 0u);
  EXPECT_EQ(warm.warm_hits, 8u);
  EXPECT_EQ(warm.rows[0].outcome.search.best_params,
            cold.rows[0].outcome.search.best_params);

  // Every renderer covers every row; table ends with the summary line.
  const std::string table = core::render_fleet_table(warm);
  EXPECT_NE(table.find("0 fresh simulator runs"), std::string::npos);
  EXPECT_NE(core::render_fleet_json(warm).find("\"mvt\""),
            std::string::npos);
  EXPECT_NE(core::render_fleet_csv(warm).find("mvt,K20,32"),
            std::string::npos);
  EXPECT_THROW((void)core::render_fleet_report(warm, "xml"), Error);
}
