# Resolve GoogleTest without requiring network access:
#   1. an installed package (libgtest-dev with prebuilt archives),
#   2. the distro source tree under /usr/src/googletest,
#   3. FetchContent as a last resort (CI caches this download).
# Every path ends with the imported targets GTest::gtest / GTest::gtest_main.

if(TARGET GTest::gtest_main)
  return()
endif()

find_package(GTest QUIET)
if(GTest_FOUND AND TARGET GTest::gtest_main)
  message(STATUS "GoogleTest: using installed package")
  return()
endif()

if(EXISTS "/usr/src/googletest/CMakeLists.txt")
  message(STATUS "GoogleTest: building distro sources from /usr/src/googletest")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  return()
endif()

message(STATUS "GoogleTest: fetching v1.14.0 via FetchContent")
include(FetchContent)
FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
