// Learned-ranker bench: the CI gate for the src/learn subsystem. Builds
// a fleet-style TuningStore by sweeping every paper kernel on one GPU,
// trains the regression-forest cost model on it, and verifies that
//
//   * the model's mean held-out Spearman clears --min-spearman AND
//     beats a seeded random ranker over the same validation rows (the
//     model must order variants better than chance), and
//   * a hybrid search whose stage 1 is the learned ranker finds a best
//     time within --max-regression of the analytic-stage-1 search on
//     every kernel, spending no more fresh simulator runs (the learned
//     order must not cost quality or budget at the same dial).
//
//   $ ./bench/bench_learned_ranker [--gpu NAME] [--budget N]
//       [--points N] [--trees N] [--seed N] [--min-spearman R]
//       [--max-regression R] [--json PATH]
//
// --json writes the machine-readable artifact CI uploads as
// BENCH_learned_ranker.json, extending the tracked perf trajectory.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "kernels/kernels.hpp"
#include "learn/corpus.hpp"
#include "learn/evaluator.hpp"
#include "learn/trainer.hpp"
#include "tuner/experiment.hpp"
#include "tuner/hybrid.hpp"
#include "tuner/store.hpp"

using namespace gpustatic;  // NOLINT

namespace {

/// Mean Spearman a seeded random ranker achieves over the corpus's
/// validation rows — the chance baseline the model must beat.
double random_ranker_spearman(const learn::Corpus& corpus,
                              std::uint64_t seed) {
  double sum = 0;
  std::size_t groups = 0;
  for (std::size_t g = 0; g < corpus.groups.size(); ++g) {
    const learn::CorpusGroup& group = corpus.groups[g];
    if (group.validation.size() < 2) continue;
    Rng rng(seed + 7919 * (g + 1));
    std::vector<double> random_scores, measured;
    random_scores.reserve(group.validation.size());
    measured.reserve(group.validation.size());
    for (const std::size_t row : group.validation) {
      random_scores.push_back(
          static_cast<double>(rng.below(1000000007)));
      measured.push_back(corpus.rows[row].measured_ms);
    }
    const double rho =
        learn::spearman_rank_correlation(random_scores, measured);
    if (std::isfinite(rho)) {
      sum += rho;
      ++groups;
    }
  }
  return groups == 0 ? std::numeric_limits<double>::quiet_NaN()
                     : sum / static_cast<double>(groups);
}

}  // namespace

int main(int argc, char** argv) {
  std::string gpu_name = "K20";
  std::size_t budget = 8;
  std::size_t points = 96;
  std::size_t trees = 16;
  std::uint64_t seed = 42;
  double min_spearman = 0.3;
  double max_regression = 1.15;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--gpu") == 0)
      gpu_name = value();
    else if (std::strcmp(argv[i], "--budget") == 0)
      budget = static_cast<std::size_t>(std::stoull(value()));
    else if (std::strcmp(argv[i], "--points") == 0)
      points = static_cast<std::size_t>(std::stoull(value()));
    else if (std::strcmp(argv[i], "--trees") == 0)
      trees = static_cast<std::size_t>(std::stoull(value()));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::stoull(value());
    else if (std::strcmp(argv[i], "--min-spearman") == 0)
      min_spearman = std::stod(value());
    else if (std::strcmp(argv[i], "--max-regression") == 0)
      max_regression = std::stod(value());
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = value();
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (budget == 0 || points == 0 || trees == 0) {
    std::fprintf(stderr, "--budget/--points/--trees must be >= 1\n");
    return 2;
  }

  bench::print_header(
      "Learned ranker: held-out rank quality and hybrid stage-1 parity",
      "ROADMAP learned cost model (rank metrics per Sec. IV-A protocol)");

  try {
    const arch::GpuSpec& gpu = arch::gpu(gpu_name);
    const tuner::ParamSpace space = tuner::paper_space();

    // ---- 1. fleet-style store: strided sweep per kernel ----------------
    tuner::TuningStore store;
    const std::int64_t n = 64;
    const std::size_t stride =
        std::max<std::size_t>(1, space.size() / points) | 1;
    for (const kernels::KernelInfo& info : kernels::all_kernels()) {
      const dsl::WorkloadDesc wl = kernels::make_workload(info.name, n);
      const auto trials = tuner::sweep(space, wl, gpu, {}, stride);
      for (const tuner::TrialRecord& trial : trials) {
        tuner::StoreRecord r;
        r.kernel = std::string(info.name);
        r.gpu = gpu_name;
        r.n = n;
        r.variant.params = trial.params;
        r.variant.valid = trial.valid;
        if (trial.valid) r.variant.measured_ms = trial.time_ms;
        store.put(std::move(r));
      }
    }
    std::printf("store: %zu records (%zu kernels x ~%zu points, n=%lld)\n",
                store.size(), kernels::all_kernels().size(), points,
                static_cast<long long>(n));

    // ---- 2. train + held-out rank quality vs random --------------------
    learn::TrainOptions topts;
    topts.corpus.seed = seed;
    topts.forest.trees = trees;
    const learn::TrainReport report =
        learn::train_cost_model(store, topts);
    const learn::Corpus corpus = learn::build_corpus(store, topts.corpus);
    const double random_rho = random_ranker_spearman(corpus, seed);

    std::printf("train: %zu rows (%zu held out), %zu groups, %zu skipped\n",
                report.rows, report.validation_rows, report.groups.size(),
                report.skipped);
    std::printf("held-out mean Spearman: %.4f  (random ranker: %.4f, "
                "gate: >= %.2f and > random)\n",
                report.mean_spearman, random_rho, min_spearman);
    std::printf("held-out top-1 regret: %.4f   top-%zu regret: %.4f\n\n",
                report.mean_top1_regret, topts.top_k,
                report.mean_topk_regret);

    // ---- 3. learned stage 1 vs analytic stage 1 at the same dial -------
    const auto model = std::make_shared<const learn::CostModel>(
        report.model);
    learn::LearnedRankerOptions ropts;  // bench forces the learned order
    ropts.max_variance = std::numeric_limits<double>::infinity();
    ropts.min_confident_fraction = 0.0;

    std::printf("%-10s %12s %12s %8s %6s\n", "kernel", "analytic ms",
                "learned ms", "ratio", "evals");
    double worst_ratio = 0;
    std::size_t extra_evals = 0;
    std::size_t ranker_declines = 0;
    std::vector<std::string> per_kernel_json;
    for (const kernels::KernelInfo& info : kernels::all_kernels()) {
      const dsl::WorkloadDesc wl = kernels::make_workload(info.name, n);
      const tuner::Objective objective = tuner::make_objective(wl, gpu);
      tuner::HybridOptions hopts;
      hopts.empirical_budget = budget;
      const tuner::HybridResult analytic =
          tuner::hybrid_search(space, gpu, wl, objective, hopts);
      hopts.stage1 = learn::make_stage1_ranker(model, ropts);
      const tuner::HybridResult learned =
          tuner::hybrid_search(space, gpu, wl, objective, hopts);

      if (!learned.used_learned_ranker) ++ranker_declines;
      if (learned.empirical_evaluations > analytic.empirical_evaluations)
        extra_evals +=
            learned.empirical_evaluations - analytic.empirical_evaluations;
      const double ratio = learned.best_time_ms / analytic.best_time_ms;
      worst_ratio = std::max(worst_ratio, ratio);
      std::printf("%-10s %12.4f %12.4f %8.3f %3zu/%zu\n",
                  std::string(info.name).c_str(), analytic.best_time_ms,
                  learned.best_time_ms, ratio,
                  learned.empirical_evaluations,
                  analytic.empirical_evaluations);
      per_kernel_json.push_back(
          "    {\"kernel\": \"" + std::string(info.name) +
          "\", \"analytic_ms\": " +
          str::format("%.6f", analytic.best_time_ms) +
          ", \"learned_ms\": " +
          str::format("%.6f", learned.best_time_ms) +
          ", \"ratio\": " + str::format("%.4f", ratio) + "}");
    }
    std::printf("\nworst learned/analytic best-time ratio: %.3f "
                "(gate: <= %.2f)\n",
                worst_ratio, max_regression);

    if (!json_path.empty()) {
      std::string json =
          "{\n  \"gpu\": \"" + gpu_name +
          "\",\n  \"budget\": " + std::to_string(budget) +
          ",\n  \"seed\": " + std::to_string(seed) +
          ",\n  \"store_records\": " + std::to_string(store.size()) +
          ",\n  \"train_rows\": " + std::to_string(report.train_rows) +
          ",\n  \"validation_rows\": " +
          std::to_string(report.validation_rows) +
          ",\n  \"mean_spearman\": " +
          str::format("%.6f", report.mean_spearman) +
          ",\n  \"random_spearman\": " + str::format("%.6f", random_rho) +
          ",\n  \"mean_top1_regret\": " +
          str::format("%.6f", report.mean_top1_regret) +
          ",\n  \"mean_topk_regret\": " +
          str::format("%.6f", report.mean_topk_regret) +
          ",\n  \"worst_ratio\": " + str::format("%.4f", worst_ratio) +
          ",\n  \"ranker_declines\": " + std::to_string(ranker_declines) +
          ",\n  \"per_kernel\": [\n";
      for (std::size_t i = 0; i < per_kernel_json.size(); ++i)
        json += per_kernel_json[i] +
                (i + 1 < per_kernel_json.size() ? ",\n" : "\n");
      json += "  ]\n}\n";
      io::write_file_atomic(json_path, json);
      std::printf("wrote %s\n", json_path.c_str());
    }

    if (!std::isfinite(report.mean_spearman) ||
        report.mean_spearman < min_spearman ||
        !(report.mean_spearman > random_rho)) {
      std::fprintf(stderr,
                   "FAIL: held-out Spearman %.4f (gate >= %.2f and > "
                   "random %.4f) — the model does not rank better than "
                   "chance\n",
                   report.mean_spearman, min_spearman, random_rho);
      return 1;
    }
    if (ranker_declines != 0) {
      std::fprintf(stderr,
                   "FAIL: the learned ranker declined on %zu kernels "
                   "despite an open confidence gate\n",
                   ranker_declines);
      return 1;
    }
    if (extra_evals != 0) {
      std::fprintf(stderr,
                   "FAIL: the learned stage 1 spent %zu extra fresh "
                   "simulator runs (want <= analytic)\n",
                   extra_evals);
      return 1;
    }
    if (worst_ratio > max_regression) {
      std::fprintf(stderr,
                   "FAIL: learned stage 1 is %.3fx the analytic best "
                   "time on its worst kernel (gate <= %.2fx)\n",
                   worst_ratio, max_regression);
      return 1;
    }
    std::printf("\nOK: Spearman %.4f beats random %.4f; learned stage 1 "
                "within %.3fx of analytic at budget %zu\n",
                report.mean_spearman, random_rho, worst_ratio, budget);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
