// Ablation: learned block-size prediction vs the paper's static methods.
//
// STATuner (paper Sec. V) trains a classifier on static metrics of a
// CUDA benchmark suite and predicts ONE best block size for an unseen
// kernel; the paper reports it beats the CUDA Occupancy Calculator's
// suggestions on average error. The paper's own position is different —
// predictive models + occupancy + a rule heuristic, no training — and
// its future work (Sec. VII) asks what ML would add. This bench stages
// that comparison with the leave-one-kernel-out protocol a real tool
// would face:
//
//   train on three kernels' autotuning corpora (one GPU), hold out the
//   fourth kernel, let each advisor name ONE thread count, then score
//   time-at-choice against the oracle best over the thread grid.
//
// Advisors compared:
//   ml-tree   : decision tree on static features (this repo's ml::)
//   occ-mid   : middle of the occupancy model's T* candidates (the
//               Occupancy-Calculator-style answer)
//   occ-api   : cudaOccupancyMaxPotentialBlockSize semantics (largest
//               max-occupancy block size)
//   rule      : middle of the paper's rule-based thread range
//               (intensity > 4 -> upper half of T*, else lower half)
//   default   : TC = 256, no analysis at all

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/static_analyzer.hpp"
#include "occupancy/suggest.hpp"
#include "ml/classify.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

std::int64_t eval_size(const std::string& kernel) {
  return kernel == "ex14fj" ? 32 : 256;
}

/// Simulated time (analytic engine) at one thread count, other
/// parameters at their defaults.
double time_at_tc(const dsl::WorkloadDesc& wl, const arch::GpuSpec& gpu,
                  std::uint32_t tc) {
  codegen::TuningParams p;
  p.threads_per_block = static_cast<int>(tc);
  p.block_count = 96;
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  const auto m = sim::run_workload(lw, wl, machine);
  return m.valid ? m.trial_time_ms : -1.0;
}

std::uint32_t middle(const std::vector<std::uint32_t>& v,
                     std::uint32_t fallback) {
  return v.empty() ? fallback : v[v.size() / 2];
}

struct AdvisorScore {
  std::string name;
  double total_rel_err = 0;
  int cases = 0;
  [[nodiscard]] double mean() const {
    return cases > 0 ? total_rel_err / cases : 0;
  }
};

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: learned (STATuner-style) vs static block-size advice",
      "Sec. V related work + Sec. VII future work, leave-one-kernel-out");

  const std::vector<std::string> kernel_names = {"atax", "bicg", "ex14fj",
                                                 "matvec2d"};
  const std::vector<std::string> gpus =
      bench::full_mode()
          ? std::vector<std::string>{"M2050", "K20", "M40", "P100"}
          : std::vector<std::string>{"K20", "M40"};

  TextTable t({"Held-out", "Arch", "oracle TC", "ml-tree", "occ-mid",
               "occ-api", "rule", "default", "err ml", "err occ",
               "err api", "err rule", "err def"});
  std::vector<AdvisorScore> scores = {
      {"ml-tree", 0, 0}, {"occ-mid", 0, 0}, {"occ-api", 0, 0},
      {"rule", 0, 0},    {"default", 0, 0}};

  for (const auto& gpu_name : gpus) {
    const auto& gpu = arch::gpu(gpu_name);
    for (const auto& held_out : kernel_names) {
      // --- train on the other three kernels -------------------------
      std::vector<ml::CorpusEntry> corpus;
      for (const auto& k : kernel_names)
        if (k != held_out)
          corpus.push_back(
              {kernels::make_workload(k, eval_size(k)), &gpu});
      ml::CorpusOptions copts;
      copts.stride = bench::full_mode() ? 4 : 16;
      ml::BlockSizePredictor predictor;
      predictor.fit(ml::build_rank_dataset(corpus, copts));

      // --- each advisor names one thread count ----------------------
      const auto wl = kernels::make_workload(held_out,
                                             eval_size(held_out));
      const std::uint32_t tc_ml = predictor.predict_block_size(wl, gpu);

      const core::StaticAnalyzer analyzer(gpu);
      const auto report = analyzer.analyze(wl);
      const std::uint32_t tc_occ =
          middle(report.suggestion.thread_candidates, 256);
      const std::uint32_t tc_api =
          occupancy::max_potential_block_size(gpu, report.regs_per_thread,
                                              report.smem_per_block)
              .block_size;
      std::vector<std::uint32_t> rule(report.rule_threads.begin(),
                                      report.rule_threads.end());
      const std::uint32_t tc_rule = middle(rule, tc_occ);
      const std::uint32_t tc_default = 256;

      // --- oracle over the full thread grid --------------------------
      double best_time = -1;
      std::uint32_t best_tc = 0;
      for (std::uint32_t tc = 32; tc <= 1024; tc += 32) {
        const double ms = time_at_tc(wl, gpu, tc);
        if (ms < 0) continue;
        if (best_time < 0 || ms < best_time) {
          best_time = ms;
          best_tc = tc;
        }
      }

      auto rel_err = [&](std::uint32_t tc) {
        const double ms = time_at_tc(wl, gpu, tc);
        return ms < 0 ? 1.0 : (ms - best_time) / best_time;
      };
      const double e_ml = rel_err(tc_ml);
      const double e_occ = rel_err(tc_occ);
      const double e_api = rel_err(tc_api);
      const double e_rule = rel_err(tc_rule);
      const double e_def = rel_err(tc_default);
      scores[0].total_rel_err += e_ml;
      scores[1].total_rel_err += e_occ;
      scores[2].total_rel_err += e_api;
      scores[3].total_rel_err += e_rule;
      scores[4].total_rel_err += e_def;
      for (auto& s : scores) s.cases += 1;

      t.add_row({held_out, gpu_name, std::to_string(best_tc),
                 std::to_string(tc_ml), std::to_string(tc_occ),
                 std::to_string(tc_api), std::to_string(tc_rule),
                 std::to_string(tc_default),
                 str::format("%.1f%%", 100 * e_ml),
                 str::format("%.1f%%", 100 * e_occ),
                 str::format("%.1f%%", 100 * e_api),
                 str::format("%.1f%%", 100 * e_rule),
                 str::format("%.1f%%", 100 * e_def)});
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nmean time-over-oracle (lower is better):\n");
  for (const auto& s : scores)
    std::printf("  %-8s %.1f%%\n", s.name.c_str(), 100 * s.mean());
  std::printf(
      "\nProtocol: advisor trains without seeing the held-out kernel;\n"
      "error is (time at advised TC - oracle time) / oracle time on the\n"
      "analytic engine, other parameters fixed at defaults. STATuner's\n"
      "claim — learned advice beats occupancy-only advice on average —\n"
      "is reproduced when 'err ml' < 'err occ' in the mean row.\n");
  return 0;
}
