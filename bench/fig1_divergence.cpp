// Reproduces Fig. 1: the branch-divergence problem and the performance
// loss incurred. A synthetic kernel forces only the first K of 32 lanes
// in each warp down the working path; on SIMT hardware the masked lanes
// contribute nothing, so throughput scales with K while a non-divergent
// grid of equal useful work stays flat.

#include <cstdio>

#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dsl/ast.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::dsl;  // NOLINT

namespace {

/// Each work item with (t % 32) < active_lanes does `iters` fma steps on
/// out[t]; the rest store a constant. Warps always carry 32 lanes, so
/// smaller active_lanes means more masked (wasted) SIMD slots.
WorkloadDesc divergent_workload(std::int64_t items, int active_lanes,
                                int iters) {
  WorkloadDesc wl;
  wl.name = "divergence_demo";
  wl.problem_size = items;
  wl.arrays = {{"out", items, ArrayInit::Ramp}};
  StageDesc s;
  s.name = "divergent";
  s.domain = items;
  const auto t = ivar("t");
  std::vector<StmtPtr> work;
  work.push_back(let_float("acc", fload("out", t)));
  work.push_back(serial_for(
      "i", 0, iters,
      accum("acc", FloatBinOp::Add,
            fmul(fref("acc"), fconst(1.0000001))),
      /*unrollable=*/false));
  work.push_back(store("out", t, fref("acc")));
  s.body = seq({if_then(
      ccmp(CmpKind::LT, imod(t, 32), iconst(active_lanes)),
      seq(std::move(work)), store("out", t, fconst(0.0)),
      static_cast<double>(active_lanes) / 32.0)});
  wl.stages.push_back(std::move(s));
  return wl;
}

}  // namespace

int main() {
  bench::print_header("Fig. 1 — branch divergence performance loss",
                      "Fig. 1 (SIMT serialization under divergence)");

  const auto& gpu = arch::gpu("K20");
  const auto machine = sim::MachineModel::from(gpu, 48);
  const std::int64_t items = 32 * 1024;
  const int iters = 64;

  TextTable t({"Active lanes/warp", "Time (ms)", "Useful FMA / ms",
               "Efficiency vs 32 lanes", ""});
  double full_rate = 0;
  for (const int lanes : {32, 24, 16, 8, 4, 2, 1}) {
    const auto wl = divergent_workload(items, lanes, iters);
    codegen::TuningParams p;
    p.threads_per_block = 256;
    p.block_count = static_cast<int>(gpu.multiprocessors * 4);
    const codegen::Compiler compiler(gpu, p);
    const auto lw = compiler.compile(wl);
    sim::RunOptions opts;
    opts.engine = sim::Engine::Warp;
    const auto m = sim::run_workload(lw, wl, machine, opts);
    const double useful =
        static_cast<double>(items) * lanes / 32.0 * iters;
    const double rate = useful / m.base_time_ms;
    if (lanes == 32) full_rate = rate;
    t.add_row({std::to_string(lanes), str::format_double(m.base_time_ms, 4),
               str::format_trimmed(rate, 0),
               str::format_double(rate / full_rate * 100.0, 1) + "%",
               ascii_bar(rate, full_rate, 24)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): execution time stays roughly constant as\n"
      "active lanes shrink (the masked lanes still occupy issue slots),\n"
      "so per-useful-work throughput falls toward 1/32.\n");
  return 0;
}
