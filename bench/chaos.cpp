// chaos: the robustness gate for the serve pipeline. Four phases:
//
//   1. golden  — a fresh in-memory server, failpoints disarmed, answers
//                a fixed battery of 32 tune requests (4 kernels × 4
//                methods × 2 seeds); the response lines are recorded.
//   2. chaos   — every failpoint armed at low seeded probability while
//                client threads fire randomized requests (tunes with
//                and without deadlines, queries, stats, pings,
//                retrains, malformed lines). Gates: every response is
//                one parseable JSON line with status ok|error|shed
//                (failures in-band, never a crash), and deadline-capped
//                requests come back within 2× their deadline plus one
//                batch-granularity slack. A watchdog turns a hang into
//                a loud failure.
//   3. torn    — a forked child rewrites a store file in a tight
//                put+merge_and_save loop and is SIGKILLed at a random
//                point; the parent then requires the store to reload
//                cleanly (atomic-rename crash safety) and the dead
//                writer's temp files to be swept. Repeated K times.
//   4. golden  — phase 1 again, failpoints disarmed, on another fresh
//                server: all 32 outputs must be byte-identical to
//                phase 1 (fault injection leaves no residue).
//
// Exits non-zero when any gate fails.
//
//   chaos [--kills N] [--clients C] [--rounds R] [--json FILE]
//   chaos --torn-child <store-path> <seed>      (internal fork target)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "tuner/store.hpp"

namespace {

using gpustatic::Error;
using gpustatic::Rng;
using gpustatic::failpoint::configure;
using gpustatic::serve::JsonObject;
using gpustatic::serve::ServeOptions;
using gpustatic::serve::Server;
using gpustatic::tuner::StoreRecord;
using gpustatic::tuner::TuningStore;
using Clock = std::chrono::steady_clock;

/// Only `error` and `delay` actions: `throw` is the foreign-exception
/// case, deliberately outside this gate (it is allowed to reach the
/// request boundary).
const char* kChaosSchedule =
    "codegen.compile=error(p=0.10,seed=11);"
    "sim.measure=error(p=0.05,seed=12);"
    "store.save=error(p=0.30,seed=13);"
    "store.merge=error(p=0.20,seed=14);"
    "learn.model_load=error(seed=15);"
    "serve.write=error(p=0.15,seed=16);"
    "sim.measure=delay(ms=1,p=0.02,seed=17)";

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return (std::filesystem::path(dir != nullptr ? dir : "/tmp") / name)
      .string();
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---- phase 1 and 4: the golden battery ------------------------------

std::vector<std::string> golden_battery() {
  // 4 kernels x 4 methods x 2 seeds = 32 deterministic requests against
  // one fresh in-memory server (earlier tunes warm-start later ones
  // through the store — deterministically, since the sequence is fixed).
  Server server{ServeOptions{}};
  std::vector<std::string> outputs;
  for (const char* kernel :
       {"atax", "bicg", "ex14fj", "matvec2d"}) {
    const int n = std::strcmp(kernel, "ex14fj") == 0 ? 8 : 32;
    for (const char* method : {"rule", "hybrid", "random", "genetic"})
      for (const int seed : {1, 2}) {
        std::ostringstream line;
        line << R"({"op":"tune","kernel":")" << kernel << R"(","n":)"
             << n << R"(,"method":")" << method << R"(","seed":)"
             << seed << R"(,"budget":4,"search_budget":12})";
        outputs.push_back(server.handle_line(line.str()));
      }
  }
  return outputs;
}

// ---- phase 2: randomized chaos --------------------------------------

struct ChaosResult {
  std::size_t requests = 0;
  std::size_t out_of_band = 0;        ///< unparseable/unknown status
  std::size_t deadline_violations = 0;  ///< late timed-out responses
  std::size_t timed_out = 0;
  std::size_t errors = 0;
  std::size_t shed = 0;
};

/// One randomized request line; deadline_ms (when the tune carries one)
/// is returned through `deadline_ms`.
std::string random_line(Rng& rng, std::int64_t* deadline_ms) {
  *deadline_ms = 0;
  const std::uint64_t roll = rng() % 10;
  if (roll == 0) return R"({"op":"ping"})";
  if (roll == 1) return R"({"op":"stats"})";
  if (roll == 2) return R"({"op":"query","kernel":"atax","n":32})";
  if (roll == 3) return R"({"op":"retrain"})";
  if (roll == 4) return "{not json at all";
  const char* kernel = (rng() % 2 == 0) ? "atax" : "bicg";
  const char* method = (rng() % 3 == 0) ? "random" : "rule";
  std::ostringstream line;
  line << R"({"op":"tune","kernel":")" << kernel << R"(","n":)"
       << 16 + 16 * (rng() % 3) << R"(,"method":")" << method
       << R"(","seed":)" << rng() % 64 << R"(,"search_budget":12)";
  if (rng() % 2 == 0) {
    *deadline_ms = (rng() % 4 == 0) ? 1 : 500;
    line << R"(,"deadline_ms":)" << *deadline_ms;
  }
  line << "}";
  return line.str();
}

/// Validates one response against the in-band contract; returns the
/// status string ("" when the line did not parse).
std::string classify(const std::string& response, ChaosResult& result) {
  JsonObject obj;
  try {
    obj = gpustatic::serve::parse_json_object(response);
  } catch (const std::exception&) {
    ++result.out_of_band;
    return "";
  }
  const auto status_it = obj.find("status");
  if (status_it == obj.end()) {
    ++result.out_of_band;
    return "";
  }
  const std::string status = status_it->second.string;
  if (status == "error") {
    ++result.errors;
    const auto timed_out = obj.find("timed_out");
    if (timed_out != obj.end() && timed_out->second.boolean)
      ++result.timed_out;
  } else if (status == "shed") {
    ++result.shed;
  } else if (status != "ok") {
    ++result.out_of_band;
  }
  return status;
}

ChaosResult chaos_phase(int clients, int rounds) {
  const std::string store = temp_path("bench_chaos_serve.store");
  std::filesystem::remove(store);
  ChaosResult total;
  {
    ServeOptions options;
    options.store_path = store;
    options.save_every = 4;  // exercise the periodic-save retry path
    options.max_inflight = 4;
    options.max_queue = 64;
    Server server(options);
    configure(kChaosSchedule);

    // Watchdog: the no-hang gate. Any wedged request turns into a loud
    // non-zero exit instead of a silent CI timeout.
    std::atomic<bool> done{false};
    std::thread watchdog([&done] {
      for (int i = 0; i < 1800 && !done.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (!done.load()) {
        std::fprintf(stderr, "chaos: FAILED — watchdog expired (hang)\n");
        std::_Exit(3);
      }
    });

    std::vector<ChaosResult> per_thread(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      workers.emplace_back([&server, &per_thread, c, rounds] {
        ChaosResult& result = per_thread[static_cast<std::size_t>(c)];
        Rng rng(0xC0FFEE + static_cast<std::uint64_t>(c));
        for (int r = 0; r < rounds; ++r) {
          std::int64_t deadline_ms = 0;
          const std::string line = random_line(rng, &deadline_ms);
          const Clock::time_point start = Clock::now();
          const std::string response = server.handle_line(line);
          const double elapsed_ms = ms_since(start);
          ++result.requests;
          const std::string status = classify(response, result);
          // The deadline gate: a capped tune must come back within 2x
          // its deadline plus one batch-granularity slack (cancellation
          // is cooperative — it fires between evaluation batches, so a
          // 1 ms deadline still pays for the batch in flight).
          if (deadline_ms > 0 && status != "shed" &&
              elapsed_ms > 2.0 * static_cast<double>(deadline_ms) + 1500)
            ++result.deadline_violations;
        }
      });
    for (std::thread& t : workers) t.join();

    // The transport write path: serve.write trips must degrade to an
    // in-band error line, and a persist whose retries were all injected
    // away surfaces as an Error at this (the CLI's) boundary.
    std::ostringstream pipe_in_text;
    for (int i = 0; i < 8; ++i)
      pipe_in_text << R"({"op":"tune","kernel":"atax","n":32})" << "\n";
    std::istringstream pipe_in(pipe_in_text.str());
    std::ostringstream pipe_out;
    try {
      (void)server.run_pipe(pipe_in, pipe_out);
    } catch (const Error&) {
      // Bounded-retry persist failure: reported, not a crash.
    }
    std::istringstream lines(pipe_out.str());
    std::string response_line;
    while (std::getline(lines, response_line)) {
      ++total.requests;
      classify(response_line, total);
    }

    done.store(true);
    watchdog.join();
    for (const ChaosResult& r : per_thread) {
      total.requests += r.requests;
      total.out_of_band += r.out_of_band;
      total.deadline_violations += r.deadline_violations;
      total.timed_out += r.timed_out;
      total.errors += r.errors;
      total.shed += r.shed;
    }
    gpustatic::failpoint::disarm();
  }
  // Whatever the injected faults did, the store file must load cleanly.
  try {
    std::vector<std::string> warnings;
    (void)TuningStore::load(store, &warnings);
    total.out_of_band += warnings.size();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: store reload after faults failed: %s\n",
                 e.what());
    ++total.out_of_band;
  }
  std::filesystem::remove(store);
  return total;
}

// ---- phase 3: torn-write kills --------------------------------------

/// The forked child: rewrite the store as fast as possible until the
/// parent kills us mid-write.
int run_torn_child(const char* path, std::uint64_t seed) {
  TuningStore store;
  for (std::uint64_t i = 0;; ++i) {
    StoreRecord r;
    r.kernel = "atax";
    r.gpu = "K20";
    r.n = 64;
    r.variant.params.threads_per_block =
        static_cast<int>(32 + 32 * ((seed + i) % 16));
    r.variant.params.unroll = static_cast<int>(1 + i % 4);
    r.variant.measured_ms = 0.1 + 0.001 * static_cast<double>(i);
    store.put(r);
    try {
      store.merge_and_save(path);
    } catch (const Error&) {
      // A transient save failure is fine; keep hammering the file.
    }
  }
}

struct TornResult {
  std::size_t kills = 0;
  std::size_t reload_failures = 0;
  std::size_t stale_tmp_files = 0;
};

TornResult torn_phase(const char* self, int kills) {
  const std::string store = temp_path("bench_chaos_torn.store");
  std::filesystem::remove(store);
  TornResult result;
  Rng rng(0xDEAD);
  for (int k = 0; k < kills; ++k) {
    const pid_t child = fork();
    if (child == 0) {
      char* const argv[] = {
          const_cast<char*>(self), const_cast<char*>("--torn-child"),
          const_cast<char*>(store.c_str()),
          const_cast<char*>(std::to_string(k).c_str()), nullptr};
      execv(self, argv);
      std::_Exit(127);  // exec failed
    }
    if (child < 0) {
      std::fprintf(stderr, "chaos: fork failed\n");
      ++result.reload_failures;
      continue;
    }
    // Kill at a random instant 2..30 ms in — early enough to land
    // mid-write, late enough that writes actually started.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(2 + static_cast<int>(rng() % 29)));
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ++result.kills;

    // The gate: an atomically written store is never torn — every
    // reload parses without so much as a truncated-line warning.
    try {
      std::vector<std::string> warnings;
      (void)TuningStore::load(store, &warnings);
      result.reload_failures += warnings.size();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos: reload after kill %d failed: %s\n", k,
                   e.what());
      ++result.reload_failures;
    }
  }
  // The dead writers' temp files must have been swept by the loads, not
  // left to accumulate.
  const std::filesystem::path dir =
      std::filesystem::path(store).parent_path();
  const std::string prefix =
      std::filesystem::path(store).filename().string() + ".tmp.";
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string().rfind(prefix, 0) == 0)
      ++result.stale_tmp_files;
  std::filesystem::remove(store);
  std::filesystem::remove(store + ".lock");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--torn-child") == 0) {
    if (argc != 4) return 2;
    return run_torn_child(
        argv[2],
        static_cast<std::uint64_t>(std::strtoull(argv[3], nullptr, 10)));
  }

  int kills = 10;
  int clients = 4;
  int rounds = 24;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaos: flag needs a value\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kills") kills = std::atoi(value());
    else if (arg == "--clients") clients = std::atoi(value());
    else if (arg == "--rounds") rounds = std::atoi(value());
    else if (arg == "--json") json_path = value();
    else {
      std::fprintf(stderr, "chaos: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (kills <= 0 || clients <= 0 || rounds <= 0) {
    std::fprintf(stderr, "chaos: flags must be positive\n");
    return 2;
  }

  std::printf("chaos: failpoint/deadline/torn-write robustness gate\n");

  gpustatic::failpoint::configure("");  // phase 1 runs clean
  const std::vector<std::string> golden_before = golden_battery();
  std::printf("  golden battery  : %zu responses recorded\n",
              golden_before.size());

  const ChaosResult chaos = chaos_phase(clients, rounds);
  const std::uint64_t trips = gpustatic::failpoint::total_trips();
  std::printf(
      "  chaos phase     : %zu requests (%zu errors, %zu shed, %zu "
      "timed out), %llu failpoint trips\n",
      chaos.requests, chaos.errors, chaos.shed, chaos.timed_out,
      static_cast<unsigned long long>(trips));
  std::printf("  out-of-band     : %zu (want 0)\n", chaos.out_of_band);
  std::printf("  late deadlines  : %zu (want 0)\n",
              chaos.deadline_violations);

  const TornResult torn = torn_phase(argv[0], kills);
  std::printf("  torn-write kills: %zu (%zu reload failures, %zu stale "
              "tmp files; want 0/0)\n",
              torn.kills, torn.reload_failures, torn.stale_tmp_files);

  gpustatic::failpoint::configure("");  // phase 4 runs clean again
  const std::vector<std::string> golden_after = golden_battery();
  std::size_t golden_mismatches = 0;
  for (std::size_t i = 0;
       i < golden_before.size() && i < golden_after.size(); ++i)
    if (golden_before[i] != golden_after[i]) ++golden_mismatches;
  if (golden_before.size() != golden_after.size()) ++golden_mismatches;
  std::printf("  golden replay   : %zu byte mismatches (want 0)\n",
              golden_mismatches);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "chaos: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\":\"chaos\",\"golden\":%zu,"
        "\"golden_mismatches\":%zu,\"chaos_requests\":%zu,"
        "\"chaos_errors\":%zu,\"chaos_shed\":%zu,"
        "\"chaos_timed_out\":%zu,\"out_of_band\":%zu,"
        "\"deadline_violations\":%zu,\"failpoint_trips\":%llu,"
        "\"torn_kills\":%zu,\"reload_failures\":%zu,"
        "\"stale_tmp_files\":%zu}\n",
        golden_before.size(), golden_mismatches, chaos.requests,
        chaos.errors, chaos.shed, chaos.timed_out, chaos.out_of_band,
        chaos.deadline_violations,
        static_cast<unsigned long long>(trips), torn.kills,
        torn.reload_failures, torn.stale_tmp_files);
    std::fclose(f);
  }

  if (chaos.out_of_band > 0 || chaos.deadline_violations > 0 ||
      torn.reload_failures > 0 || torn.stale_tmp_files > 0 ||
      golden_mismatches > 0) {
    std::fprintf(stderr, "chaos: FAILED\n");
    return 1;
  }
  std::printf("chaos: OK\n");
  return 0;
}
