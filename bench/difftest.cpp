// Differential count smoke: run the scalar-C reference backend over the
// whole kernel library (paper + extended suites) across the sampled
// launch shapes and diff the executed per-block counters against the
// static BlockFreqModel. The headline numbers — kernels/shapes/blocks
// checked and the worst exact-block deviation — land in the CI artifact
// (BENCH_difftest.json) so a model drift shows up in the perf
// trajectory, not just as a red test.
//
//   bench_difftest [--kernels a,b,c] [--tolerance F] [--json PATH]
//
// Exits 1 when any kernel fails its diff (count mismatch, reference
// build failure, or run failure) — the bench is itself a gate.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "difftest/difftest.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

namespace {

std::int64_t diff_size(const std::string& kernel) {
  if (kernel == "ex14fj") return 8;
  if (kernel == "matvec2d") return 128;
  if (kernel == "jacobi2d") return 32;
  if (kernel == "divergent") return 256;
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_filter;
  double tolerance = 0.05;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--kernels") == 0)
      kernel_filter = value();
    else if (std::strcmp(argv[i], "--tolerance") == 0)
      tolerance = std::stod(value());
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = value();
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  bench::print_header(
      "Differential count testing: static block frequencies vs an "
      "executed scalar-C reference",
      "codegen backend seam (cref oracle for the Sec. III count model)");

  std::vector<std::string> names;
  if (kernel_filter.empty()) {
    for (const kernels::KernelInfo& k : kernels::all_kernels())
      names.emplace_back(k.name);
    for (const kernels::KernelInfo& k : kernels::extended_kernels())
      names.emplace_back(k.name);
  } else {
    for (const std::string& name : str::split(kernel_filter, ','))
      if (!name.empty()) names.push_back(name);
  }

  difftest::Options opts;
  opts.divergence_tolerance = tolerance;

  TextTable t({"Kernel", "shapes", "blocks", "max exact dev", "status"});
  std::size_t kernels_checked = 0, shapes_checked = 0, blocks_checked = 0;
  std::size_t failures = 0;
  double worst_deviation = 0;
  std::string failure_log;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& name : names) {
    const difftest::KernelReport report = difftest::diff_kernel(
        kernels::make_workload(name, diff_size(name)), opts);
    ++kernels_checked;
    shapes_checked += report.shapes.size();
    blocks_checked += report.blocks_checked();
    const double dev = report.max_exact_deviation();
    if (dev > worst_deviation) worst_deviation = dev;
    if (!report.ok()) {
      ++failures;
      failure_log += report.failure_summary();
    }
    t.add_row({name, std::to_string(report.shapes.size()),
               std::to_string(report.blocks_checked()),
               str::format("%.3f", dev), report.ok() ? "ok" : "FAIL"});
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  std::printf("%s\n", t.render().c_str());
  std::printf("%zu kernels x %zu shapes, %zu block counters diffed in "
              "%.2f s; worst exact deviation %.3f\n",
              kernels_checked, difftest::default_shapes().size(),
              blocks_checked, elapsed, worst_deviation);
  if (!failure_log.empty()) std::printf("\n%s", failure_log.c_str());

  if (!json_path.empty()) {
    const std::string json =
        "{\n  \"kernels_checked\": " + std::to_string(kernels_checked) +
        ",\n  \"shapes_per_kernel\": " +
        std::to_string(difftest::default_shapes().size()) +
        ",\n  \"shapes_checked\": " + std::to_string(shapes_checked) +
        ",\n  \"blocks_checked\": " + std::to_string(blocks_checked) +
        ",\n  \"max_exact_deviation\": " +
        str::format("%.6f", worst_deviation) +
        ",\n  \"divergence_tolerance\": " + str::format("%.4f", tolerance) +
        ",\n  \"failures\": " + std::to_string(failures) +
        ",\n  \"elapsed_s\": " + str::format("%.3f", elapsed) + "\n}\n";
    io::write_file_atomic(json_path, json);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu of %zu kernels diverged from their "
                         "reference counts\n",
                 failures, kernels_checked);
    return 1;
  }
  return 0;
}
