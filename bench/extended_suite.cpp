// Extended evaluation: the paper's full pipeline on five kernels the
// paper never saw (gesummv, gemver, mvt, jacobi2d, and a synthetic
// divergence stressor).
//
// For each kernel x architecture this reproduces, in one row, the
// decisions and validations of Tables V-VII and Fig. 6:
//   * static intensity and the rule's upper/lower call (Table VI's
//     inputs),
//   * the suggested T* candidate count and rule reduction (Table VII /
//     Fig. 6),
//   * Rank-1 median thread count from an exhaustive (strided) sweep
//     (Table V / Fig. 4's ground truth),
//   * whether the rule's preferred half actually contains the sweep
//     optimum, and the pruned search's loss versus the sweep optimum.
//
// Expected shape: the streaming kernels (gesummv, mvt, gemver) land
// below the 4.0 intensity threshold and prefer low thread counts; the
// stencil and the stressor land above it; optimum retention mirrors
// Fig. 6's "pruned space still finds a competitive variant".

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "tuner/experiment.hpp"

using namespace gpustatic;  // NOLINT

namespace {

std::int64_t suite_size(std::string_view kernel) {
  if (kernel == "divergent") return 4096;
  if (kernel == "gemver" || kernel == "jacobi2d") return 64;
  return 128;
}

}  // namespace

int main() {
  bench::print_header(
      "EXTENDED SUITE: paper pipeline on beyond-paper kernels",
      "Tables V-VII / Fig. 6 shapes on gesummv, gemver, mvt, jacobi2d, "
      "divergent");

  TextTable t({"Kernel", "Arch", "intens", "rule", "T* cnt", "reduction",
               "R1 med TC", "best TC", "in rule?", "loss"});
  const std::vector<std::string> gpus =
      bench::full_mode()
          ? std::vector<std::string>{"M2050", "K20", "M40", "P100"}
          : std::vector<std::string>{"K20", "M40"};

  for (const auto& info : kernels::extended_kernels()) {
    const std::string kernel(info.name);
    for (const auto& gpu_name : gpus) {
      const auto& gpu = arch::gpu(gpu_name);
      const auto wl = kernels::make_workload(kernel, suite_size(kernel));

      core::TuningSession session(wl, gpu);
      const auto& prune = session.prune();

      // Ground truth: strided exhaustive sweep + rank split.
      auto trials =
          tuner::sweep(session.space(), wl, gpu, {},
                       bench::full_mode() ? 1 : bench::sweep_stride());
      const auto ranked = tuner::rank_trials(std::move(trials));
      std::vector<double> r1_threads;
      for (const auto& rec : ranked.rank1)
        r1_threads.push_back(
            static_cast<double>(rec.params.threads_per_block));
      const double r1_median = stats::median(r1_threads);
      const int best_tc = ranked.best.params.threads_per_block;

      const bool in_rule =
          std::find(prune.rule_threads.begin(), prune.rule_threads.end(),
                    static_cast<std::int64_t>(best_tc)) !=
          prune.rule_threads.end();

      const auto pruned = session.tune("rule");
      const double loss =
          (pruned.search.best_time - ranked.best.time_ms) /
          ranked.best.time_ms;

      t.add_row({kernel, gpu_name, str::format("%.2f", prune.intensity),
                 prune.prefers_upper ? "upper" : "lower",
                 std::to_string(prune.rule_threads.size()),
                 str::format("%.1f%%", 100 * prune.rule_reduction()),
                 str::format("%.0f", r1_median), std::to_string(best_tc),
                 in_rule ? "yes" : "no",
                 str::format("%.1f%%", 100 * std::max(0.0, loss))});
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: intens = weighted static intensity (rule threshold\n"
      "4.0); T* cnt / reduction = rule-pruned thread candidates and the\n"
      "Fig. 6-style space reduction; R1 med TC = median Rank-1 thread\n"
      "count from the exhaustive sweep; 'in rule?' = sweep optimum's TC\n"
      "survives pruning; loss = pruned-search best over sweep best.\n");
  return 0;
}
