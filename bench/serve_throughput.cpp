// serve_throughput: the daemon's hot path under concurrency. Drives a
// Server in-process through handle_line (the whole protocol minus the
// socket), so the numbers isolate request handling — parse, admission,
// single-flight, store lookup, render — from kernel TCP costs.
//
// Phases:
//   1. cold   — one tune pays for the search and fills the store.
//   2. warm   — C threads fire R identical tune requests; every one
//               must be answered by the store with zero fresh simulator
//               runs and zero compiles (the gate), and the aggregate
//               request rate is reported.
//   3. mixed  — warm tunes interleaved with query/ping ops, the shape a
//               fleet dashboard produces.
//
// Exits non-zero when a warm response reports fresh>0 or compiles>0 —
// the compile-once, measure-once promise, gated in CI.
//
//   serve_throughput [--requests N] [--clients C] [--json FILE]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using gpustatic::serve::JsonObject;
using gpustatic::serve::ServeOptions;
using gpustatic::serve::Server;
using Clock = std::chrono::steady_clock;

constexpr const char* kTuneLine =
    R"({"op":"tune","kernel":"atax","n":32,"seed":7})";
constexpr const char* kQueryLine =
    R"({"op":"query","kernel":"atax","n":32})";
constexpr const char* kPingLine = R"({"op":"ping"})";

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fire `line` `rounds` times per thread across `clients` threads;
/// count warm-path violations (fresh>0 or compiles>0) and errors.
struct SweepResult {
  double seconds = 0;
  std::size_t responses = 0;
  std::size_t violations = 0;
  std::size_t errors = 0;
  [[nodiscard]] double rate() const {
    return seconds > 0 ? static_cast<double>(responses) / seconds : 0;
  }
};

SweepResult sweep(Server& server, const std::vector<std::string>& lines,
                  int clients, int rounds) {
  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c)
    workers.emplace_back([&, c] {
      for (int r = 0; r < rounds; ++r) {
        const std::string& line =
            lines[static_cast<std::size_t>(c + r) % lines.size()];
        const std::string response = server.handle_line(line);
        JsonObject obj;
        try {
          obj = gpustatic::serve::parse_json_object(response);
        } catch (const std::exception&) {
          errors.fetch_add(1);
          continue;
        }
        if (obj.at("status").string != "ok") {
          errors.fetch_add(1);
          continue;
        }
        const auto fresh = obj.find("fresh");
        const auto compiles = obj.find("compiles");
        if ((fresh != obj.end() && fresh->second.number > 0) ||
            (compiles != obj.end() && compiles->second.number > 0))
          violations.fetch_add(1);
      }
    });
  for (std::thread& t : workers) t.join();
  SweepResult result;
  result.seconds = seconds_since(start);
  result.responses =
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(rounds);
  result.violations = violations.load();
  result.errors = errors.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 2000;
  int clients = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_throughput: flag needs a value\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") requests = std::atoi(value());
    else if (arg == "--clients") clients = std::atoi(value());
    else if (arg == "--json") json_path = value();
    else {
      std::fprintf(stderr, "serve_throughput: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (requests <= 0 || clients <= 0) {
    std::fprintf(stderr,
                 "serve_throughput: --requests and --clients must be "
                 "positive\n");
    return 2;
  }

  ServeOptions options;        // in-memory store
  options.max_inflight = 16;   // the bench must never shed
  options.max_queue = 1u << 20;
  Server server(options);

  // Phase 1: one cold search fills the store and the compile cache.
  const Clock::time_point cold_start = Clock::now();
  const JsonObject cold = gpustatic::serve::parse_json_object(
      server.handle_line(kTuneLine));
  const double cold_seconds = seconds_since(cold_start);
  if (cold.at("status").string != "ok") {
    std::fprintf(stderr, "serve_throughput: cold tune failed\n");
    return 1;
  }

  const int rounds = (requests + clients - 1) / clients;

  // Phase 2: identical warm tunes, full concurrency.
  const SweepResult warm = sweep(server, {kTuneLine}, clients, rounds);
  // Phase 3: the dashboard mix — tunes, queries, pings interleaved.
  const SweepResult mixed = sweep(
      server, {kTuneLine, kQueryLine, kPingLine}, clients, rounds);

  const double cold_fresh = cold.at("fresh").number;
  std::printf("serve_throughput: daemon hot path (in-process)\n");
  std::printf("  cold tune       : %8.3f s  (%.0f fresh evaluations)\n",
              cold_seconds, cold_fresh);
  std::printf("  warm tunes      : %8.0f req/s  (%zu requests, %.3f s)\n",
              warm.rate(), warm.responses, warm.seconds);
  std::printf("  mixed ops       : %8.0f req/s  (%zu requests, %.3f s)\n",
              mixed.rate(), mixed.responses, mixed.seconds);
  std::printf("  warm violations : %zu (want 0)\n",
              warm.violations + mixed.violations);
  std::printf("  errors          : %zu (want 0)\n",
              warm.errors + mixed.errors);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_throughput: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\":\"serve_throughput\",\"requests\":%zu,"
                 "\"clients\":%d,\"cold_seconds\":%.6f,"
                 "\"warm_rate\":%.1f,\"mixed_rate\":%.1f,"
                 "\"violations\":%zu,\"errors\":%zu}\n",
                 warm.responses + mixed.responses, clients, cold_seconds,
                 warm.rate(), mixed.rate(),
                 warm.violations + mixed.violations,
                 warm.errors + mixed.errors);
    std::fclose(f);
  }

  // The gate: a warm daemon runs nothing fresh and recompiles nothing.
  if (warm.violations + mixed.violations > 0 ||
      warm.errors + mixed.errors > 0) {
    std::fprintf(stderr,
                 "serve_throughput: FAILED — warm requests did fresh "
                 "work or errored\n");
    return 1;
  }
  std::printf("serve_throughput: OK\n");
  return 0;
}
