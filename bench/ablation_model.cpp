// Ablation bench for the design choices called out in DESIGN.md §5:
//
//  A. Eq. 6 weighting: class-CPI (the paper's form) vs per-category CPI
//     vs unweighted counts — measured as rank correlation with simulated
//     times over a variant sample.
//  B. Rule threshold: sweep the intensity threshold {2..6} and report
//     whether the rule-pruned space still contains a near-optimal
//     variant for each kernel.
//  C. Engine agreement: Spearman correlation between the analytic model
//     and the warp simulator over a variant sample (the fidelity split).

#include <cstdio>

#include "analysis/predictor.hpp"
#include "common/error.hpp"
#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "tuner/experiment.hpp"
#include "tuner/static_search.hpp"

using namespace gpustatic;  // NOLINT

namespace {

std::vector<codegen::TuningParams> variant_sample() {
  std::vector<codegen::TuningParams> out;
  for (int tc = 64; tc <= 1024; tc += 128)
    for (const int uif : {1, 3, 6})
      for (const bool fm : {false, true}) {
        codegen::TuningParams p;
        p.threads_per_block = tc;
        p.unroll = uif;
        p.fast_math = fm;
        p.block_count = 48;
        out.push_back(p);
      }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablations — model design choices",
                      "DESIGN.md §5 (weighting, threshold, engine split)");

  const auto& gpu = arch::gpu("K20");
  const auto machine = sim::MachineModel::from(gpu, 48);
  const auto variants = variant_sample();

  // ---- A: Eq. 6 weighting --------------------------------------------
  std::printf("A. Eq. 6 cost-model weighting (rank corr. with simulated "
              "time)\n");
  TextTable ta({"Kernel", "class-CPI (Eq.6)", "category-CPI",
                "unweighted"});
  for (const auto& info : kernels::all_kernels()) {
    const auto wl = kernels::make_workload(
        info.name, bench::warp_size_for(info.name));
    std::vector<double> times, s_class, s_cat, s_flat;
    for (const auto& p : variants) {
      try {
        const codegen::Compiler c(gpu, p);
        const auto lw = c.compile(wl);
        sim::RunOptions opts;
        opts.engine = sim::Engine::Warp;
        const auto m = sim::run_workload(lw, wl, machine, opts);
        if (!m.valid) continue;
        times.push_back(m.base_time_ms);
        s_class.push_back(analysis::predicted_cost(
            lw, gpu.family, analysis::CostModel::ClassCpi));
        s_cat.push_back(analysis::predicted_cost(
            lw, gpu.family, analysis::CostModel::CategoryCpi));
        s_flat.push_back(analysis::predicted_cost(
            lw, gpu.family, analysis::CostModel::Unweighted));
      } catch (const gpustatic::Error&) {
      }
    }
    ta.add_row({std::string(info.name),
                str::format_double(stats::spearman(times, s_class), 3),
                str::format_double(stats::spearman(times, s_cat), 3),
                str::format_double(stats::spearman(times, s_flat), 3)});
  }
  std::printf("%s\n", ta.render().c_str());

  // ---- B: rule threshold sweep ----------------------------------------
  std::printf("B. Rule-based intensity threshold sweep (does the pruned\n"
              "   space keep a variant within 5%% of the sampled optimum?)\n");
  TextTable tb({"Kernel", "Intensity", "thr=2", "thr=3", "thr=4 (paper)",
                "thr=5", "thr=6"});
  const tuner::ParamSpace space = tuner::paper_space();
  for (const auto& info : kernels::all_kernels()) {
    const auto wl = kernels::make_workload(
        info.name, bench::bench_sizes(info.name)[0]);
    const auto prune = tuner::static_prune(space, gpu, wl);
    // Sampled exhaustive optimum.
    const auto trials =
        tuner::sweep(space, wl, gpu, {}, bench::sweep_stride());
    const auto ranked = tuner::rank_trials(trials);
    const double best = ranked.best.time_ms;

    std::vector<std::string> cells = {
        std::string(info.name), str::format_double(prune.intensity, 2)};
    for (const double thr : {2.0, 3.0, 4.0, 5.0, 6.0}) {
      const bool upper = prune.intensity > thr;
      const std::size_t n = prune.static_threads.size();
      const std::size_t half = (n + 1) / 2;
      std::vector<std::int64_t> keep;
      if (upper)
        keep.assign(prune.static_threads.end() -
                        static_cast<std::ptrdiff_t>(half),
                    prune.static_threads.end());
      else
        keep.assign(prune.static_threads.begin(),
                    prune.static_threads.begin() +
                        static_cast<std::ptrdiff_t>(half));
      double best_kept = tuner::kInvalid;
      for (const auto& rec : trials) {
        if (!rec.valid) continue;
        for (const std::int64_t t : keep)
          if (rec.params.threads_per_block == t)
            best_kept = std::min(best_kept, rec.time_ms);
      }
      const double gap = (best_kept - best) / best * 100.0;
      cells.push_back(str::format_double(gap, 1) + "%" +
                      (gap <= 5.0 ? " ok" : " MISS"));
    }
    tb.add_row(cells);
  }
  std::printf("%s\n", tb.render().c_str());

  // ---- C: engine agreement --------------------------------------------
  std::printf("C. Analytic model vs warp simulator (rank agreement)\n");
  TextTable tc({"Kernel", "Spearman", "Pearson", "Variants"});
  for (const auto& info : kernels::all_kernels()) {
    const auto wl = kernels::make_workload(
        info.name, bench::warp_size_for(info.name));
    std::vector<double> warp_t, ana_t;
    for (const auto& p : variants) {
      try {
        const codegen::Compiler c(gpu, p);
        const auto lw = c.compile(wl);
        sim::RunOptions w, a;
        w.engine = sim::Engine::Warp;
        a.engine = sim::Engine::Analytic;
        const auto mw = sim::run_workload(lw, wl, machine, w);
        const auto ma = sim::run_workload(lw, wl, machine, a);
        if (!mw.valid || !ma.valid) continue;
        warp_t.push_back(mw.base_time_ms);
        ana_t.push_back(ma.base_time_ms);
      } catch (const gpustatic::Error&) {
      }
    }
    tc.add_row({std::string(info.name),
                str::format_double(stats::spearman(warp_t, ana_t), 3),
                str::format_double(stats::pearson(warp_t, ana_t), 3),
                std::to_string(warp_t.size())});
  }
  std::printf("%s\n", tc.render().c_str());
  return 0;
}
