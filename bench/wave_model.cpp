// Wave-model validation gate: analytic classic vs wave mode against the
// warp simulator on launch shapes straddling wave boundaries. Each
// curated shape is either wave-aligned (the last wave is full on the
// busiest SM) or tail-heavy (a partial tail wave); shapes are chosen so
// the warp simulator stays cheap even at multi-wave scale (low TC drops
// residency, so oversubscription starts at a few thousand threads).
//
// Gates (the bench is itself a CI gate, like bench_difftest):
//   1. On every wave-aligned shape the two modes must agree exactly —
//      wave mode may never regress the classic Eq. 6 prediction.
//   2. Per kernel, pooled over architectures, the wave-mode relative
//      MAE on tail-heavy shapes must be strictly below classic's.
//
//   bench_wave_model [--kernels a,b,c] [--json PATH]
//
// Subsampled mode covers M2050 + K20; GPUSTATIC_FULL=1 adds the M40 and
// P100 shapes (and the slower K20 atax/bicg multi-wave points).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/error.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "kernels/kernels.hpp"
#include "sim/analytic.hpp"
#include "sim/machine.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

struct Shape {
  const char* kernel;
  const char* gpu;
  std::int64_t n;
  int tc;
  int bc;
  bool full_only;  ///< only run with GPUSTATIC_FULL=1
};

// Tail shapes follow one recipe: a TC low enough that residency is
// block-limited (TC=32 -> 8 blocks/SM on Fermi, 16 on Kepler, 32 on
// Maxwell/Pascal), then a block count one wave-slot past a full wave,
// so the tail wave runs a handful of warps per SM and is latency-bound
// — exactly where the classic full-wave assumption breaks. Aligned
// partners use the same TC with block counts at exact wave multiples.
const Shape kShapes[] = {
    // atax: O(n) per thread, so multi-wave points need the low-TC trick
    // to stay simulable (threads x n work items).
    {"atax", "M2050", 4064, 32, 126, false},   // 9 slots / 8 resident
    {"atax", "M2050", 4064, 32, 112, false},   // aligned, 1 wave
    {"atax", "M2050", 4064, 32, 56, false},    // aligned, half the SMs.. still 1 full wave
    {"atax", "K20", 7072, 32, 221, true},      // 17 slots / 16 resident
    {"atax", "K20", 7072, 32, 208, true},      // aligned, 1 wave
    // bicg: same geometry as atax (fused 1-D stage).
    {"bicg", "M2050", 4064, 32, 126, false},
    {"bicg", "M2050", 4064, 32, 112, false},
    {"bicg", "K20", 7072, 32, 221, true},
    {"bicg", "K20", 7072, 32, 208, true},
    // ex14fj: O(1) per thread; cheap at any scale. The TC=1024 K20 pair
    // has a throughput-bound tail (32 warps), where classic's linear
    // interpolation is already right — wave mode must match, not win.
    {"ex14fj", "M2050", 32, 32, 121, false},   // tail on 9 of 14 SMs
    {"ex14fj", "M2050", 32, 32, 126, false},   // tail on every SM
    {"ex14fj", "M2050", 32, 32, 112, false},   // aligned, 1 wave
    {"ex14fj", "M2050", 32, 32, 224, false},   // aligned, 2 waves
    {"ex14fj", "K20", 64, 1024, 26, false},    // aligned, 1 wave
    {"ex14fj", "K20", 64, 1024, 39, false},    // tail, throughput-bound
    {"ex14fj", "M40", 64, 32, 769, true},      // 33 slots / 32 resident
    {"ex14fj", "M40", 64, 32, 768, true},      // aligned, 1 wave
    {"ex14fj", "P100", 64, 32, 1793, true},
    {"ex14fj", "P100", 64, 32, 1792, true},
    // matvec2d: constant kMatVecChunk work per thread.
    {"matvec2d", "K20", 1024, 64, 209, false},  // 17 slots / 16 resident
    {"matvec2d", "K20", 1024, 64, 221, false},  // deeper into the tail
    {"matvec2d", "K20", 1024, 64, 208, false},  // aligned, 1 wave
    {"matvec2d", "K20", 1024, 64, 104, false},  // aligned, 1 wave
    {"matvec2d", "M2050", 1024, 32, 126, false},
    {"matvec2d", "M2050", 1024, 32, 112, false},
    {"matvec2d", "M40", 2048, 32, 769, true},
    {"matvec2d", "M40", 2048, 32, 768, true},
    {"matvec2d", "P100", 2048, 32, 1793, true},
    {"matvec2d", "P100", 2048, 32, 1792, true},
};

struct Sample {
  std::string kernel;
  std::string gpu;
  bool tail = false;
  double measured = 0;
  double classic = 0;
  double wave = 0;
};

double rel_err(double pred, double meas) {
  return std::abs(pred - meas) / meas;
}

double mean(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_filter;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--kernels") == 0)
      kernel_filter = value();
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = value();
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  bench::print_header(
      "Wave-aware analytic model vs the warp simulator at wave "
      "boundaries",
      "Sec. V analytic engine; AnalyticOptions mode classic|wave");

  const std::vector<std::string> wanted = str::split(kernel_filter, ',');
  const auto kernel_wanted = [&](const std::string& name) {
    if (kernel_filter.empty()) return true;
    for (const std::string& w : wanted)
      if (w == name) return true;
    return false;
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<Sample> samples;
  std::size_t skipped = 0;
  for (const Shape& s : kShapes) {
    if (s.full_only && !bench::full_mode()) {
      ++skipped;
      continue;
    }
    if (!kernel_wanted(s.kernel)) continue;
    const auto wl = kernels::make_workload(s.kernel, s.n);
    const arch::GpuSpec& gpu = arch::gpu(s.gpu);
    codegen::TuningParams p;
    p.threads_per_block = s.tc;
    p.block_count = s.bc;
    Sample out;
    out.kernel = s.kernel;
    out.gpu = s.gpu;
    try {
      const codegen::Compiler compiler(gpu, p);
      const auto lw = compiler.compile(wl);
      const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);

      sim::RunOptions warp;
      warp.engine = sim::Engine::Warp;
      const auto measured = sim::run_workload(lw, wl, machine, warp);
      if (!measured.valid) continue;
      out.measured = measured.trial_time_ms;

      sim::RunOptions analytic;
      analytic.engine = sim::Engine::Analytic;
      analytic.analytic.mode = sim::AnalyticMode::Classic;
      const auto classic = sim::run_workload(lw, wl, machine, analytic);
      out.classic = classic.trial_time_ms;

      analytic.analytic.mode = sim::AnalyticMode::Wave;
      const auto wave = sim::run_workload(lw, wl, machine, analytic);
      out.wave = wave.trial_time_ms;

      // Tail-heavy iff some stage's busiest SM carries a partial last
      // wave: the per-launch wave count is then fractional.
      out.tail =
          classic.waves - std::floor(classic.waves) > 1e-9;
    } catch (const gpustatic::Error& e) {
      std::fprintf(stderr, "shape %s/%s tc=%d bc=%d failed: %s\n",
                   s.kernel, s.gpu, s.tc, s.bc, e.what());
      return 1;
    }
    samples.push_back(out);
  }
  if (skipped != 0)
    std::printf("(%zu full-sweep shapes skipped; set GPUSTATIC_FULL=1 "
                "to include M40/P100 and the slow K20 points)\n\n",
                skipped);

  // Gate 1: exact classic/wave agreement on every aligned shape.
  std::size_t aligned_mismatches = 0;
  for (const Sample& s : samples)
    if (!s.tail && s.wave != s.classic) {
      ++aligned_mismatches;
      std::fprintf(stderr,
                   "aligned shape %s/%s: wave %.6f != classic %.6f\n",
                   s.kernel.c_str(), s.gpu.c_str(), s.wave, s.classic);
    }

  // Per kernel x GPU cells for the table/artifact; per-kernel pools for
  // gate 2.
  std::map<std::pair<std::string, std::string>, std::vector<Sample>>
      cells;
  std::map<std::string, std::pair<std::vector<double>,
                                  std::vector<double>>>
      tail_pool;  // kernel -> (classic errs, wave errs)
  for (const Sample& s : samples) {
    cells[{s.kernel, s.gpu}].push_back(s);
    if (s.tail) {
      tail_pool[s.kernel].first.push_back(rel_err(s.classic, s.measured));
      tail_pool[s.kernel].second.push_back(rel_err(s.wave, s.measured));
    }
  }

  // Per-cell wave-vs-classic comparison is informational; the gates are
  // the aligned-exactness check above and the per-kernel pools below.
  TextTable t({"Kernel", "Arch", "shapes", "tail", "MAE classic",
               "MAE wave", "wave vs classic"});
  std::string json_cells;
  for (const auto& [key, cell] : cells) {
    std::vector<double> ce, we;
    std::size_t tails = 0;
    for (const Sample& s : cell) {
      ce.push_back(rel_err(s.classic, s.measured));
      we.push_back(rel_err(s.wave, s.measured));
      if (s.tail) ++tails;
    }
    const double mc = mean(ce), mw = mean(we);
    const char* verdict = mw < mc             ? "better"
                          : mw <= mc + 1e-12 ? "equal"
                                             : "worse";
    t.add_row({key.first, key.second, std::to_string(cell.size()),
               std::to_string(tails), str::format("%.3f", mc),
               str::format("%.3f", mw), verdict});
    if (!json_cells.empty()) json_cells += ",\n";
    json_cells += str::format(
        "    {\"kernel\": \"%s\", \"gpu\": \"%s\", \"shapes\": %zu, "
        "\"tail_shapes\": %zu, \"mae_classic\": %.6f, "
        "\"mae_wave\": %.6f}",
        key.first.c_str(), key.second.c_str(), cell.size(), tails, mc,
        mw);
  }
  std::printf("%s\n", t.render().c_str());

  // Gate 2: per-kernel pooled tail MAE, wave strictly better.
  std::size_t tail_failures = 0;
  std::printf("Tail-heavy pools (gate: wave MAE strictly below "
              "classic):\n");
  for (const auto& [kernel, errs] : tail_pool) {
    const double mc = mean(errs.first);
    const double mw = mean(errs.second);
    const bool ok = mw < mc;
    if (!ok) ++tail_failures;
    std::printf("  %-10s %zu shapes: classic %.3f, wave %.3f  %s\n",
                kernel.c_str(), errs.first.size(), mc, mw,
                ok ? "ok" : "FAIL");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  std::printf("\n%zu shapes simulated in %.2f s\n", samples.size(),
              elapsed);

  if (!json_path.empty()) {
    std::string json = "{\n  \"cells\": [\n" + json_cells + "\n  ],\n";
    json += "  \"aligned_mismatches\": " +
            std::to_string(aligned_mismatches) + ",\n";
    json += "  \"tail_pool_failures\": " +
            std::to_string(tail_failures) + ",\n";
    json += "  \"shapes\": " + std::to_string(samples.size()) + ",\n";
    json += "  \"elapsed_s\": " + str::format("%.3f", elapsed) + "\n}\n";
    io::write_file_atomic(json_path, json);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (aligned_mismatches != 0 || tail_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu aligned mismatches, %zu tail pools where "
                 "wave mode does not beat classic\n",
                 aligned_mismatches, tail_failures);
    return 1;
  }
  return 0;
}
