// Reproduces Table IV: kernel specifications, plus per-kernel compile
// facts from the virtual toolchain (registers, static instructions,
// static intensity) that the rest of the evaluation builds on.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/static_analyzer.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header("Table IV — kernel specifications",
                      "Table IV (benchmark kernels)");

  TextTable t({"Kernel", "Category", "Description", "Operation", "Sizes"});
  for (const auto& k : kernels::all_kernels()) {
    std::string sizes;
    for (std::size_t i = 0; i < k.input_sizes.size(); ++i) {
      if (i != 0) sizes += ",";
      sizes += std::to_string(k.input_sizes[i]);
    }
    t.add_row({std::string(k.name), std::string(k.category),
               std::string(k.description), std::string(k.operation),
               sizes});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Compile facts (baseline variant, Kepler K20):\n");
  TextTable c({"Kernel", "Stages", "Regs/thread", "Static instrs",
               "Intensity", "Divergent branches"});
  const auto& gpu = arch::gpu("K20");
  core::StaticAnalyzer analyzer(gpu);
  for (const auto& k : kernels::all_kernels()) {
    const auto wl =
        kernels::make_workload(k.name, k.input_sizes[2]);
    const auto rep = analyzer.analyze(wl);
    c.add_row({std::string(k.name), std::to_string(wl.stages.size()),
               std::to_string(rep.regs_per_thread),
               std::to_string(rep.static_instructions),
               str::format_double(rep.intensity, 2),
               std::to_string(rep.divergence.divergent_count)});
  }
  std::printf("%s\n", c.render().c_str());
  return 0;
}
