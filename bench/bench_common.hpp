#pragma once

// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench binary runs with no arguments and prints the reproduced
// table to stdout. Large sweeps default to a documented, seeded
// subsample so each binary finishes in seconds; set GPUSTATIC_FULL=1 in
// the environment to run the paper-sized sweeps instead.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "kernels/kernels.hpp"
#include "tuner/space.hpp"

namespace gpustatic::bench {

inline bool full_mode() {
  const char* v = std::getenv("GPUSTATIC_FULL");
  return v != nullptr && v[0] == '1';
}

/// Subsampling stride for exhaustive sweeps (1 in full mode).
inline std::size_t sweep_stride() { return full_mode() ? 1 : 4; }

/// Representative problem sizes per kernel for simulator-backed benches
/// (mid-range paper sizes; full mode uses the two largest).
inline std::vector<std::int64_t> bench_sizes(std::string_view kernel) {
  const bool cubed = kernel == "ex14fj";
  if (full_mode()) return cubed ? std::vector<std::int64_t>{32, 64}
                                : std::vector<std::int64_t>{256, 512};
  return cubed ? std::vector<std::int64_t>{16, 32}
               : std::vector<std::int64_t>{128, 256};
}

/// Single size used by warp-simulator-backed benches.
inline std::int64_t warp_size_for(std::string_view kernel) {
  return kernel == "ex14fj" ? 16 : 64;
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Mode: %s (set GPUSTATIC_FULL=1 for the paper-sized sweep)\n",
              full_mode() ? "FULL" : "subsampled");
  std::printf("================================================================\n\n");
}

}  // namespace gpustatic::bench
