// Reproduces Table III (the tuning feature space) and Fig. 3 (the Orio
// PerfTuning specification): prints the Fig. 3 annotation, parses it back
// through the spec parser, and enumerates the resulting space.

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "tuner/spec_parser.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Table III / Fig. 3 — autotuning feature space",
      "Table III (feature ranges) and Fig. 3 (PerfTuning spec)");

  const char* fig3 = R"(/*@ begin PerfTuning (
  def performance_params {
    param TC[] = range(32,1025,32);
    param BC[] = range(24,193,24);
    param UIF[] = range(1,6);
    param PL[] = [16,48];
    param CFLAGS[] = ['', '-use_fast_math'];
  }
) @*/)";

  std::printf("Fig. 3 performance tuning specification:\n%s\n\n", fig3);

  const tuner::ParamSpace space = tuner::parse_perf_tuning(fig3);
  std::printf("Parsed by tuner::parse_perf_tuning -> %zu variants\n\n",
              space.size());

  TextTable t({"Feature", "Values", "Count"});
  for (const auto& d : space.dimensions()) {
    std::string vals;
    if (d.values.size() <= 8) {
      for (std::size_t i = 0; i < d.values.size(); ++i) {
        if (i != 0) vals += ", ";
        vals += std::to_string(d.values[i]);
      }
    } else {
      vals = std::to_string(d.values.front()) + " .. " +
             std::to_string(d.values.back()) + " step " +
             std::to_string(d.values[1] - d.values[0]);
    }
    t.add_row({d.name, vals, std::to_string(d.values.size())});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "Paper Sec. IV-A: \"On average, the combination of parameter\n"
      "settings generated 5,120 code variants.\"  This space: %zu.\n\n",
      space.size());

  // Round-trip check.
  const std::string rendered = tuner::to_perf_tuning(space);
  const tuner::ParamSpace reparsed = tuner::parse_perf_tuning(rendered);
  std::printf("Spec round-trip: %s (%zu == %zu variants)\n",
              reparsed.size() == space.size() ? "OK" : "MISMATCH",
              reparsed.size(), space.size());
  return 0;
}
