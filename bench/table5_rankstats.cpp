// Reproduces Table V: statistics for autotuned kernels, top performers
// (Rank 1) vs poor performers (Rank 2), per kernel x architecture.
//
// Protocol (Sec. IV-A): every variant of the tuning space is compiled and
// measured (10 repetitions, 5th trial), times are sorted, and the set is
// split at the 50th percentile. The table reports occupancy mean/std/
// mode, dynamic register-operand traffic mean/std ("Register
// Instructions"), the modal register allocation, and thread-count
// quartiles per rank.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "tuner/experiment.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Table V — rank statistics for autotuned kernels",
      "Table V (occupancy / register / thread statistics per rank)");

  TextTable t({"Kernel", "Arch", "Rank", "Occ mean", "Occ std", "Occ mode",
               "RegTraffic mean", "RegTraffic std", "Alloc", "T 25th",
               "T 50th", "T 75th"});

  const tuner::ParamSpace space = tuner::paper_space();
  for (const auto& info : kernels::all_kernels()) {
    for (const auto& gpu : arch::all_gpus()) {
      // Aggregate trials over the bench sizes (the paper aggregates over
      // its five input sizes).
      std::vector<tuner::TrialRecord> trials;
      for (const std::int64_t n : bench::bench_sizes(info.name)) {
        const auto wl = kernels::make_workload(info.name, n);
        auto part = tuner::sweep(space, wl, gpu, {},
                                 bench::sweep_stride());
        trials.insert(trials.end(), part.begin(), part.end());
      }
      const tuner::RankedTrials ranked = tuner::rank_trials(trials);
      for (int rank = 1; rank <= 2; ++rank) {
        const auto& rs = tuner::rank_stats(rank == 1 ? ranked.rank1
                                                     : ranked.rank2);
        t.add_row({std::string(info.name),
                   std::string(arch::family_name(gpu.family)),
                   std::to_string(rank),
                   str::format_double(rs.occ_mean, 2),
                   str::format_double(rs.occ_std, 2),
                   str::format_double(rs.occ_mode, 2),
                   str::format_double(rs.reg_traffic_mean, 1),
                   str::format_double(rs.reg_traffic_std, 1),
                   std::to_string(rs.regs_allocated),
                   str::format_trimmed(rs.threads_p25, 0),
                   str::format_trimmed(rs.threads_p50, 0),
                   str::format_trimmed(rs.threads_p75, 0)});
      }
      t.add_rule();
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): atax/bicg Rank-1 thread quartiles low,\n"
      "matvec2d/ex14fj Rank-1 high; occupancy means similar across ranks\n"
      "(occupancy alone is not predictive); Rank-1 register traffic\n"
      "below Rank-2.\n");
  return 0;
}
