// google-benchmark micro-performance suite for the library itself:
// occupancy calculation, parameter suggestion, static analysis, the
// virtual compiler, both simulation engines, and the search strategies.
// These document the cost of "no program runs" static analysis vs the
// empirical path — the tradeoff the paper's Sec. III framework figure
// draws.

#include <benchmark/benchmark.h>

#include "analysis/mix.hpp"
#include "analysis/predictor.hpp"
#include "codegen/compiler.hpp"
#include "core/static_analyzer.hpp"
#include "kernels/kernels.hpp"
#include "occupancy/suggest.hpp"
#include "sim/runner.hpp"
#include "tuner/search.hpp"

using namespace gpustatic;  // NOLINT

namespace {

const arch::GpuSpec& kepler() { return arch::gpu("K20"); }

void BM_OccupancyCalculate(benchmark::State& state) {
  const auto& gpu = kepler();
  std::uint32_t t = 32;
  for (auto _ : state) {
    const auto r = occupancy::calculate(gpu, {t, 28, 2048});
    benchmark::DoNotOptimize(r.occupancy);
    t = t % 1024 + 32;
  }
}
BENCHMARK(BM_OccupancyCalculate);

void BM_OccupancySuggest(benchmark::State& state) {
  const auto& gpu = kepler();
  for (auto _ : state) {
    const auto s = occupancy::suggest(gpu, 27, 0);
    benchmark::DoNotOptimize(s.occ_star);
  }
}
BENCHMARK(BM_OccupancySuggest);

void BM_CompileKernel(benchmark::State& state) {
  const auto wl = kernels::make_atax(256);
  const codegen::Compiler c(kepler(), {});
  for (auto _ : state) {
    const auto lw = c.compile(wl);
    benchmark::DoNotOptimize(lw.regs_per_thread());
  }
}
BENCHMARK(BM_CompileKernel);

void BM_StaticMix(benchmark::State& state) {
  const auto wl = kernels::make_atax(256);
  const codegen::Compiler c(kepler(), {});
  const auto lw = c.compile(wl);
  for (auto _ : state) {
    const auto m = analysis::analyze_mix(lw.stages[0].kernel);
    benchmark::DoNotOptimize(m.weighted.intensity());
  }
}
BENCHMARK(BM_StaticMix);

void BM_Eq6Predict(benchmark::State& state) {
  const auto wl = kernels::make_atax(256);
  const codegen::Compiler c(kepler(), {});
  const auto lw = c.compile(wl);
  const auto mix = analysis::analyze_mix(lw.stages[0].kernel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::predicted_cost(mix, arch::Family::Kepler));
  }
}
BENCHMARK(BM_Eq6Predict);

void BM_AnalyticStage(benchmark::State& state) {
  const auto wl = kernels::make_atax(512);
  const codegen::Compiler c(kepler(), {});
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(kepler(), 48);
  const sim::AnalyticModel model(machine);
  for (auto _ : state) {
    const auto r = model.run_stage(lw.stages[0]);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_AnalyticStage);

void BM_WarpSimStage(benchmark::State& state) {
  const auto wl = kernels::make_atax(static_cast<std::int64_t>(
      state.range(0)));
  const codegen::Compiler c(kepler(), {});
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(kepler(), 48);
  for (auto _ : state) {
    sim::DeviceMemory mem(wl);
    sim::WarpSimulator simulator(machine);
    const auto r = simulator.run_stage(lw.stages[0], mem);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_WarpSimStage)->Arg(32)->Arg(64)->Arg(128);

void BM_SearchStrategies(benchmark::State& state) {
  // Synthetic quadratic objective over the paper space: isolates search
  // overhead from simulation cost.
  const tuner::ParamSpace space = tuner::paper_space();
  const tuner::Objective fn = [](const codegen::TuningParams& p) {
    const double t = (p.threads_per_block - 416.0) / 1024.0;
    const double u = (p.unroll - 3.0) / 6.0;
    return 1.0 + t * t + u * u;
  };
  tuner::SearchOptions opts;
  opts.budget = 200;
  const int which = static_cast<int>(state.range(0));
  for (auto _ : state) {
    tuner::SearchResult r;
    switch (which) {
      case 0: r = tuner::random_search(space, fn, opts); break;
      case 1: r = tuner::simulated_annealing(space, fn, opts); break;
      case 2: r = tuner::genetic_search(space, fn, opts); break;
      default: r = tuner::nelder_mead_search(space, fn, opts); break;
    }
    benchmark::DoNotOptimize(r.best_time);
  }
}
BENCHMARK(BM_SearchStrategies)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_FullStaticAnalysis(benchmark::State& state) {
  const auto wl = kernels::make_ex14fj(32);
  const core::StaticAnalyzer analyzer(kepler());
  for (auto _ : state) {
    const auto rep = analyzer.analyze(wl);
    benchmark::DoNotOptimize(rep.intensity);
  }
}
BENCHMARK(BM_FullStaticAnalysis);

}  // namespace

BENCHMARK_MAIN();

// ---- extension modules ----------------------------------------------------

#include "dynamic/profile.hpp"
#include "frontend/parser.hpp"
#include "frontend/sources.hpp"
#include "ml/classify.hpp"
#include "replay/journal.hpp"
#include "tuner/hybrid.hpp"

namespace {

void BM_FrontendParse(benchmark::State& state) {
  for (auto _ : state) {
    const auto wl = frontend::parse_workload(frontend::sources::kEx14fj);
    benchmark::DoNotOptimize(wl.stages.size());
  }
}
BENCHMARK(BM_FrontendParse);

void BM_ReuseDistanceAccess(benchmark::State& state) {
  dynamic::ReuseDistanceAnalyzer analyzer({128, 8192});
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.access(line % 4096));
    line += 7;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseDistanceAccess);

void BM_ProfileWorkload(benchmark::State& state) {
  const auto wl = kernels::make_atax(48);
  codegen::TuningParams p;
  p.threads_per_block = 64;
  p.block_count = 24;
  const codegen::Compiler c(kepler(), p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(kepler(), p.l1_pref_kb);
  for (auto _ : state) {
    const auto prof = dynamic::profile_workload(lw, wl, machine);
    benchmark::DoNotOptimize(prof.total_issues());
  }
}
BENCHMARK(BM_ProfileWorkload)->Unit(benchmark::kMillisecond);

void BM_TreeFit(benchmark::State& state) {
  // A realistic corpus: one strided atax sweep on Kepler.
  ml::CorpusOptions opts;
  opts.stride = 64;
  std::vector<ml::CorpusEntry> corpus;
  corpus.push_back({kernels::make_atax(64), &kepler()});
  const auto data = ml::build_rank_dataset(corpus, opts);
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Unit(benchmark::kMillisecond);

void BM_TreePredict(benchmark::State& state) {
  ml::CorpusOptions opts;
  opts.stride = 64;
  std::vector<ml::CorpusEntry> corpus;
  corpus.push_back({kernels::make_atax(64), &kepler()});
  const auto data = ml::build_rank_dataset(corpus, opts);
  ml::DecisionTree tree;
  tree.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(data.rows[i % data.size()]));
    ++i;
  }
}
BENCHMARK(BM_TreePredict);

void BM_JournalRoundTrip(benchmark::State& state) {
  replay::TuningJournal journal;
  journal.set_context("atax", "K20", 256);
  for (int i = 0; i < 200; ++i) {
    replay::VariantRecord v;
    v.params.threads_per_block = 32 * (1 + i % 32);
    v.predicted_cost = 1000.0 + i;
    v.measured_ms = 0.01 * (1 + i % 7);
    journal.record_variant(v);
  }
  for (auto _ : state) {
    const auto text = journal.serialize();
    const auto back = replay::TuningJournal::parse(text);
    benchmark::DoNotOptimize(back.variants().size());
  }
}
BENCHMARK(BM_JournalRoundTrip);

void BM_HybridShortlist(benchmark::State& state) {
  // Static stage only (budget 0): the cost of compiling + ranking the
  // pruned space without any run.
  const auto wl = kernels::make_atax(64);
  const auto space = tuner::paper_space();
  const tuner::Objective never = [](const codegen::TuningParams&) {
    return 1.0;
  };
  tuner::HybridOptions opts;
  opts.empirical_budget = 0;
  for (auto _ : state) {
    const auto r = tuner::hybrid_search(space, kepler(), wl, never, opts);
    benchmark::DoNotOptimize(r.shortlist.size());
  }
}
BENCHMARK(BM_HybridShortlist)->Unit(benchmark::kMillisecond);

}  // namespace
