// Ablation: static Eq. 6 predictions vs. dynamic-count predictions.
//
// The paper's thesis is that *static* instruction mixes predict relative
// kernel cost well enough to guide an autotuner without running anything
// (Fig. 5). The natural question — how much accuracy is left on the
// table? — is answered here by giving the same CPI-weighted cost model
// the *measured* dynamic counts (Fig. 2's IC metric) plus measured
// memory traffic, and scoring both against simulated time.
//
// Two sweeps isolate what each model can and cannot see:
//
//  * CODE sweep (unroll x fast-math x coarsening, fixed launch): both
//    models rank these — the static mix changes with the generated code.
//    Expected: static rho close to dynamic rho (the paper's claim).
//  * LAUNCH sweep (threads x blocks, fixed code): Eq. 6 is blind here by
//    construction — static counts do not depend on launch geometry. Its
//    rho is ~0, which is exactly why the paper pairs the mix model with
//    the occupancy model and thread-range rules (Sec. III-C) instead of
//    ranking launches by Eq. 6. The dynamic model sees the geometry
//    through measured counts and memory behavior.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/predictor.hpp"
#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dynamic/model.hpp"
#include "dynamic/profile.hpp"

using namespace gpustatic;  // NOLINT

namespace {

struct SweepResult {
  std::vector<double> measured;
  std::vector<double> static_score;
  std::vector<double> dynamic_score;
};

void eval_variant(const dsl::WorkloadDesc& wl, const arch::GpuSpec& gpu,
                  const codegen::TuningParams& p, SweepResult& r) {
  const codegen::Compiler c(gpu, p);
  const auto lw = c.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
  const auto prof = dynamic::profile_workload(lw, wl, machine);
  if (!prof.measurement.valid) return;
  r.measured.push_back(prof.measurement.base_time_ms);
  r.static_score.push_back(analysis::predicted_cost(lw, gpu.family));
  r.dynamic_score.push_back(
      dynamic::predict_workload(lw, prof, machine).time_ms);
}

/// Unroll / fast-math / coarsening at a fixed launch.
SweepResult code_sweep(const std::string& kernel,
                       const arch::GpuSpec& gpu, std::int64_t n) {
  SweepResult r;
  const auto wl = kernels::make_workload(kernel, n);
  for (const int uif : {1, 2, 4, 6}) {
    for (const bool fm : {false, true}) {
      for (const int sc : {1, 3}) {
        codegen::TuningParams p;
        p.threads_per_block = 256;
        p.block_count = 96;
        p.unroll = uif;
        p.fast_math = fm;
        p.stream_chunk = sc;
        eval_variant(wl, gpu, p, r);
      }
    }
  }
  return r;
}

/// Threads x blocks at fixed code parameters.
SweepResult launch_sweep(const std::string& kernel,
                         const arch::GpuSpec& gpu, std::int64_t n) {
  SweepResult r;
  const auto wl = kernels::make_workload(kernel, n);
  const std::vector<int> tcs = bench::full_mode()
                                   ? std::vector<int>{32,  64,  128, 192, 256,
                                                      384, 512, 768, 1024}
                                   : std::vector<int>{64, 128, 256, 512, 1024};
  for (const int tc : tcs)
    for (const int bc : {24, 96}) {
      codegen::TuningParams p;
      p.threads_per_block = tc;
      p.block_count = bc;
      eval_variant(wl, gpu, p, r);
    }
  return r;
}

double norm_mae(const std::vector<double>& pred,
                const std::vector<double>& meas) {
  return stats::mean_absolute_error(stats::normalize01(pred),
                                    stats::normalize01(meas));
}

void report(TextTable& t, const char* sweep_name, const char* kernel,
            const std::string& gpu_name, const SweepResult& r) {
  if (r.measured.size() < 3) return;
  t.add_row({sweep_name, kernel, gpu_name,
             std::to_string(r.measured.size()),
             str::format("%.3f", stats::spearman(r.static_score, r.measured)),
             str::format("%.3f",
                         stats::spearman(r.dynamic_score, r.measured)),
             str::format("%.3f", norm_mae(r.static_score, r.measured)),
             str::format("%.3f", norm_mae(r.dynamic_score, r.measured))});
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: static (Eq. 6) vs dynamic (IC) cost model",
      "extension of Fig. 5 / Table VI — measured-count upper bound");

  TextTable t({"Sweep", "Kernel", "Arch", "n", "rho static", "rho dynamic",
               "MAE static", "MAE dynamic"});
  const std::vector<std::string> gpus =
      bench::full_mode()
          ? std::vector<std::string>{"M2050", "K20", "M40", "P100"}
          : std::vector<std::string>{"K20", "M40"};

  for (const auto& kernel : {"atax", "bicg", "ex14fj", "matvec2d"}) {
    // Problem sizes: large enough that launch geometry matters (the
    // 1-D-domain kernels need domain >> max TC), small enough for the
    // warp engine inside a sweep.
    const std::int64_t n = std::string(kernel) == "ex14fj" ? 16 : 256;
    for (const auto& gpu_name : gpus) {
      const auto& gpu = arch::gpu(gpu_name);
      report(t, "code", kernel, gpu_name, code_sweep(kernel, gpu, n));
      report(t, "launch", kernel, gpu_name, launch_sweep(kernel, gpu, n));
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: rho = Spearman rank correlation with simulated time\n"
      "(higher is better); MAE on min-max-normalized series (lower is\n"
      "better). CODE sweep varies UIF/fast-math/SC at a fixed launch —\n"
      "the static model's home turf. LAUNCH sweep varies TC/BC at fixed\n"
      "code — Eq. 6 is launch-blind by construction (rho ~ 0 expected),\n"
      "which is why the paper delegates launch choice to the occupancy\n"
      "model + thread rules rather than to the mix model.\n");
  return 0;
}
