// Ablation: the empirical-testing dial (paper Sec. VII).
//
// Sweeps the hybrid search's budget B from 0 (pure static, zero runs)
// to the whole rule-pruned space, and reports for every position of the
// dial how far the chosen variant is from the TRUE optimum of the full
// 5120-variant space (found by exhaustive search, the Sec. IV-C
// baseline protocol).
//
// Expected shape: quality improves monotonically with B; a handful of
// runs (B ~ 4-16) recovers most of the gap between the zero-run
// recommendation and the pruned-space optimum; the curve plateaus at
// the Static+RB exhaustive result, whose own gap to the full-space
// optimum is the price of pruning (Fig. 6's trade).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "tuner/experiment.hpp"
#include "tuner/hybrid.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "ABLATION: dialing in empirical testing (hybrid search)",
      "Sec. VII 'degree of empirical testing can be dialed in'");

  const std::vector<std::size_t> budgets = {0,  1,  2,  4,
                                            8, 16, 64, static_cast<std::size_t>(-1)};
  TextTable t({"Kernel", "Arch", "B", "runs", "dial", "chosen ms",
               "over optimum"});

  const std::vector<std::string> gpus =
      bench::full_mode() ? std::vector<std::string>{"K20", "M40", "P100"}
                         : std::vector<std::string>{"K20"};

  for (const auto& kernel : {"atax", "bicg", "ex14fj", "matvec2d"}) {
    const std::int64_t n = bench::warp_size_for(kernel);
    const auto wl = kernels::make_workload(kernel, n);
    for (const auto& gpu_name : gpus) {
      const auto& gpu = arch::gpu(gpu_name);
      const auto space = tuner::paper_space();
      const auto objective = tuner::make_objective(wl, gpu);

      // Ground truth: full-space exhaustive optimum.
      const auto oracle = tuner::exhaustive_search(space, objective);

      for (const std::size_t b : budgets) {
        tuner::HybridOptions opts;
        opts.empirical_budget = b;
        const auto r =
            tuner::hybrid_search(space, gpu, wl, objective, opts);
        // Budget 0 recommends without measuring; measure that single
        // recommendation once for scoring purposes.
        const double chosen =
            b == 0 ? objective(r.best_params) : r.best_time_ms;
        const double over =
            (chosen - oracle.best_time) / oracle.best_time;
        t.add_row({kernel, gpu_name,
                   b == static_cast<std::size_t>(-1) ? "all"
                                                     : std::to_string(b),
                   std::to_string(r.empirical_evaluations),
                   str::format("%.0f%%", 100 * r.empirical_fraction()),
                   str::format("%.4f", chosen),
                   str::format("%.1f%%", 100 * over)});
      }
      t.add_rule();
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: B = empirical budget (runs allowed after the static\n"
      "stage); dial = B / pruned-space size; 'over optimum' compares the\n"
      "chosen variant to the full 5120-variant exhaustive optimum. B=0\n"
      "is the paper's zero-run regime; 'all' is the Static+RB method of\n"
      "Fig. 6.\n");
  return 0;
}
