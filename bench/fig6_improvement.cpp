// Reproduces Fig. 6: improved search time over exhaustive autotuning,
// comparing the Static and Static+Rule-Based approaches per kernel and
// architecture. The improvement metric is the fraction of the 5120-
// variant space eliminated before any empirical testing; the bench also
// verifies that the pruned spaces retain (near-)optimal variants.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/session.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Fig. 6 — search-space improvement: Static and Rule-Based",
      "Fig. 6 (reduction vs exhaustive, per kernel x architecture)");

  TextTable t({"Kernel", "Arch", "Intensity", "Rule", "Static %", "RB %",
               "Best(exh)", "Best(static)", "Best(RB)", "Gap(RB)"});

  for (const auto& info : kernels::all_kernels()) {
    const std::int64_t n = bench::bench_sizes(info.name)[1];
    const auto wl = kernels::make_workload(info.name, n);
    for (const auto& gpu : arch::all_gpus()) {
      core::TuningSession session(wl, gpu);
      // Exhaustive baseline over a subsampled full space in quick mode:
      // search cost scales identically, optimum gap is still meaningful.
      const auto& prune = session.prune();
      const auto ex = session.tune("exhaustive");
      const auto st = session.tune("static");
      const auto rb = session.tune("rule");
      const double gap =
          ex.search.best_time > 0
              ? (rb.search.best_time - ex.search.best_time) /
                    ex.search.best_time * 100.0
              : 0.0;
      t.add_row({std::string(info.name),
                 std::string(arch::family_name(gpu.family)),
                 str::format_double(prune.intensity, 2),
                 prune.prefers_upper ? "upper" : "lower",
                 str::format_double(st.space_reduction() * 100.0, 1),
                 str::format_double(rb.space_reduction() * 100.0, 1),
                 str::format_double(ex.search.best_time, 4),
                 str::format_double(st.search.best_time, 4),
                 str::format_double(rb.search.best_time, 4),
                 str::format_double(gap, 1) + "%"});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): Static reduction ~84-87.5%% (4-5 of 32\n"
      "thread candidates kept), Static+RB ~93.8%%; the pruned spaces\n"
      "retain the optimum or a variant within a few percent.\n");
  return 0;
}
