// Reproduces Fig. 5: predicting (normalized) execution time from static
// instruction mixes via Eq. 6. For a sample of variants per kernel x
// architecture, the static CPI-weighted score and the measured (warp-
// simulated) time are min-max normalized; the mean absolute error between
// the two normalized series is reported, together with the rank
// correlation that matters for autotuning decisions.

#include <cstdio>

#include <algorithm>

#include "analysis/mix.hpp"
#include "common/error.hpp"
#include "analysis/predictor.hpp"
#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Fig. 5 — execution time from static instruction mixes",
      "Fig. 5 (normalized MAE of the Eq. 6 predictor per kernel x arch)");

  // Variant sample: all TC values at two unroll factors, both CFLAGS.
  std::vector<codegen::TuningParams> variants;
  for (int tc = 64; tc <= 1024; tc += 64)
    for (const int uif : {1, 4})
      for (const bool fm : {false, true}) {
        codegen::TuningParams p;
        p.threads_per_block = tc;
        p.unroll = uif;
        p.fast_math = fm;
        p.block_count = 48;
        variants.push_back(p);
      }

  TextTable t({"Kernel", "Arch", "MAE", "Spearman", "Variants"});
  for (const auto& info : kernels::all_kernels()) {
    const std::int64_t n = bench::warp_size_for(info.name);
    const auto wl = kernels::make_workload(info.name, n);
    for (const auto& gpu : arch::all_gpus()) {
      std::vector<double> predicted, measured;
      const auto machine = sim::MachineModel::from(gpu, 48);
      for (const auto& p : variants) {
        try {
          const codegen::Compiler compiler(gpu, p);
          const auto lw = compiler.compile(wl);
          const double score =
              analysis::predicted_cost(lw, gpu.family);
          sim::RunOptions opts;
          opts.engine = sim::Engine::Warp;
          const auto m = sim::run_workload(lw, wl, machine, opts);
          if (!m.valid) continue;
          predicted.push_back(score);
          measured.push_back(m.trial_time_ms);
        } catch (const gpustatic::Error&) {
        }
      }
      // Sort by measured time (the figure's x-axis ordering), then
      // normalize both series.
      std::vector<std::size_t> order(measured.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a,
                                                std::size_t b) {
        return measured[a] < measured[b];
      });
      std::vector<double> ms, ps;
      for (const std::size_t i : order) {
        ms.push_back(measured[i]);
        ps.push_back(predicted[i]);
      }
      const auto mn = stats::normalize01(ms);
      const auto pn = stats::normalize01(ps);
      t.add_row({std::string(info.name),
                 std::string(arch::family_letter(gpu.family)),
                 str::format_double(stats::mean_absolute_error(mn, pn), 3),
                 str::format_double(stats::spearman(measured, predicted), 3),
                 std::to_string(ms.size())});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): small MAE for atax/bicg/matvec2d;\n"
      "ex14fj is the hardest case (paper reports MAE near 1.0 on its\n"
      "normalization). Positive rank correlation is what enables\n"
      "model-based pruning.\n");
  return 0;
}
