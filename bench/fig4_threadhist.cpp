// Reproduces Fig. 4: thread-count histograms for Orio exhaustive
// autotuning, Rank 1 (good performers) vs Rank 2 (poor performers),
// per kernel and architecture.

#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "tuner/experiment.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header("Fig. 4 — thread counts by rank",
                      "Fig. 4 (thread-count histograms per kernel x arch)");

  const tuner::ParamSpace space = tuner::paper_space();
  constexpr std::size_t kBins = 8;  // 128-wide bins over 0..1024

  for (const auto& info : kernels::all_kernels()) {
    for (const auto& gpu : arch::all_gpus()) {
      std::vector<tuner::TrialRecord> trials;
      for (const std::int64_t n : bench::bench_sizes(info.name)) {
        const auto wl = kernels::make_workload(info.name, n);
        auto part = tuner::sweep(space, wl, gpu, {},
                                 bench::sweep_stride());
        trials.insert(trials.end(), part.begin(), part.end());
      }
      const auto ranked = tuner::rank_trials(trials);

      auto threads_of = [](const std::vector<tuner::TrialRecord>& r) {
        std::vector<double> t;
        t.reserve(r.size());
        for (const auto& rec : r)
          t.push_back(rec.params.threads_per_block);
        return t;
      };
      const auto h1 =
          stats::histogram(threads_of(ranked.rank1), 0, 1024, kBins);
      const auto h2 =
          stats::histogram(threads_of(ranked.rank2), 0, 1024, kBins);
      const std::size_t maxc = std::max(h1.max_count(), h2.max_count());

      std::printf("kernel=%s arch=%s (rank1=%zu rank2=%zu trials)\n",
                  std::string(info.name).c_str(),
                  std::string(arch::family_name(gpu.family)).c_str(),
                  ranked.rank1.size(), ranked.rank2.size());
      for (std::size_t b = 0; b < kBins; ++b) {
        std::printf("  T %4.0f-%4.0f | r1 %-24s %4zu | r2 %-24s %4zu\n",
                    h1.lo + static_cast<double>(b) * h1.bin_width(),
                    h1.lo + static_cast<double>(b + 1) * h1.bin_width(),
                    ascii_bar(static_cast<double>(h1.counts[b]),
                              static_cast<double>(maxc), 24)
                        .c_str(),
                    h1.counts[b],
                    ascii_bar(static_cast<double>(h2.counts[b]),
                              static_cast<double>(maxc), 24)
                        .c_str(),
                    h2.counts[b]);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape (paper): atax and bicg Rank-1 mass in the lower\n"
      "thread bins; matvec2d and ex14fj Rank-1 mass in the upper bins.\n");
  return 0;
}
