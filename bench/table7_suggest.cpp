// Reproduces Table VII: suggested parameters to achieve theoretical
// occupancy — thread candidates T*, register usage and headroom [Ru:R*],
// shared-memory budget S*, and the achievable occupancy occ*.

#include <cstdio>

#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "occupancy/suggest.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Table VII — suggested parameters for theoretical occupancy",
      "Table VII (T*, [Ru:R*], S*, occ* per kernel x architecture)");

  TextTable t({"Kernel", "Arch", "T*", "[Ru:R*]", "S* (B)", "occ*"});
  for (const auto& info : kernels::all_kernels()) {
    const auto wl =
        kernels::make_workload(info.name, info.input_sizes[2]);
    for (const auto& gpu : arch::all_gpus()) {
      const codegen::Compiler compiler(gpu, {});
      const auto lw = compiler.compile(wl);
      const auto s = occupancy::suggest(gpu, lw.regs_per_thread(),
                                        lw.smem_per_block());
      std::string threads;
      for (std::size_t i = 0; i < s.thread_candidates.size(); ++i) {
        if (i != 0) threads += ", ";
        threads += std::to_string(s.thread_candidates[i]);
      }
      t.add_row({std::string(info.name),
                 std::string(arch::family_name(gpu.family)), threads,
                 "[" + std::to_string(s.regs_used) + " : " +
                     std::to_string(s.reg_headroom) + "]",
                 std::to_string(s.smem_budget),
                 str::format_trimmed(s.occ_star, 2)});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): per-architecture thread ladders\n"
      "  Fermi   {192, 256, 384, 512, 768}\n"
      "  Kepler  {128, 256, 512, 1024}\n"
      "  Maxwell {64, 128, 256, 512, 1024}\n"
      "  Pascal  {64, 128, 256, 512, 1024}\n"
      "with occ* = 1 wherever the register footprint permits.\n");
  return 0;
}
