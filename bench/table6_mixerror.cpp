// Reproduces Table VI: error rates when estimating dynamic instruction
// mixes from static mixes, plus the intensity column.
//
// Static mixes come from analysis::analyze_mix (loop-weighted shares);
// dynamic mixes come from the warp simulator's executed-instruction
// counts. The error metric is the absolute difference between static and
// dynamic class *shares* (percentage points / 100, sum-of-squares over
// the categories inside the class), mirroring the paper's "sum of
// squares" formulation.

#include <cmath>
#include <cstdio>

#include "analysis/mix.hpp"
#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT

namespace {

double class_share(const sim::Counts& c, arch::OpClass cls) {
  const double total = c.by_class(arch::OpClass::FLOPS) +
                       c.by_class(arch::OpClass::MEM) +
                       c.by_class(arch::OpClass::CTRL) +
                       c.by_class(arch::OpClass::REG);
  return total > 0 ? c.by_class(cls) / total : 0.0;
}

}  // namespace

int main() {
  bench::print_header(
      "Table VI — static-vs-dynamic instruction-mix error",
      "Table VI (per-class estimation error + intensity)");

  TextTable t({"Kernel", "Arch", "FLOPS err", "MEM err", "CTRL err",
               "Intensity (static)", "Intensity (dynamic)"});

  for (const auto& info : kernels::all_kernels()) {
    const std::int64_t n = bench::warp_size_for(info.name);
    const auto wl = kernels::make_workload(info.name, n);
    for (const auto& gpu : arch::all_gpus()) {
      codegen::TuningParams p;
      p.threads_per_block = 128;
      p.block_count = static_cast<int>(gpu.multiprocessors);
      const codegen::Compiler compiler(gpu, p);
      const auto lw = compiler.compile(wl);

      // Static estimate.
      analysis::StaticMix mix;
      for (const auto& st : lw.stages) {
        const auto m = analysis::analyze_mix(st.kernel);
        mix.flat += m.flat;
        mix.weighted += m.weighted;
      }

      // Dynamic measurement (warp simulator).
      const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
      sim::RunOptions opts;
      opts.engine = sim::Engine::Warp;
      const auto meas = sim::run_workload(lw, wl, machine, opts);

      auto err = [&](arch::OpClass cls) {
        const double d = class_share(mix.weighted, cls) -
                         class_share(meas.counts, cls);
        return std::abs(d) * 10.0;  // scaled share error, paper-style
      };
      t.add_row({std::string(info.name),
                 std::string(arch::family_letter(gpu.family)),
                 str::format_double(err(arch::OpClass::FLOPS), 2),
                 str::format_double(err(arch::OpClass::MEM), 2),
                 str::format_double(err(arch::OpClass::CTRL), 2),
                 str::format_double(mix.weighted.intensity(), 1),
                 str::format_double(meas.counts.intensity(), 1)});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Expected shape (paper): intensity ordering bicg < atax < 4.0 <\n"
      "matvec2d, ex14fj; small FLOPS error everywhere; larger MEM/CTRL\n"
      "error for the memory-bound kernels.\n");
  return 0;
}
