// Evaluation hot-path bench: cold (compile every point, the pre-cache
// world: one fresh evaluator per point) vs warm (one SimEvaluator whose
// SimContext memoizes lowering, analyses, and scratch) over the same
// strided sample of the paper space. Prints points/sec for both passes
// and the compilation-cache accounting, verifies the two passes return
// bit-identical costs, and exits non-zero when
//
//   * warm points/sec < --min-ratio x cold points/sec (default 1.5 —
//     the CI gate that the cache actually pays for itself), or
//   * a launch-shape-only sweep triggers any recompile, or
//   * any cold/warm cost disagrees (the cache must be pure speed).
//
//   $ ./bench/bench_evaluate_hotpath [--kernel NAME] [--gpu NAME]
//       [--points N] [--engine analytic|warp] [--min-ratio R]
//       [--json PATH]
//
// --json writes the machine-readable artifact CI uploads as
// BENCH_evaluate_hotpath.json, extending the tracked perf trajectory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"
#include "kernels/kernels.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/space.hpp"

using namespace gpustatic;  // NOLINT
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(const Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string kernel = "atax";
  std::string gpu_name = "K20";
  std::size_t points = 192;
  std::string engine = "analytic";
  double min_ratio = 1.5;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--kernel") == 0)
      kernel = value();
    else if (std::strcmp(argv[i], "--gpu") == 0)
      gpu_name = value();
    else if (std::strcmp(argv[i], "--points") == 0)
      points = static_cast<std::size_t>(std::stoull(value()));
    else if (std::strcmp(argv[i], "--engine") == 0)
      engine = value();
    else if (std::strcmp(argv[i], "--min-ratio") == 0)
      min_ratio = std::stod(value());
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = value();
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (points == 0) {
    std::fprintf(stderr, "--points must be >= 1\n");
    return 2;
  }

  bench::print_header(
      "Evaluation hot path: compile-once vs compile-every-point",
      "ROADMAP north star (amortized per-point cost; cf. arXiv:2102.05299)");

  try {
    const arch::GpuSpec& gpu = arch::gpu(gpu_name);
    const std::int64_t n = engine == "warp"
                               ? bench::warp_size_for(kernel)
                               : bench::bench_sizes(kernel).front();
    const dsl::WorkloadDesc workload = kernels::make_workload(kernel, n);
    sim::RunOptions run_opts;
    run_opts.engine =
        engine == "warp" ? sim::Engine::Warp : sim::Engine::Analytic;

    // A strided sample of the paper space: visits every dimension's
    // values, mixing codegen keys with many launch shapes per key. The
    // stride is forced odd so it is coprime with the low-order
    // UIF x PL x CFLAGS cycle — an even stride would sample a single
    // codegen key and overstate the cache.
    const tuner::ParamSpace space = tuner::paper_space();
    const std::size_t stride =
        std::max<std::size_t>(1, space.size() / points) | 1;
    std::vector<codegen::TuningParams> sample;
    sample.reserve(points);
    for (std::size_t flat = 0;
         flat < space.size() && sample.size() < points; flat += stride)
      sample.push_back(space.to_params(space.point_at(flat)));

    std::printf("kernel=%s gpu=%s n=%lld engine=%s points=%zu\n\n",
                kernel.c_str(), gpu_name.c_str(),
                static_cast<long long>(n), engine.c_str(), sample.size());

    // ---- cold: one fresh evaluator (and pipeline) per point ------------
    std::vector<double> cold_costs(sample.size());
    const auto cold_start = Clock::now();
    for (std::size_t i = 0; i < sample.size(); ++i) {
      tuner::SimEvaluator fresh(workload, gpu, run_opts);
      cold_costs[i] = fresh.evaluate(sample[i]);
    }
    const double cold_s = seconds_since(cold_start);

    // ---- warm: one evaluator serves the whole sweep --------------------
    tuner::SimEvaluator evaluator(workload, gpu, run_opts);
    std::vector<double> warm_costs(sample.size());
    const auto warm_start = Clock::now();
    for (std::size_t i = 0; i < sample.size(); ++i)
      warm_costs[i] = evaluator.evaluate(sample[i]);
    const double warm_s = seconds_since(warm_start);

    const codegen::CompileCacheStats stats =
        evaluator.context().compilation_cache().stats();

    // ---- launch-shape-only sweep must not recompile --------------------
    codegen::TuningParams base = sample.front();
    std::size_t launch_only = 0;
    for (const int tc : {64, 128, 256, 512})
      for (const int bc : {24, 96, 168})
        for (const int pl : {16, 48}) {
          codegen::TuningParams p = base;
          p.threads_per_block = tc;
          p.block_count = bc;
          p.l1_pref_kb = pl;
          (void)evaluator.evaluate(p);
          ++launch_only;
        }
    const codegen::CompileCacheStats after =
        evaluator.context().compilation_cache().stats();
    const std::size_t launch_recompiles = after.misses - stats.misses;

    const double cold_pps = static_cast<double>(sample.size()) / cold_s;
    const double warm_pps = static_cast<double>(sample.size()) / warm_s;
    const double ratio = warm_pps / cold_pps;

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < sample.size(); ++i)
      if (cold_costs[i] != warm_costs[i]) ++mismatches;

    std::printf("cold: %8.1f points/sec  (%.3f s, compile every point)\n",
                cold_pps, cold_s);
    std::printf("warm: %8.1f points/sec  (%.3f s, compile-once pipeline)\n",
                warm_pps, warm_s);
    std::printf("warm/cold ratio: %.2fx (gate: >= %.2fx)\n", ratio,
                min_ratio);
    std::printf("compile cache: %zu misses / %zu hits over %zu points\n",
                stats.misses, stats.hits, sample.size());
    std::printf("launch-shape-only sweep: %zu evaluations, %zu recompiles\n",
                launch_only, launch_recompiles);

    if (!json_path.empty()) {
      const std::string json =
          "{\n  \"kernel\": \"" + kernel + "\",\n  \"gpu\": \"" + gpu_name +
          "\",\n  \"engine\": \"" + engine +
          "\",\n  \"points\": " + std::to_string(sample.size()) +
          ",\n  \"cold_s\": " + str::format("%.6f", cold_s) +
          ",\n  \"warm_s\": " + str::format("%.6f", warm_s) +
          ",\n  \"cold_points_per_sec\": " + str::format("%.3f", cold_pps) +
          ",\n  \"warm_points_per_sec\": " + str::format("%.3f", warm_pps) +
          ",\n  \"warm_over_cold\": " + str::format("%.3f", ratio) +
          ",\n  \"compile_misses\": " + std::to_string(stats.misses) +
          ",\n  \"compile_hits\": " + std::to_string(stats.hits) +
          ",\n  \"launch_only_recompiles\": " +
          std::to_string(launch_recompiles) +
          ",\n  \"cost_mismatches\": " + std::to_string(mismatches) + "\n}\n";
      io::write_file_atomic(json_path, json);
      std::printf("wrote %s\n", json_path.c_str());
    }

    if (mismatches != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu cold/warm cost mismatches (cache must be "
                   "pure speed)\n",
                   mismatches);
      return 1;
    }
    if (launch_recompiles != 0) {
      std::fprintf(stderr,
                   "FAIL: launch-shape-only changes recompiled %zu times "
                   "(want 0)\n",
                   launch_recompiles);
      return 1;
    }
    if (ratio < min_ratio) {
      std::fprintf(stderr,
                   "FAIL: warm pass only %.2fx cold (gate %.2fx) — the "
                   "compilation cache is not paying for itself\n",
                   ratio, min_ratio);
      return 1;
    }
    std::printf("\nOK: warm evaluation is %.2fx cold with %zu compiles "
                "for %zu points\n",
                ratio, stats.misses, sample.size());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
