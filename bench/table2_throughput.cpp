// Reproduces Table II: instruction throughput per number of cycles
// (IPC per SM by category and architecture generation), plus the derived
// CPI weights the Eq. 6 predictor uses.

#include <cstdio>

#include "arch/throughput.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

using namespace gpustatic;  // NOLINT
using arch::Family;

int main() {
  bench::print_header("Table II — instruction throughput per cycle",
                      "Table II (IPC per SM; CPI weights for Eq. 6)");

  TextTable t({"Category", "Class", "SM20", "SM35", "SM52", "SM60"});
  for (const arch::OpCategory cat : arch::all_categories()) {
    t.add_row({std::string(arch::category_name(cat)),
               std::string(arch::class_name(arch::op_class(cat))),
               str::format_trimmed(arch::ipc(cat, Family::Fermi), 0),
               str::format_trimmed(arch::ipc(cat, Family::Kepler), 0),
               str::format_trimmed(arch::ipc(cat, Family::Maxwell), 0),
               str::format_trimmed(arch::ipc(cat, Family::Pascal), 0)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("Derived Eq. 6 class weights (CPI = 1/IPC):\n");
  TextTable w({"Class", "SM20", "SM35", "SM52", "SM60"});
  for (const arch::OpClass cls :
       {arch::OpClass::FLOPS, arch::OpClass::MEM, arch::OpClass::CTRL,
        arch::OpClass::REG}) {
    w.add_row({std::string(arch::class_name(cls)),
               str::format_double(arch::class_cpi(cls, Family::Fermi), 4),
               str::format_double(arch::class_cpi(cls, Family::Kepler), 4),
               str::format_double(arch::class_cpi(cls, Family::Maxwell), 4),
               str::format_double(arch::class_cpi(cls, Family::Pascal), 4)});
  }
  std::printf("%s\n", w.render().c_str());
  return 0;
}
