// Fleet tuning bench: tunes the whole kernel library (base + extended)
// through a TuningStore twice — a cold pass that pays for every
// simulator run, then a warm pass that must answer everything from the
// store. Prints both passes and the wall-clock cost of each, and exits
// non-zero when the warm pass performed any fresh evaluation: this is
// the CI gate that the persistent-store warm-start path keeps working.
//
//   $ ./bench/bench_fleet_tune [--method NAME] [--gpu NAME|all]
//                              [--budget N] [--seed N] [--json PATH]
//
// --json writes a machine-readable artifact (both passes + timings),
// the start of CI's tracked perf trajectory for the tuning pipeline.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/io.hpp"
#include "common/strings.hpp"
#include "core/fleet.hpp"

using namespace gpustatic;  // NOLINT
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(const Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The fleet JSON object with its trailing newline stripped, for
/// embedding as a sub-object.
std::string embed(const core::FleetReport& report) {
  std::string json = core::render_fleet_json(report);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string method = "random";
  std::string gpu = "K20";
  std::size_t budget = 48;
  std::uint64_t seed = 1234;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '%s' needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--method") == 0)
      method = value();
    else if (std::strcmp(argv[i], "--gpu") == 0)
      gpu = value();
    else if (std::strcmp(argv[i], "--budget") == 0)
      budget = static_cast<std::size_t>(std::stoull(value()));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::stoull(value());
    else if (std::strcmp(argv[i], "--json") == 0)
      json_path = value();
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  bench::print_header(
      "Fleet tuning: whole-library passes through a TuningStore",
      "ROADMAP north star (library-scale tuning; Lim et al. Sec. VII)");

  core::FleetOptions opts;
  opts.gpus = {gpu};
  opts.method = method;
  opts.search.budget = budget;
  opts.search.seed = seed;
  opts.hybrid.empirical_budget = budget;

  try {
    tuner::TuningStore store;
    core::FleetSession fleet(store, opts);
    std::printf("method=%s budget=%zu: %zu jobs\n\n", method.c_str(),
                budget, fleet.jobs().size());

    const auto cold_start = Clock::now();
    const core::FleetReport cold = fleet.run();
    const double cold_ms = ms_since(cold_start);

    const auto warm_start = Clock::now();
    const core::FleetReport warm = fleet.run();
    const double warm_ms = ms_since(warm_start);

    std::printf("--- cold pass (%.1f ms) ---\n%s\n", cold_ms,
                core::render_fleet_table(cold).c_str());
    std::printf("--- warm pass (%.1f ms) ---\n%s\n", warm_ms,
                core::render_fleet_table(warm).c_str());
    std::printf("store round trip: %zu records, %zu bytes serialized\n",
                store.size(), store.serialize().size());

    if (!json_path.empty()) {
      std::string json = "{\n  \"method\": \"" + method +
                         "\",\n  \"budget\": " + std::to_string(budget) +
                         ",\n  \"jobs\": " +
                         std::to_string(fleet.jobs().size()) +
                         ",\n  \"cold_ms\": " +
                         str::format("%.3f", cold_ms) +
                         ",\n  \"warm_ms\": " +
                         str::format("%.3f", warm_ms) +
                         ",\n  \"cold\": " + embed(cold) +
                         ",\n  \"warm\": " + embed(warm) + "\n}\n";
      io::write_file_atomic(json_path, json);
      std::printf("wrote %s\n", json_path.c_str());
    }

    if (cold.failed != 0 || warm.failed != 0) {
      std::fprintf(stderr, "FAIL: %zu cold / %zu warm jobs errored\n",
                   cold.failed, warm.failed);
      return 1;
    }
    if (warm.fresh_evaluations != 0) {
      std::fprintf(stderr,
                   "FAIL: warm pass performed %zu fresh evaluations "
                   "(want 0 — the store must answer everything)\n",
                   warm.fresh_evaluations);
      return 1;
    }
    std::printf("\nOK: warm pass answered all %zu lookups from the "
                "store (0 fresh)\n",
                warm.warm_hits);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
