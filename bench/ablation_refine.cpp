// Ablation: Eq. 6 with Table II CPI weights vs. measurement-refined
// weights (paper Sec. VII: "static models can ... be informed by prior
// benchmarking and knowledge discovery").
//
// The refinement target is the paper's own hypothesis (Sec. III-B-3):
// execution time is proportional to problem size N and decomposes over
// the weighted class mixes — f(N) = cf*O_fl + cm*O_mem + cb*O_ctrl +
// cr*O_reg (+ fixed overhead), with the O_* scaled by N. So the
// experiment is extrapolation:
//
//   train: code variants (UIF x fast-math) at the three SMALL paper
//          sizes, measured on the analytic engine;
//   test : the same variants at the two LARGE paper sizes, unseen.
//
// Compared on the held-out sizes: Table II default weights (with one
// free scale calibrated on the training set — CPI units are cycles, not
// ms) versus NNLS-refined weights. Expected shape: both extrapolate the
// ranking well (validating f(N)); the refined fit reduces absolute
// error because it learns the machine's real constants + overhead.
//
// A second "within-journal" section repeats the fit inside one
// rule-pruned tuning sweep (single N). There the mixes barely vary
// while launch geometry dominates, so refinement degenerates toward an
// intercept-only model — an honest negative result showing why the
// paper pairs the mix model with the occupancy model instead of asking
// Eq. 6 to rank launches.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "replay/refine.hpp"
#include "replay/replay.hpp"

using namespace gpustatic;  // NOLINT

namespace {

struct Sample {
  replay::MixFeatures feats;  ///< O_* scaled by N (the f(N) hypothesis)
  double time_ms = 0;
};

std::vector<Sample> collect(const std::string& kernel,
                            const arch::GpuSpec& gpu,
                            const std::vector<std::int64_t>& sizes) {
  std::vector<Sample> out;
  for (const std::int64_t n : sizes) {
    const auto wl = kernels::make_workload(kernel, n);
    for (const int uif : {1, 2, 4, 6}) {
      for (const bool fm : {false, true}) {
        codegen::TuningParams p;
        p.threads_per_block = 256;
        p.block_count = 96;
        p.unroll = uif;
        p.fast_math = fm;
        const codegen::Compiler c(gpu, p);
        const auto lw = c.compile(wl);
        const auto machine = sim::MachineModel::from(gpu, p.l1_pref_kb);
        const auto m = sim::run_workload(lw, wl, machine);
        if (!m.valid) continue;
        Sample s;
        s.feats = replay::mix_features(lw);
        for (double& f : s.feats) f *= static_cast<double>(n);
        s.time_ms = m.trial_time_ms;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

double mean_rel_err(const replay::Coefficients& coeffs,
                    const std::vector<Sample>& samples, double scale) {
  double sum = 0;
  for (const Sample& s : samples)
    sum += std::abs(scale * coeffs.score(s.feats) - s.time_ms) / s.time_ms;
  return samples.empty() ? 0 : sum / static_cast<double>(samples.size());
}

double spearman_of(const replay::Coefficients& coeffs,
                   const std::vector<Sample>& samples) {
  std::vector<double> pred;
  std::vector<double> meas;
  for (const Sample& s : samples) {
    pred.push_back(coeffs.score(s.feats));
    meas.push_back(s.time_ms);
  }
  return stats::spearman(pred, meas);
}

}  // namespace

int main() {
  bench::print_header(
      "ABLATION: default (Table II CPI) vs measurement-refined Eq. 6",
      "Sec. VII knowledge-discovery loop over the f(N) hypothesis");

  TextTable t({"Kernel", "Arch", "train", "test", "R2 fit", "relerr def",
               "relerr ref", "rho def", "rho ref"});
  const std::vector<std::string> gpus =
      bench::full_mode()
          ? std::vector<std::string>{"M2050", "K20", "M40", "P100"}
          : std::vector<std::string>{"K20", "M40"};

  for (const auto& info : kernels::all_kernels()) {
    const std::string kernel(info.name);
    const std::vector<std::int64_t> train_sizes(
        info.input_sizes.begin(), info.input_sizes.begin() + 3);
    const std::vector<std::int64_t> test_sizes(
        info.input_sizes.begin() + 3, info.input_sizes.end());
    for (const auto& gpu_name : gpus) {
      const auto& gpu = arch::gpu(gpu_name);
      const auto train = collect(kernel, gpu, train_sizes);
      const auto test = collect(kernel, gpu, test_sizes);
      if (train.size() < 5 || test.size() < 4) continue;

      std::vector<replay::MixFeatures> xs;
      std::vector<double> ys;
      for (const Sample& s : train) {
        xs.push_back(s.feats);
        ys.push_back(s.time_ms);
      }
      const auto fit = replay::fit_coefficients(xs, ys);

      // The defaults are unitless (cycles-ish): give them one free
      // scale, least-squares calibrated on the training set.
      const auto defaults = replay::default_coefficients(gpu.family);
      double num = 0;
      double den = 0;
      for (const Sample& s : train) {
        num += defaults.score(s.feats) * s.time_ms;
        den += defaults.score(s.feats) * defaults.score(s.feats);
      }
      const double scale = den > 0 ? num / den : 1.0;

      t.add_row({kernel, gpu_name, std::to_string(train.size()),
                 std::to_string(test.size()),
                 str::format("%.3f", fit.r2),
                 str::format("%.1f%%",
                             100 * mean_rel_err(defaults, test, scale)),
                 str::format("%.1f%%",
                             100 * mean_rel_err(fit.coeffs, test, 1.0)),
                 str::format("%.3f", spearman_of(defaults, test)),
                 str::format("%.3f", spearman_of(fit.coeffs, test))});
    }
    t.add_rule();
  }
  std::printf("%s", t.render().c_str());

  // ---- within-journal fit: the honest negative result -----------------
  std::printf(
      "\nWithin one rule-pruned tuning sweep (single N, launch geometry\n"
      "dominating), the same fit degenerates toward intercept-only:\n\n");
  TextTable t2({"Kernel", "Arch", "samples", "R2 fit", "cf", "cm", "cb",
                "cr", "intercept"});
  for (const auto& kernel : {"atax", "matvec2d"}) {
    const auto& gpu = arch::gpu("K20");
    const auto wl = kernels::make_workload(
        kernel, std::string(kernel) == "ex14fj" ? 32 : 256);
    replay::RecordOptions opts;
    opts.stride = 4;
    const auto journal = replay::record_tuning(wl, gpu, opts);
    const auto fit = replay::refine_from_journal(journal, wl, gpu);
    t2.add_row({kernel, "K20", std::to_string(fit.samples),
                str::format("%.3f", fit.r2),
                str::format("%.2g", fit.coeffs.c[0]),
                str::format("%.2g", fit.coeffs.c[1]),
                str::format("%.2g", fit.coeffs.c[2]),
                str::format("%.2g", fit.coeffs.c[3]),
                str::format("%.2g", fit.coeffs.intercept)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf(
      "\nReading: relerr = mean |predicted - measured| / measured on the\n"
      "held-out LARGE sizes (defaults get a train-calibrated scale);\n"
      "rho = Spearman. The f(N) extrapolation validates Sec. III-B-3;\n"
      "the within-sweep table shows Eq. 6 refinement cannot substitute\n"
      "for the occupancy model on launch-geometry decisions.\n");
  return 0;
}
