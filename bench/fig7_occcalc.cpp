// Reproduces Fig. 7: the occupancy-calculator panels showing thread,
// register, and shared-memory impact for the current ATAX configuration
// (top) and the potential optimized configuration (bottom).

#include <cstdio>

#include "bench_common.hpp"
#include "codegen/compiler.hpp"
#include "occupancy/report.hpp"
#include "occupancy/suggest.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header(
      "Fig. 7 — occupancy calculator: current vs potential (ATAX)",
      "Fig. 7 (thread/register/smem impact panels)");

  const auto& gpu = arch::gpu("K20");
  const auto wl = kernels::make_workload("atax", 256);
  const codegen::Compiler compiler(gpu, {});
  const auto lw = compiler.compile(wl);
  const std::uint32_t ru = lw.regs_per_thread();

  // Current: a mid-grid thread choice that underfills the SM.
  occupancy::KernelParams current{96, ru, 0};
  std::printf("--- CURRENT kernel configuration ---\n%s\n",
              occupancy::calculator_report(gpu, current).c_str());

  // Potential: first statically suggested thread count.
  const auto s = occupancy::suggest(gpu, ru, 0);
  occupancy::KernelParams optimized{
      s.thread_candidates.empty() ? 128u : s.thread_candidates.front(), ru,
      0};
  std::printf("--- POTENTIAL optimized configuration ---\n%s\n",
              occupancy::calculator_report(gpu, optimized).c_str());

  std::printf(
      "Suggestion: T*={");
  for (std::size_t i = 0; i < s.thread_candidates.size(); ++i)
    std::printf("%s%u", i ? ", " : "", s.thread_candidates[i]);
  std::printf("} [Ru:R*]=[%u:%u] S*=%u B, occ*=%.2f\n", s.regs_used,
              s.reg_headroom, s.smem_budget, s.occ_star);
  return 0;
}
