// Reproduces Table I: GPUs used in this experiment.

#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  bench::print_header("Table I — GPUs used in this experiment",
                      "Table I (hardware parameter database)");

  TextTable t({"Sym", "Parameter", "M2050", "K20", "M40", "P100"});
  const auto gpus = arch::all_gpus();
  auto row = [&](const char* sym, const char* name, auto getter) {
    std::vector<std::string> cells = {sym, name};
    for (const auto& g : gpus) cells.push_back(getter(g));
    t.add_row(cells);
  };
  auto u = [](auto v) { return std::to_string(v); };

  row("cc", "CUDA capability", [&](const arch::GpuSpec& g) {
    return str::format_trimmed(g.compute_capability, 1);
  });
  row("", "Global mem (MB)",
      [&](const arch::GpuSpec& g) { return u(g.global_mem_mb); });
  row("mp", "Multiprocessors",
      [&](const arch::GpuSpec& g) { return u(g.multiprocessors); });
  row("", "CUDA cores / mp",
      [&](const arch::GpuSpec& g) { return u(g.cores_per_mp); });
  row("", "CUDA cores",
      [&](const arch::GpuSpec& g) { return u(g.cuda_cores); });
  row("", "GPU clock (MHz)",
      [&](const arch::GpuSpec& g) { return u(g.gpu_clock_mhz); });
  row("", "Mem clock (MHz)",
      [&](const arch::GpuSpec& g) { return u(g.mem_clock_mhz); });
  row("", "L2 cache (MB)", [&](const arch::GpuSpec& g) {
    return str::format_trimmed(g.l2_cache_mb, 3);
  });
  row("", "Constant mem (B)",
      [&](const arch::GpuSpec& g) { return u(g.const_mem_bytes); });
  row("SccB", "Sh mem block (B)",
      [&](const arch::GpuSpec& g) { return u(g.smem_per_block); });
  row("Rccfs", "Regs per block",
      [&](const arch::GpuSpec& g) { return u(g.regs_per_block); });
  row("WB", "Warp size",
      [&](const arch::GpuSpec& g) { return u(g.warp_size); });
  row("Tccmp", "Threads per mp",
      [&](const arch::GpuSpec& g) { return u(g.threads_per_mp); });
  row("TccB", "Threads per block",
      [&](const arch::GpuSpec& g) { return u(g.threads_per_block); });
  row("Bccmp", "Thread blocks / mp",
      [&](const arch::GpuSpec& g) { return u(g.blocks_per_mp); });
  row("TccW", "Threads per warp",
      [&](const arch::GpuSpec& g) { return u(g.threads_per_warp); });
  row("Wccmp", "Warps per mp",
      [&](const arch::GpuSpec& g) { return u(g.warps_per_mp); });
  row("RccB", "Reg alloc size",
      [&](const arch::GpuSpec& g) { return u(g.reg_alloc_unit); });
  row("RccT", "Regs per thread",
      [&](const arch::GpuSpec& g) { return u(g.regs_per_thread); });
  row("", "Family", [&](const arch::GpuSpec& g) {
    return std::string(arch::family_name(g.family));
  });

  std::printf("%s\n", t.render().c_str());
  return 0;
}
