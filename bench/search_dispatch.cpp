// Measures the cost of the strategy-registry redesign against the old
// direct-call path: (a) per-evaluation overhead of the CachingEvaluator
// decorator + Evaluator virtual dispatch vs a raw std::function call,
// and (b) per-run overhead of StrategyRegistry::create + Strategy::run
// vs calling the search function directly. Both should be noise next to
// a real objective (one simulated variant costs ~10^5 of these).
//
//   $ ./bench/bench_search_dispatch [iterations]

// A third section compares the batch-first execution shape against the
// per-point path: one CachingEvaluator::evaluate_batch over a whole
// space vs an operator() loop (same work, one backend fan-out), and a
// SimEvaluator batch through the shared thread pool vs a sequential
// evaluate() loop (set GPUSTATIC_THREADS to size the pool).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/gpu_spec.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using Clock = std::chrono::steady_clock;

namespace {

double synthetic(const codegen::TuningParams& p) {
  const double t = (p.threads_per_block - 512.0) / 1024.0;
  const double u = (p.unroll - 3.0) / 6.0;
  return 1.0 + t * t + u * u + (p.fast_math ? 0.0 : 0.05);
}

double ns_per(const Clock::time_point start, const Clock::time_point end,
              std::size_t ops) {
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(ops == 0 ? 1 : ops);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t iters = argc > 1
                                ? static_cast<std::size_t>(
                                      std::atoll(argv[1]))
                                : 200;
  bench::print_header("Search dispatch overhead",
                      "registry + evaluator-cache vs direct calls");

  const tuner::ParamSpace space = tuner::paper_space();
  const tuner::Objective fn = synthetic;
  tuner::SearchOptions opts;
  opts.budget = 400;
  opts.seed = 42;

  TextTable t({"Path", "ns/op", "ops", "checksum"});

  // (a) evaluation-layer overhead, amortized over one full space scan.
  double direct_sum = 0;
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < iters; ++rep)
    for (std::size_t i = 0; i < space.size(); i += 7)
      direct_sum += fn(space.to_params(space.point_at(i)));
  const auto t1 = Clock::now();

  double cached_sum = 0;
  for (std::size_t rep = 0; rep < iters; ++rep) {
    tuner::FunctionEvaluator backend(fn);
    tuner::CachingEvaluator cache(space, backend);
    for (std::size_t i = 0; i < space.size(); i += 7)
      cached_sum += cache(space.point_at(i));
  }
  const auto t2 = Clock::now();
  const std::size_t eval_ops = iters * ((space.size() + 6) / 7);
  t.add_row({"objective: direct std::function",
             str::format_double(ns_per(t0, t1, eval_ops), 1),
             std::to_string(eval_ops), str::format_double(direct_sum, 3)});
  t.add_row({"objective: CachingEvaluator+virtual",
             str::format_double(ns_per(t1, t2, eval_ops), 1),
             std::to_string(eval_ops), str::format_double(cached_sum, 3)});

  // (b) whole-search overhead: direct function call vs registry dispatch.
  double direct_best = 0;
  const auto t3 = Clock::now();
  for (std::size_t rep = 0; rep < iters; ++rep)
    direct_best += tuner::random_search(space, fn, opts).best_time;
  const auto t4 = Clock::now();

  double registry_best = 0;
  for (std::size_t rep = 0; rep < iters; ++rep) {
    const auto strategy =
        tuner::StrategyRegistry::instance().create("random");
    tuner::FunctionEvaluator backend(fn);
    tuner::StrategyContext ctx;
    ctx.space = &space;
    ctx.evaluator = &backend;
    ctx.options = opts;
    registry_best += strategy->run(ctx).search.best_time;
  }
  const auto t5 = Clock::now();
  t.add_row({"random search: direct call",
             str::format_double(ns_per(t3, t4, iters), 1),
             std::to_string(iters), str::format_double(direct_best, 3)});
  t.add_row({"random search: registry dispatch",
             str::format_double(ns_per(t4, t5, iters), 1),
             std::to_string(iters), str::format_double(registry_best, 3)});

  // (c) batched vs sequential evaluation. First the cache layer alone
  // (cheap synthetic objective: measures batch bookkeeping), then the
  // simulator backend (real per-variant cost: measures the thread-pool
  // fan-out win; on a 1-core box both paths should be within noise).
  std::vector<tuner::Point> all_points;
  all_points.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    all_points.push_back(space.point_at(i));

  double seq_sum = 0;
  const auto t6 = Clock::now();
  for (std::size_t rep = 0; rep < iters; ++rep) {
    tuner::FunctionEvaluator backend(fn);
    tuner::CachingEvaluator cache(space, backend);
    for (const tuner::Point& p : all_points) seq_sum += cache(p);
  }
  const auto t7 = Clock::now();

  double batch_sum = 0;
  for (std::size_t rep = 0; rep < iters; ++rep) {
    tuner::FunctionEvaluator backend(fn);
    tuner::CachingEvaluator cache(space, backend);
    for (const double v : cache.evaluate_batch(all_points))
      batch_sum += v;
  }
  const auto t8 = Clock::now();
  const std::size_t scan_ops = iters * space.size();
  t.add_row({"full scan: per-point loop",
             str::format_double(ns_per(t6, t7, scan_ops), 1),
             std::to_string(scan_ops), str::format_double(seq_sum, 3)});
  t.add_row({"full scan: one batch",
             str::format_double(ns_per(t7, t8, scan_ops), 1),
             std::to_string(scan_ops), str::format_double(batch_sum, 3)});

  const auto wl = kernels::make_atax(32);
  const auto& gpu = arch::gpu("K20");
  std::vector<codegen::TuningParams> sim_batch;
  for (std::size_t i = 0; i < space.size(); i += 97)
    sim_batch.push_back(space.to_params(space.point_at(i)));
  const std::size_t sim_reps = std::max<std::size_t>(1, iters / 40);

  tuner::SimEvaluator sim(wl, gpu);
  double sim_seq_sum = 0;
  const auto t9 = Clock::now();
  for (std::size_t rep = 0; rep < sim_reps; ++rep)
    for (const auto& p : sim_batch) sim_seq_sum += sim.evaluate(p);
  const auto t10 = Clock::now();

  double sim_batch_sum = 0;
  for (std::size_t rep = 0; rep < sim_reps; ++rep)
    for (const double v : sim.evaluate_batch(sim_batch))
      sim_batch_sum += v;
  const auto t11 = Clock::now();
  const std::size_t sim_ops = sim_reps * sim_batch.size();
  t.add_row({"simulator: sequential evaluate()",
             str::format_double(ns_per(t9, t10, sim_ops), 1),
             std::to_string(sim_ops),
             str::format_double(sim_seq_sum, 3)});
  t.add_row({"simulator: evaluate_batch(pool=" +
                 std::to_string(ThreadPool::shared().size()) + ")",
             str::format_double(ns_per(t10, t11, sim_ops), 1),
             std::to_string(sim_ops),
             str::format_double(sim_batch_sum, 3)});

  std::printf("%s\n", t.render().c_str());
  if (direct_best != registry_best) {
    std::printf("MISMATCH: registry path diverged from direct path\n");
    return 1;
  }
  if (seq_sum != batch_sum || sim_seq_sum != sim_batch_sum) {
    std::printf("MISMATCH: batched evaluation diverged from sequential\n");
    return 1;
  }
  std::printf("registry and direct paths found identical optima; the\n"
              "dispatch overhead is per-run, not per-evaluation.\n"
              "batched and sequential evaluation agree bit-for-bit.\n");
  return 0;
}
