// Measures the cost of the strategy-registry redesign against the old
// direct-call path: (a) per-evaluation overhead of the CachingEvaluator
// decorator + Evaluator virtual dispatch vs a raw std::function call,
// and (b) per-run overhead of StrategyRegistry::create + Strategy::run
// vs calling the search function directly. Both should be noise next to
// a real objective (one simulated variant costs ~10^5 of these).
//
//   $ ./bench/bench_search_dispatch [iterations]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using Clock = std::chrono::steady_clock;

namespace {

double synthetic(const codegen::TuningParams& p) {
  const double t = (p.threads_per_block - 512.0) / 1024.0;
  const double u = (p.unroll - 3.0) / 6.0;
  return 1.0 + t * t + u * u + (p.fast_math ? 0.0 : 0.05);
}

double ns_per(const Clock::time_point start, const Clock::time_point end,
              std::size_t ops) {
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(ops == 0 ? 1 : ops);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t iters = argc > 1
                                ? static_cast<std::size_t>(
                                      std::atoll(argv[1]))
                                : 200;
  bench::print_header("Search dispatch overhead",
                      "registry + evaluator-cache vs direct calls");

  const tuner::ParamSpace space = tuner::paper_space();
  const tuner::Objective fn = synthetic;
  tuner::SearchOptions opts;
  opts.budget = 400;
  opts.seed = 42;

  TextTable t({"Path", "ns/op", "ops", "checksum"});

  // (a) evaluation-layer overhead, amortized over one full space scan.
  double direct_sum = 0;
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < iters; ++rep)
    for (std::size_t i = 0; i < space.size(); i += 7)
      direct_sum += fn(space.to_params(space.point_at(i)));
  const auto t1 = Clock::now();

  double cached_sum = 0;
  for (std::size_t rep = 0; rep < iters; ++rep) {
    tuner::FunctionEvaluator backend(fn);
    tuner::CachingEvaluator cache(space, backend);
    for (std::size_t i = 0; i < space.size(); i += 7)
      cached_sum += cache(space.point_at(i));
  }
  const auto t2 = Clock::now();
  const std::size_t eval_ops = iters * ((space.size() + 6) / 7);
  t.add_row({"objective: direct std::function",
             str::format_double(ns_per(t0, t1, eval_ops), 1),
             std::to_string(eval_ops), str::format_double(direct_sum, 3)});
  t.add_row({"objective: CachingEvaluator+virtual",
             str::format_double(ns_per(t1, t2, eval_ops), 1),
             std::to_string(eval_ops), str::format_double(cached_sum, 3)});

  // (b) whole-search overhead: direct function call vs registry dispatch.
  double direct_best = 0;
  const auto t3 = Clock::now();
  for (std::size_t rep = 0; rep < iters; ++rep)
    direct_best += tuner::random_search(space, fn, opts).best_time;
  const auto t4 = Clock::now();

  double registry_best = 0;
  for (std::size_t rep = 0; rep < iters; ++rep) {
    const auto strategy =
        tuner::StrategyRegistry::instance().create("random");
    tuner::FunctionEvaluator backend(fn);
    tuner::StrategyContext ctx;
    ctx.space = &space;
    ctx.evaluator = &backend;
    ctx.options = opts;
    registry_best += strategy->run(ctx).search.best_time;
  }
  const auto t5 = Clock::now();
  t.add_row({"random search: direct call",
             str::format_double(ns_per(t3, t4, iters), 1),
             std::to_string(iters), str::format_double(direct_best, 3)});
  t.add_row({"random search: registry dispatch",
             str::format_double(ns_per(t4, t5, iters), 1),
             std::to_string(iters), str::format_double(registry_best, 3)});

  std::printf("%s\n", t.render().c_str());
  if (direct_best != registry_best) {
    std::printf("MISMATCH: registry path diverged from direct path\n");
    return 1;
  }
  std::printf("registry and direct paths found identical optima; the\n"
              "dispatch overhead is per-run, not per-evaluation.\n");
  return 0;
}
