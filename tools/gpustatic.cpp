// gpustatic: the command-line front door to the library.
// All logic — including the exit-code contract (0 success, 1 command
// failure, 2 usage error) and error rendering — lives in src/cli
// (unit-tested); this is argv marshalling only.

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return gpustatic::cli::run_main(args, std::cout, std::cerr);
}
