// gpustatic: the command-line front door to the library.
// All logic lives in src/cli (unit-tested); this is dispatch only.

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "common/error.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const auto opts = gpustatic::cli::parse_args(args);
    return gpustatic::cli::run_command(opts, std::cout);
  } catch (const gpustatic::Error& e) {
    std::fprintf(stderr, "gpustatic: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpustatic: internal error: %s\n", e.what());
    return 3;
  }
}
