// serve_client: concurrent exerciser (and CI gate) for `gpustatic
// serve`. Fires identical tune requests from many TCP connections at a
// running daemon, in rounds, and verifies the daemon's two core
// promises from the outside:
//
//   * cold round: exactly one response paid for a search of its own
//     (deduplicated=false with fresh>0); every other client was either
//     single-flighted onto that search or answered warm by the store.
//   * warm rounds: every response reports zero fresh simulator runs and
//     zero compiles — the store and compilation cache answer everything.
//
// Exit codes follow the CLI contract: 0 all checks passed, 1 a check
// failed or the daemon misbehaved, 2 bad usage.
//
//   serve_client --port 7411 [--clients 8] [--rounds 3]
//                [--kernel atax] [-n 32] [--seed 7]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace {

using gpustatic::serve::JsonObject;

struct ClientOptions {
  int port = 0;
  int clients = 8;
  int rounds = 3;
  std::string kernel = "atax";
  long long n = 32;
  unsigned long long seed = 7;
};

[[noreturn]] void usage_error(const char* what) {
  std::fprintf(stderr,
               "serve_client: %s\n"
               "usage: serve_client --port P [--clients N] [--rounds R]"
               " [--kernel K] [-n SIZE] [--seed S]\n",
               what);
  std::exit(2);
}

ClientOptions parse_options(int argc, char** argv) {
  ClientOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("flag needs a value");
      return argv[++i];
    };
    if (arg == "--port") opts.port = std::atoi(value());
    else if (arg == "--clients") opts.clients = std::atoi(value());
    else if (arg == "--rounds") opts.rounds = std::atoi(value());
    else if (arg == "--kernel") opts.kernel = value();
    else if (arg == "-n") opts.n = std::atoll(value());
    else if (arg == "--seed") opts.seed = std::strtoull(value(), nullptr, 10);
    else usage_error(("unknown flag '" + arg + "'").c_str());
  }
  if (opts.port <= 0) usage_error("--port is required");
  if (opts.clients <= 0 || opts.rounds <= 0)
    usage_error("--clients and --rounds must be positive");
  return opts;
}

/// One request line over one fresh connection; empty string on failure.
std::string round_trip(int port, const std::string& line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return "";
  }
  const std::string out = line + "\n";
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t wrote =
        send(fd, out.data() + sent, out.size() - sent, 0);
    if (wrote <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(wrote);
  }
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    const ssize_t got = recv(fd, chunk, sizeof chunk, 0);
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  close(fd);
  const std::size_t nl = buffer.find('\n');
  return nl == std::string::npos ? "" : buffer.substr(0, nl);
}

std::string tune_line(const ClientOptions& opts, int id) {
  gpustatic::serve::JsonWriter w;
  w.field("op", "tune").field("id", static_cast<std::uint64_t>(id));
  w.field("kernel", opts.kernel);
  w.field("n", static_cast<std::int64_t>(opts.n));
  w.field("seed", static_cast<std::uint64_t>(opts.seed));
  return w.str();
}

double number(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it == obj.end() ? -1 : it->second.number;
}

}  // namespace

int main(int argc, char** argv) {
  const ClientOptions opts = parse_options(argc, argv);
  int failures = 0;

  for (int round = 0; round < opts.rounds; ++round) {
    std::vector<std::string> responses(
        static_cast<std::size_t>(opts.clients));
    std::vector<std::thread> workers;
    workers.reserve(responses.size());
    for (int c = 0; c < opts.clients; ++c)
      workers.emplace_back([&, c] {
        responses[static_cast<std::size_t>(c)] =
            round_trip(opts.port, tune_line(opts, c));
      });
    for (std::thread& t : workers) t.join();

    int ok = 0, shed = 0, paid_searches = 0, deduplicated = 0;
    int warm_violations = 0;
    for (const std::string& line : responses) {
      if (line.empty()) {
        std::fprintf(stderr, "round %d: a client got no response\n",
                     round);
        ++failures;
        continue;
      }
      JsonObject obj;
      try {
        obj = gpustatic::serve::parse_json_object(line);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "round %d: unparsable response: %s\n",
                     round, e.what());
        ++failures;
        continue;
      }
      const std::string& status = obj.at("status").string;
      if (status == "shed") {
        ++shed;  // legitimate under overload; not a failure
        continue;
      }
      if (status != "ok") {
        std::fprintf(stderr, "round %d: error response: %s\n", round,
                     line.c_str());
        ++failures;
        continue;
      }
      ++ok;
      const bool dedup = obj.at("deduplicated").boolean;
      const double fresh = number(obj, "fresh");
      const double compiles = number(obj, "compiles");
      if (dedup) ++deduplicated;
      if (!dedup && fresh > 0) ++paid_searches;
      if (round > 0 && (fresh != 0 || compiles != 0)) ++warm_violations;
    }

    std::printf(
        "round %d: ok=%d shed=%d deduplicated=%d paid_searches=%d\n",
        round, ok, shed, deduplicated, paid_searches);

    if (ok == 0) {
      std::fprintf(stderr, "round %d: no successful responses\n", round);
      ++failures;
    }
    if (round == 0 && paid_searches > 1) {
      // The single-flight promise: N identical cold requests, one search.
      std::fprintf(stderr,
                   "round 0: %d clients paid for their own search "
                   "(want exactly 1)\n",
                   paid_searches);
      ++failures;
    }
    if (round > 0 && warm_violations > 0) {
      std::fprintf(stderr,
                   "round %d: %d responses ran fresh work on a warm "
                   "store (want fresh=0, compiles=0)\n",
                   round, warm_violations);
      ++failures;
    }
  }

  const std::string stats = round_trip(opts.port, R"({"op":"stats"})");
  if (!stats.empty()) std::printf("stats: %s\n", stats.c_str());

  if (failures > 0) {
    std::fprintf(stderr, "serve_client: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("serve_client: all checks passed\n");
  return 0;
}
