// Full autotuning session on atax (the paper's running example):
// exhaustive baseline vs the static-analyzer-guided searches, reporting
// the Fig. 6 search-space reduction and the quality of the retained
// optimum.
//
//   $ ./autotune_atax [N] [gpu]

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  const std::string gpu_name = argc > 2 ? argv[2] : "K20";
  const arch::GpuSpec& gpu = arch::gpu(gpu_name);
  const auto wl = kernels::make_atax(n);

  std::printf("Autotuning atax (N=%lld) on %s over the Fig. 3 space\n\n",
              static_cast<long long>(n), gpu.name.c_str());

  core::TuningSession session(wl, gpu);
  const auto& prune = session.prune();
  std::printf("Static analyzer: Ru=%u, intensity=%.2f -> %s thread range\n",
              prune.suggestion.regs_used, prune.intensity,
              prune.prefers_upper ? "upper" : "lower");
  std::printf("T* candidates: ");
  for (const auto t : prune.static_threads) std::printf("%lld ", (long long)t);
  std::printf("\nRule-based candidates: ");
  for (const auto t : prune.rule_threads) std::printf("%lld ", (long long)t);
  std::printf("\n\n");

  TextTable t({"Method", "Space", "Reduction", "Evals", "Best (ms)",
               "Best TC", "Best UIF"});
  auto add = [&](const core::TuningOutcome& o) {
    t.add_row({o.method, std::to_string(o.space_size),
               str::format_double(o.space_reduction() * 100.0, 1) + "%",
               std::to_string(o.search.distinct_evaluations),
               str::format_double(o.search.best_time, 4),
               std::to_string(o.search.best_params.threads_per_block),
               std::to_string(o.search.best_params.unroll)});
  };
  add(session.tune("exhaustive"));
  add(session.tune("static"));
  add(session.tune("rule"));
  tuner::SearchOptions so;
  so.budget = 320;  // match the RB space size for a fair comparison
  for (const char* method : {"random", "anneal", "genetic", "simplex"})
    add(session.tune({method, so}));
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "The Static method needs no program runs to prune the space; the\n"
      "search that follows can be exhaustive (shown) or any strategy.\n");
  return 0;
}
