// Bring your own kernel: describe a loop nest in the DSL, verify it
// against a CPU reference through the functional warp simulator, analyze
// it statically, and autotune it. The kernel here is a dense SAXPY-like
// row update: out[i] = alpha * sum_j A[i*N+j] * x[j] + out[i].

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "core/static_analyzer.hpp"
#include "dsl/printer.hpp"
#include "sim/runner.hpp"

using namespace gpustatic;  // NOLINT
using namespace gpustatic::dsl;  // NOLINT

namespace {

constexpr std::int64_t kN = 128;
constexpr double kAlpha = 0.5;

WorkloadDesc make_custom() {
  WorkloadDesc wl;
  wl.name = "rowscale";
  wl.problem_size = kN;
  wl.arrays = {
      {"A", kN * kN, ArrayInit::Ramp},
      {"x", kN, ArrayInit::Ramp},
      {"out", kN, ArrayInit::Ones},
  };
  StageDesc s;
  s.name = "rowscale";
  s.domain = kN;
  const auto i = ivar("t");
  const auto j = ivar("j");
  s.body = seq({
      let_float("acc", fconst(0.0)),
      serial_for("j", 0, kN,
                 accum("acc", FloatBinOp::Add,
                       fmul(fload("A", iadd(imul(i, iconst(kN)), j)),
                            fload("x", j)))),
      store("out", i,
            fadd(fmul(fconst(kAlpha), fref("acc")), fload("out", i))),
  });
  wl.stages.push_back(std::move(s));
  return wl;
}

std::vector<float> cpu_reference() {
  auto iv = [](std::int64_t idx) {
    return static_cast<float>(idx % 97) / 97.0f;
  };
  std::vector<float> out(kN, 1.0f);
  for (std::int64_t i = 0; i < kN; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < kN; ++j)
      acc = std::fmaf(iv(i * kN + j), iv(j), acc);
    out[static_cast<std::size_t>(i)] =
        static_cast<float>(kAlpha) * acc + 1.0f;
  }
  return out;
}

}  // namespace

int main() {
  const WorkloadDesc wl = make_custom();
  std::printf("Custom workload in the DSL:\n%s\n",
              dsl::to_string(wl).c_str());

  const arch::GpuSpec& gpu = arch::gpu("M40");

  // 1. Verify numerics through the functional warp simulator.
  const codegen::Compiler compiler(gpu, {});
  const auto lw = compiler.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, 48);
  const auto run = sim::run_workload_collect(lw, wl, machine);
  const auto ref = cpu_reference();
  const auto& out = run.memory.host("out");
  double max_rel = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d = std::abs(out[i] - ref[i]) /
                     (std::abs(ref[i]) + 1e-9);
    max_rel = std::max(max_rel, d);
  }
  std::printf("Simulated vs CPU reference: max relative error %.3g %s\n\n",
              max_rel, max_rel < 1e-4 ? "(OK)" : "(MISMATCH)");

  // 2. Static analysis.
  const core::StaticAnalyzer analyzer(gpu);
  const auto report = analyzer.analyze(wl);
  std::printf("%s\n", report.to_string().c_str());

  // 3. Model-guided autotuning.
  core::TuningSession session(wl, gpu);
  const auto rb = session.tune("rule");
  std::printf("Rule-based search: %zu of %zu variants -> best %.4f ms at "
              "TC=%d UIF=%d\n",
              rb.space_size, rb.full_space_size, rb.search.best_time,
              rb.search.best_params.threads_per_block,
              rb.search.best_params.unroll);
  return 0;
}
