// Quickstart: analyze a CUDA-style kernel statically — no program runs —
// and get launch-parameter advice.
//
//   $ ./quickstart [kernel] [N] [gpu]
//   $ ./quickstart atax 256 K20

#include <cstdio>
#include <cstdlib>

#include "core/static_analyzer.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "atax";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  const std::string gpu_name = argc > 3 ? argv[3] : "K20";

  // 1. Describe the workload (here: one of the paper's four kernels;
  //    see examples/custom_kernel.cpp for writing your own).
  const dsl::WorkloadDesc workload = kernels::make_workload(kernel, n);

  // 2. Pick a target GPU from the Table I database.
  const arch::GpuSpec& gpu = arch::gpu(gpu_name);

  // 3. Run the static analyzer: compiles the kernel with the virtual
  //    toolchain and derives mixes, occupancy, divergence, suggestions.
  const core::StaticAnalyzer analyzer(gpu);
  const core::AnalysisReport report = analyzer.analyze(workload);

  std::printf("%s\n", report.to_string().c_str());

  std::printf("Interpretation:\n");
  std::printf(
      "  The rule-based heuristic (Sec. III-C) keeps the %s half of the\n"
      "  occupancy-optimal thread ladder because intensity %.2f is %s\n"
      "  the 4.0 threshold. Feed report.rule_threads to your launcher or\n"
      "  to a TuningSession to search only those candidates.\n",
      report.prefers_upper ? "upper" : "lower", report.intensity,
      report.prefers_upper ? "above" : "at or below");
  return 0;
}
