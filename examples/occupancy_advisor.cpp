// Occupancy advisor: the CUDA-Occupancy-Calculator-style use case. Given
// a kernel footprint (registers/thread, shared memory/block), print the
// occupancy landscape and the Table VII-style suggestion on every GPU.
//
//   $ ./occupancy_advisor [regs_per_thread] [smem_bytes]

#include <cstdio>
#include <cstdlib>

#include "arch/gpu_spec.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "occupancy/report.hpp"
#include "occupancy/suggest.hpp"

using namespace gpustatic;  // NOLINT

int main(int argc, char** argv) {
  const auto regs =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 27);
  const auto smem =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 0);

  std::printf("Kernel footprint: %u registers/thread, %u B smem/block\n\n",
              regs, smem);

  TextTable t({"GPU", "occ*", "T* candidates", "[Ru:R*]", "S* (B)"});
  for (const auto& gpu : arch::all_gpus()) {
    const auto s = occupancy::suggest(gpu, regs, smem);
    std::string threads;
    for (std::size_t i = 0; i < s.thread_candidates.size(); ++i) {
      if (i != 0) threads += ",";
      threads += std::to_string(s.thread_candidates[i]);
    }
    t.add_row({gpu.name, str::format_trimmed(s.occ_star, 2), threads,
               "[" + std::to_string(s.regs_used) + ":" +
                   std::to_string(s.reg_headroom) + "]",
               std::to_string(s.smem_budget)});
  }
  std::printf("%s\n", t.render().c_str());

  // Detailed calculator panels for one GPU.
  const auto& k20 = arch::gpu("K20");
  std::printf("%s\n",
              occupancy::calculator_report(
                  k20, occupancy::KernelParams{256, regs, smem})
                  .c_str());
  return 0;
}
