// Example: record a tuning run, replay it, refine the model.
//
// The paper's Sec. VII knowledge-discovery loop in ~60 lines:
//   1. record  — run the static+rule-guided tuning pass, journaling every
//                decision and variant (with Eq. 6 predictions and times);
//   2. archive — the journal round-trips through its text form, as it
//                would through a file on disk;
//   3. replay  — re-execute the journal empirically, validating both the
//                measurements (drift) and the static model (rank
//                correlation of prediction vs fresh time);
//   4. refine  — fit Eq. 6's four class coefficients to the journaled
//                measurements.
//
//   $ ./examples/record_replay

#include <cstdio>

#include "arch/gpu_spec.hpp"
#include "kernels/kernels.hpp"
#include "replay/refine.hpp"
#include "replay/replay.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  const auto wl = kernels::make_matvec2d(256);
  const auto& gpu = arch::gpu("M40");

  // 1. Record.
  replay::RecordOptions opts;
  opts.stride = 2;
  const auto journal = replay::record_tuning(wl, gpu, opts);
  std::printf("recorded %zu decisions, %zu variants (%zu measured)\n",
              journal.decisions().size(), journal.variants().size(),
              journal.measured_count());
  for (const auto& d : journal.decisions())
    std::printf("  decision %-10s %s\n", d.step.c_str(), d.detail.c_str());

  // 2. Archive: text round trip.
  const std::string text = journal.serialize();
  const auto restored = replay::TuningJournal::parse(text);
  std::printf("journal serializes to %zu bytes and parses back\n\n",
              text.size());

  // 3. Replay with empirical testing.
  const auto result = replay::replay(restored, wl, gpu, opts.run);
  std::printf("replayed %zu/%zu variants (%zu invalid)\n", result.replayed,
              result.total_variants, result.invalid);
  std::printf("measurement drift : max %.2f%%, mean %.2f%%\n",
              100 * result.max_rel_drift, 100 * result.mean_rel_drift);
  std::printf("static model score: Spearman(prediction, fresh time) = "
              "%.3f\n",
              result.prediction_spearman);
  std::printf("best variant      : %s -> %.4f ms\n\n",
              result.best_params.to_string().c_str(), result.best_time_ms);

  // 4. Refine Eq. 6 from the recorded evidence.
  const auto defaults = replay::default_coefficients(gpu.family);
  const auto fit = replay::refine_from_journal(restored, wl, gpu);
  std::printf("Eq. 6 class coefficients (cf, cm, cb, cr):\n");
  std::printf("  Table II default : %.4f %.4f %.4f %.4f\n", defaults.c[0],
              defaults.c[1], defaults.c[2], defaults.c[3]);
  std::printf("  refined (R2=%.3f): %.6f %.6f %.6f %.6f\n", fit.r2,
              fit.coeffs.c[0], fit.coeffs.c[1], fit.coeffs.c[2],
              fit.coeffs.c[3]);
  return 0;
}
