// Compare Orio's search strategies head-to-head on one kernel at equal
// evaluation budgets, with and without static pruning — the "dial in the
// degree of empirical testing" idea from the paper's future-work section.
//
//   $ ./search_comparison [kernel] [N] [budget]

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/session.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "matvec2d";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  const std::size_t budget = argc > 3
                                 ? static_cast<std::size_t>(
                                       std::atoll(argv[3]))
                                 : 160;
  const auto& gpu = arch::gpu("K20");
  const auto wl = kernels::make_workload(kernel, n);

  std::printf("Search comparison on %s (N=%lld), budget %zu evals\n\n",
              kernel.c_str(), static_cast<long long>(n), budget);

  core::TuningSession session(wl, gpu);
  const auto exhaustive = session.tune("exhaustive");
  const double optimum = exhaustive.search.best_time;

  TextTable t({"Strategy", "Evals", "Best (ms)", "Gap vs optimum"});
  auto add = [&](const core::TuningOutcome& o) {
    const double gap = (o.search.best_time - optimum) / optimum * 100.0;
    t.add_row({o.search.strategy +
                   (o.method == "rule" ? " (RB-pruned)" : ""),
               std::to_string(o.search.distinct_evaluations),
               str::format_double(o.search.best_time, 4),
               str::format_double(gap, 2) + "%"});
  };

  tuner::SearchOptions so;
  so.budget = budget;
  // Every budgeted strategy in the registry, then the rule-based prune.
  for (const char* method : {"random", "anneal", "genetic", "simplex"})
    add(session.tune({method, so}));
  add(session.tune("rule"));
  std::printf("%s\n", t.render().c_str());
  std::printf("Exhaustive optimum: %.4f ms over %zu variants.\n", optimum,
              exhaustive.space_size);
  return 0;
}
