// Example: dynamic profiling of a CUDA-style kernel.
//
// The static analyzer (see examples/quickstart.cpp) never runs anything.
// This example shows the other half of the paper's Fig. 2 framework: run
// the kernel once on the simulated GPU with tracing enabled and read the
// dynamic metrics — per-block execution counts (IC), branch divergence
// (BF), and memory reuse distance (MD) — the way one would from a
// profiler on real hardware.
//
//   $ ./examples/dynamic_profile [kernel] [N] [TC]
//
// defaults: ex14fj, N=16, TC=128.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/gpu_spec.hpp"
#include "codegen/compiler.hpp"
#include "dynamic/model.hpp"
#include "dynamic/profile.hpp"
#include "dynamic/report.hpp"
#include "kernels/kernels.hpp"

using namespace gpustatic;  // NOLINT

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "ex14fj";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 16;
  const int tc = argc > 3 ? std::atoi(argv[3]) : 128;

  const auto wl = kernels::make_workload(kernel, n);
  const auto& gpu = arch::gpu("K20");

  codegen::TuningParams params;
  params.threads_per_block = tc;
  params.block_count = 48;

  const codegen::Compiler compiler(gpu, params);
  const auto lowered = compiler.compile(wl);
  const auto machine = sim::MachineModel::from(gpu, params.l1_pref_kb);

  // One traced run yields the whole profile.
  const auto profile = dynamic::profile_workload(lowered, wl, machine);
  std::printf("%s\n", dynamic::render_profile(profile).c_str());
  if (!profile.measurement.valid) return 1;

  // The dynamic-count cost model: what Eq. 6 would predict if it could
  // see measured counts instead of static mixes.
  const auto pred = dynamic::predict_workload(lowered, profile, machine);
  std::printf(
      "dynamic model: %.4f ms predicted vs %.4f ms simulated "
      "(bottleneck: %s)\n",
      pred.time_ms, profile.measurement.base_time_ms, pred.bottleneck());
  return 0;
}
