// Example: autotune a kernel straight from C-like source text.
//
// The paper's future work (Sec. VII) wants source analysis that turns
// kernel code into autotuner input. This example does the full loop: a
// gesummv-style kernel is written as plain source below, parsed to the
// DSL, statically analyzed, and tuned — first with the paper's
// static+rule-based pruning, then validated against exhaustive search
// over the same (subsampled) space.
//
//   $ ./examples/tune_from_source

#include <cstdio>

#include "arch/gpu_spec.hpp"
#include "core/session.hpp"
#include "core/static_analyzer.hpp"
#include "frontend/parser.hpp"

using namespace gpustatic;  // NOLINT

namespace {

// gesummv: y = alpha*A*x + beta*B*x, one pass over both matrices.
constexpr std::string_view kSource = R"(
workload gesummv(N = 128);

array A[N*N] init ramp;
array B[N*N] init ramp;
array x[N]   init ramp;
array y[N]   init zero;

stage gesummv_row(t : N) {
  float sa = 0.0;
  float sb = 0.0;
  unroll for (j = 0; j < N; j++) {
    sa += A[t*N + j] * x[j];
    sb += B[t*N + j] * x[j];
  }
  y[t] = 1.5*sa + 0.5*sb;
}
)";

}  // namespace

int main() {
  const auto workload = frontend::parse_workload(kSource);
  const auto& gpu = arch::gpu("K20");
  std::printf("parsed workload '%s' (N=%lld, %zu arrays, %zu stage(s))\n\n",
              workload.name.c_str(),
              static_cast<long long>(workload.problem_size),
              workload.arrays.size(), workload.stages.size());

  // Static analysis first: what would the paper's analyzer advise?
  const core::StaticAnalyzer analyzer(gpu);
  const auto report = analyzer.analyze(workload);
  std::printf("%s\n", report.to_string().c_str());

  // Then the autotuning session: rule-based pruned search vs exhaustive.
  core::TuningSession session(workload, gpu);
  const auto ruled = session.tune("rule");
  const auto full = session.tune("exhaustive");

  std::printf("rule-based search : best %s -> %.4f ms (%zu variants, "
              "%.1f%% of the space pruned)\n",
              ruled.search.best_params.to_string().c_str(),
              ruled.search.best_time, ruled.space_size,
              100.0 * ruled.space_reduction());
  std::printf("exhaustive search : best %s -> %.4f ms (%zu variants)\n",
              full.search.best_params.to_string().c_str(),
              full.search.best_time, full.space_size);
  const double gap =
      (ruled.search.best_time - full.search.best_time) /
      full.search.best_time;
  std::printf("pruned-search optimum is within %.2f%% of the true "
              "optimum\n", 100.0 * gap);
  return 0;
}
