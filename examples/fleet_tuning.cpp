// Example: fleet tuning through a persistent tuning store.
//
// The paper tunes one kernel at a time; a production autotuner keeps a
// whole library of kernels tuned per GPU and never re-measures a
// configuration it already paid for. This example shows that loop:
//   1. cold pass  — tune three kernels on two GPUs, every evaluation a
//                   fresh simulator run, results persisted to a store;
//   2. reload     — the store round-trips through its on-disk form
//                   (atomic rewrite, journal-style text format);
//   3. warm pass  — the same fleet request again: every lookup answers
//                   from the store, zero fresh simulator runs.
//
//   $ ./examples/fleet_tuning

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/fleet.hpp"

using namespace gpustatic;  // NOLINT

namespace {

core::FleetReport run_pass(tuner::TuningStore& store, const char* label) {
  core::FleetOptions opts;
  opts.kernels = {"atax", "bicg", "matvec2d"};
  opts.gpus = {"K20", "P100"};
  opts.n = 64;
  opts.method = "rule";

  core::FleetSession fleet(store, opts);
  const core::FleetReport report = fleet.run();
  std::printf("--- %s pass ---\n%s\n", label,
              core::render_fleet_table(report).c_str());
  return report;
}

}  // namespace

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpustatic_fleet_example")
          .string() +
      ".store";
  std::filesystem::remove(path);

  // 1. Cold: an empty store, so every evaluation hits the simulator.
  tuner::TuningStore store;
  const core::FleetReport cold = run_pass(store, "cold");
  store.save(path);  // atomic: temp sibling + rename

  // 2. Reload from disk — what a later process (or CI job) would see.
  tuner::TuningStore reloaded = tuner::TuningStore::load(path);
  std::printf("store persisted %zu records to %s\n\n", reloaded.size(),
              path.c_str());

  // 3. Warm: the same request against the reloaded store.
  const core::FleetReport warm = run_pass(reloaded, "warm");

  std::printf("cold pass: %zu fresh simulator runs\n",
              cold.fresh_evaluations);
  std::printf("warm pass: %zu fresh simulator runs, %zu warm hits\n",
              warm.fresh_evaluations, warm.warm_hits);

  std::filesystem::remove(path);
  // The warm pass re-measuring anything would defeat the store's whole
  // point; fail loudly so CI's example smoke run catches it.
  return warm.fresh_evaluations == 0 && cold.failed == 0 &&
                 warm.failed == 0
             ? 0
             : 1;
}
