// Example: extend the tuner with your own Strategy and Evaluator.
//
// The registry makes strategies first-class: registering one makes it
// reachable from core::TuningSession::tune(), and from the CLI's
// `tune --method <name>` / `tune --method list` in any binary that
// links the registration. Evaluation backends are equally pluggable —
// a TuningRequest carries any tuner::Evaluator, so one strategy can be
// compared across the simulator, the Eq. 6 model, or custom costs.
//
// This example registers:
//   * "coordinate": cyclic coordinate descent over the space's
//     dimensions — walk one dimension to its best value, move on,
//     repeat until no dimension improves (a classic autotuning
//     baseline that Orio does not ship);
//   * EnergyEvaluator: a backend that charges simulated time plus a
//     clock-rate-weighted penalty per thread — "tune for energy, not
//     latency" in one class.
//
//   $ ./examples/custom_strategy [kernel] [N]

#include <cstdio>
#include <cstdlib>

#include "core/session.hpp"
#include "kernels/kernels.hpp"
#include "tuner/strategy.hpp"

using namespace gpustatic;  // NOLINT
using tuner::Evaluator;
using tuner::StrategyContext;
using tuner::StrategyResult;

namespace {

// ---- a custom strategy ------------------------------------------------------

class CoordinateDescentStrategy final : public tuner::Strategy {
 public:
  [[nodiscard]] std::string name() const override { return "coordinate"; }
  [[nodiscard]] bool stochastic() const override { return true; }

  [[nodiscard]] StrategyResult run(const StrategyContext& ctx)
      const override {
    const tuner::ParamSpace& space = *ctx.space;
    tuner::CachingEvaluator eval(space, *ctx.evaluator);
    Rng rng(ctx.options.seed);

    // Random start, then sweep dimensions cyclically until a full pass
    // makes no progress (or the budget runs out).
    tuner::Point cur(space.rank());
    for (std::size_t d = 0; d < space.rank(); ++d)
      cur[d] = static_cast<std::size_t>(
          rng.below(space.dimensions()[d].values.size()));
    double cur_v = eval(cur);

    bool improved = true;
    while (improved &&
           eval.distinct_evaluations() < ctx.options.budget) {
      improved = false;
      for (std::size_t d = 0; d < space.rank(); ++d) {
        const std::size_t n = space.dimensions()[d].values.size();
        tuner::Point probe = cur;
        for (std::size_t v = 0; v < n; ++v) {
          probe[d] = v;
          const double pv = eval(probe);
          if (pv < cur_v) {
            cur = probe;
            cur_v = pv;
            improved = true;
          }
        }
      }
    }

    StrategyResult r;
    r.method = name();
    r.search.strategy = "coordinate-descent";
    r.search.best_time = eval.best_value();
    r.search.best_params = space.to_params(eval.best_point());
    r.search.distinct_evaluations = eval.distinct_evaluations();
    r.search.total_calls = eval.total_calls();
    r.space_size = space.size();
    r.full_space_size = space.size();
    return r;
  }
};

// Self-registration: any binary linking this TU can tune with
// --method coordinate, and `tune --method list` shows it.
const tuner::RegisterStrategy kRegisterCoordinate{
    "coordinate", [] { return std::make_unique<CoordinateDescentStrategy>(); }};

// ---- a custom evaluation backend --------------------------------------------

/// Energy-flavored objective: simulated time plus a penalty that grows
/// with the number of resident threads (a crude power proxy). Decorates
/// the stock SimEvaluator rather than reimplementing it.
class EnergyEvaluator final : public Evaluator {
 public:
  EnergyEvaluator(const dsl::WorkloadDesc& workload,
                  const arch::GpuSpec& gpu, double watts_per_kilothread)
      : sim_(workload, gpu), penalty_(watts_per_kilothread) {}

  [[nodiscard]] std::string name() const override { return "energy"; }

  double evaluate(const codegen::TuningParams& params) override {
    const double time_ms = sim_.evaluate(params);
    if (time_ms == tuner::kInvalid) return time_ms;
    const double kilothreads =
        static_cast<double>(params.threads_per_block) *
        static_cast<double>(params.block_count) / 1000.0;
    return time_ms * (1.0 + penalty_ * kilothreads);
  }

 private:
  tuner::SimEvaluator sim_;
  double penalty_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "atax";
  const std::int64_t n = argc > 2 ? std::atoll(argv[2]) : 128;
  const auto& gpu = arch::gpu("K20");
  const auto wl = kernels::make_workload(kernel, n);

  std::printf("registered strategies:");
  for (const auto& name : tuner::StrategyRegistry::instance().names())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");

  core::TuningSession session(wl, gpu);

  // 1. The custom strategy through the standard facade.
  core::TuningRequest request("coordinate");
  request.options.budget = 200;
  const auto latency = session.tune(request);
  std::printf("coordinate descent (time objective) : best %s -> %.4f ms "
              "(%zu evaluations)\n",
              latency.search.best_params.to_string().c_str(),
              latency.search.best_time,
              latency.search.distinct_evaluations);

  // 2. Same strategy, custom backend: optimize the energy proxy.
  EnergyEvaluator energy(wl, gpu, /*watts_per_kilothread=*/0.02);
  request.evaluator = &energy;
  const auto greener = session.tune(request);
  std::printf("coordinate descent (energy objective): best %s -> score "
              "%.4f (%zu evaluations)\n",
              greener.search.best_params.to_string().c_str(),
              greener.search.best_time,
              greener.search.distinct_evaluations);

  if (greener.search.best_params.threads_per_block <=
      latency.search.best_params.threads_per_block)
    std::printf("\nThe energy backend prefers an equal-or-narrower launch "
                "— fewer resident threads, same pipeline.\n");
  return 0;
}
