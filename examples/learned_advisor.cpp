// Example: training a STATuner-style learned block-size advisor.
//
// Trains a decision tree on the autotuning corpora of three kernels,
// then asks it for a single block size for a kernel it has never seen
// (atax), next to what the occupancy model alone would suggest. Shows
// the learned tree so the decision logic is inspectable.
//
//   $ ./examples/learned_advisor

#include <cstdio>

#include "arch/gpu_spec.hpp"
#include "core/static_analyzer.hpp"
#include "kernels/kernels.hpp"
#include "ml/classify.hpp"

using namespace gpustatic;  // NOLINT

int main() {
  const auto& gpu = arch::gpu("K20");

  // 1. Corpus: autotune bicg / ex14fj / matvec2d (analytic engine) and
  //    label every variant Rank-1/Rank-2. atax is deliberately held out.
  std::vector<ml::CorpusEntry> corpus;
  corpus.push_back({kernels::make_bicg(256), &gpu});
  corpus.push_back({kernels::make_ex14fj(32), &gpu});
  corpus.push_back({kernels::make_matvec2d(256), &gpu});
  ml::CorpusOptions copts;
  copts.stride = 16;  // 5120/16 = 320 variants per kernel
  const ml::Dataset data = ml::build_rank_dataset(corpus, copts);
  std::printf("corpus: %zu labeled variants, %zu static features each\n",
              data.size(), data.width());

  // 2. Cross-validated sanity check before trusting the model: compare
  //    the three in-tree model families.
  const auto cv = ml::cross_validate(data, ml::tree_builder(), 5, 42);
  const auto cv_log =
      ml::cross_validate(data, ml::logistic_builder(), 5, 42);
  const auto cv_forest =
      ml::cross_validate(data, ml::forest_builder(), 5, 42);
  std::printf("5-fold CV accuracy (majority baseline %.1f%%):\n",
              100 * cv.baseline);
  std::printf("  decision tree : %.1f%%\n", 100 * cv.mean_accuracy);
  std::printf("  logistic      : %.1f%%\n", 100 * cv_log.mean_accuracy);
  std::printf("  random forest : %.1f%%\n\n",
              100 * cv_forest.mean_accuracy);

  // 3. Fit on everything and advise on the unseen kernel.
  ml::BlockSizePredictor predictor;
  predictor.fit(data);
  const auto wl = kernels::make_atax(256);
  const auto tc = predictor.predict_block_size(wl, gpu);

  const core::StaticAnalyzer analyzer(gpu);
  const auto report = analyzer.analyze(wl);
  std::printf("advice for unseen kernel 'atax' on %s:\n", gpu.name.c_str());
  std::printf("  learned tree     : TC = %u\n", tc);
  std::printf("  occupancy model  : T* = {");
  for (std::size_t i = 0; i < report.suggestion.thread_candidates.size();
       ++i)
    std::printf("%s%u", i ? ", " : "",
                report.suggestion.thread_candidates[i]);
  std::printf("}\n");
  std::printf("  rule heuristic   : %s half (intensity %.2f)\n\n",
              report.prefers_upper ? "upper" : "lower", report.intensity);

  std::printf("learned decision logic:\n%s",
              predictor.tree().to_string(data.feature_names).c_str());
  return 0;
}
